"""Shot-based training: hardware-realistic noise through the spec API.

Run::

    python examples/shot_based_training.py --shots 256

The paper's training study (Fig. 5b) is analytic; real hardware estimates
every loss and gradient from a finite number of measurement shots.  This
example extends the same study to that regime end to end:

1. declare a training spec with ``shots=`` and run it on the ``lockstep``
   executor — every (method, restart) trajectory advances through one
   batched sampled execution per iteration, with a per-trajectory
   measurement stream spawned from the spec seed;
2. re-run the identical spec on the ``serial`` executor and verify the
   sampled histories are *bit-identical* — sampling noise is fully
   reproducible, not an excuse for drift;
3. sweep the shot budget to show how measurement noise blurs the
   final-loss separation between initialization methods (the BEINIT-style
   robustness question).
"""

import argparse

import numpy as np

import repro
from repro import ExperimentSpec, TrainingConfig


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=4)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--shots", type=int, default=256)
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["random", "xavier_normal", "he_normal"],
    )
    parser.add_argument(
        "--sweep-shots",
        type=int,
        nargs="+",
        default=[16, 256],
        help="shot budgets for the noise-level comparison",
    )
    parser.add_argument("--seed", type=int, default=0)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = TrainingConfig(
        num_qubits=args.qubits,
        num_layers=args.layers,
        iterations=args.iterations,
    )

    def spec(executor: str, shots: int) -> ExperimentSpec:
        return ExperimentSpec(
            kind="training",
            config=config,
            seed=args.seed,
            methods=tuple(args.methods),
            shots=shots,
            executor=executor,
        )

    # 1. Lock-step shot-based training: one batched sampled execution per
    #    iteration covers every trajectory's value + shift terms.
    lockstep = repro.run(spec("lockstep", args.shots))
    print(f"shot-based training at {args.shots} shots (lockstep executor):")
    for label, history in lockstep.histories.items():
        print(
            f"  {label:>16}: loss {history.initial_loss:.4f} -> "
            f"{history.final_loss:.4f}"
        )

    # 2. Reproducibility: the serial executor consumes the same spawned
    #    measurement streams, so sampled histories match bit for bit.
    serial = repro.run(spec("serial", args.shots))
    identical = all(
        serial.histories[label].losses == lockstep.histories[label].losses
        and np.array_equal(
            serial.histories[label].final_params,
            lockstep.histories[label].final_params,
        )
        for label in lockstep.histories
    )
    print(f"serial executor bit-identical to lockstep: {identical}")

    # 3. Noise-level sweep: fewer shots, noisier training signal.
    print("final losses vs shot budget:")
    header = "  " + " ".join(f"{shots:>10}" for shots in args.sweep_shots)
    print(f"{'method':>18}{header}")
    outcomes = {
        shots: repro.run(spec("lockstep", shots)) for shots in args.sweep_shots
    }
    for method in args.methods:
        row = " ".join(
            f"{outcomes[shots].histories[method].final_loss:>10.4f}"
            for shots in args.sweep_shots
        )
        print(f"{method:>18}   {row}")


if __name__ == "__main__":
    main()
