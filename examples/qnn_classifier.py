"""QNN application: initialization choice on a real classification task.

The paper's experiments train the identity function; this example applies
the same initialization comparison to the QML workload the paper's
introduction motivates — a variational binary classifier on synthetic
datasets (blobs / circles / xor)::

    python examples/qnn_classifier.py
    python examples/qnn_classifier.py --dataset xor --epochs 40 --qubits 4
"""

import argparse

from repro.analysis import format_table
from repro.apps import (
    AngleEncodedClassifier,
    ClassifierConfig,
    make_blobs,
    make_circles,
    make_xor,
    train_test_split,
)

_DATASETS = {
    "blobs": lambda seed: make_blobs(num_samples=60, separation=1.2, seed=seed),
    "circles": lambda seed: make_circles(num_samples=60, seed=seed),
    "xor": lambda seed: make_xor(num_samples=60, seed=seed),
}


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dataset", choices=sorted(_DATASETS), default="blobs")
    parser.add_argument("--qubits", type=int, default=4)
    parser.add_argument("--layers", type=int, default=2)
    parser.add_argument("--epochs", type=int, default=25)
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["random", "xavier_normal", "he_normal"],
    )
    parser.add_argument("--seed", type=int, default=11)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    x, y = _DATASETS[args.dataset](args.seed)
    x_train, y_train, x_test, y_test = train_test_split(x, y, seed=args.seed)
    print(
        f"dataset={args.dataset}: {len(x_train)} train / {len(x_test)} test "
        f"samples, {x.shape[1]} features"
    )

    rows = []
    for method in args.methods:
        config = ClassifierConfig(
            num_qubits=args.qubits, num_layers=args.layers, epochs=args.epochs
        )
        model = AngleEncodedClassifier(config, initializer=method, seed=args.seed)
        log = model.fit(x_train, y_train)
        rows.append(
            [
                method,
                f"{log.losses[0]:.4f}",
                f"{log.final_loss:.4f}",
                f"{log.final_accuracy:.2f}",
                f"{model.score(x_test, y_test):.2f}",
            ]
        )
        print(f"  trained {method}")

    print()
    print(
        format_table(
            ["initializer", "first_loss", "final_loss", "train_acc", "test_acc"],
            rows,
        )
    )
    print(
        "\nthe initialization effect carries over from the paper's identity "
        "task to a realistic QML workload: width-scaled schemes give the "
        "optimizer usable gradients from the first epoch."
    )


if __name__ == "__main__":
    main()
