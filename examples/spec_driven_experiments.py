"""Spec-driven experiments: one declarative object, pluggable executors.

Run::

    python examples/spec_driven_experiments.py --workers 2

Demonstrates the ``ExperimentSpec`` API end to end:

1. describe the Fig. 5a variance study declaratively and run it with
   ``repro.run``;
2. re-run the *same* spec on a different executor (process pool) and
   verify the seeded results are bit-identical;
3. save the spec to JSON — the file is what ``python -m repro run
   SPEC.json`` executes — and reload it;
4. optionally checkpoint shards so an interrupted grid resumes;
5. run the same study under a Kraus noise model (the batched
   Pauli-transfer path) and see how fingerprints keep noisy and
   noiseless results apart;
6. submit the spec to an in-process ``repro serve`` instance twice and
   watch the second submission come back as an O(1) cache hit with
   byte-identical result payloads;
7. run the same study distributed — ``executor="remote"`` hands work
   units to pull-based ``repro worker`` loops over HTTP leases — and
   verify the distributed bytes match the single-host ones.
"""

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import ExperimentSpec, VarianceConfig, available_executors


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, nargs="+", default=[2, 3, 4])
    parser.add_argument("--circuits", type=int, default=20)
    parser.add_argument("--layers", type=int, default=8)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help="shard checkpoints land here (resume by re-running)",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    config = VarianceConfig(
        qubit_counts=tuple(args.qubits),
        num_circuits=args.circuits,
        num_layers=args.layers,
        methods=("random", "xavier_normal", "he_normal"),
    )

    # 1. Declare the experiment once; `repro.run` dispatches it.
    spec = ExperimentSpec(kind="variance", config=config, seed=args.seed)
    print(f"executors available: {', '.join(available_executors())}")
    print(f"running kind={spec.kind} on executor={spec.resolved_executor()}")
    outcome = repro.run(spec)
    print(f"ranking (best decay first): {outcome.ranking}")

    # 2. Same spec, different executor: bit-identical seeded results.
    pooled_spec = ExperimentSpec(
        kind="variance",
        config=config,
        seed=args.seed,
        executor="process_pool",
        workers=args.workers,
        checkpoint_dir=args.checkpoint_dir,
    )
    pooled = repro.run(pooled_spec)
    identical = all(
        np.array_equal(
            outcome.result.samples[key].gradients,
            pooled.result.samples[key].gradients,
        )
        for key in outcome.result.samples
    )
    print(
        f"process_pool x{args.workers} bit-identical to single process: "
        f"{identical}"
    )

    # 3. Mega-batched vs per-structure folding: the default
    #    fold="shape" groups every structure of a grid cell into one
    #    shape bucket and executes hundreds of (structure, method,
    #    shift-term) rows per stacked call.  It is a pure throughput
    #    knob — the seeded grid is bit-identical to the per-structure
    #    fold — so specs differing only in fold are interchangeable
    #    (they even share checkpoint fingerprints).
    import dataclasses
    import time

    start = time.perf_counter()
    per_structure = repro.run(
        ExperimentSpec(
            kind="variance",
            config=dataclasses.replace(config, fold="structure"),
            seed=args.seed,
        )
    )
    structure_time = time.perf_counter() - start
    start = time.perf_counter()
    mega = repro.run(
        ExperimentSpec(
            kind="variance",
            config=dataclasses.replace(config, fold="shape"),
            seed=args.seed,
        )
    )
    mega_time = time.perf_counter() - start
    mega_identical = all(
        np.array_equal(
            per_structure.result.samples[key].gradients,
            mega.result.samples[key].gradients,
        )
        for key in mega.result.samples
    )
    bucket_rows = config.num_circuits * len(config.methods) * 2
    print(
        f"mega-batched fold ({bucket_rows} rows/bucket) bit-identical to "
        f"per-structure: {mega_identical} "
        f"({structure_time / mega_time:.1f}x faster here)"
    )

    # 4. Array backends are configuration too: backend="torch" (or
    #    "cupy", "torch:cuda:0", ...) moves the statevector kernels onto
    #    that namespace and routes the spec to the ``device`` executor —
    #    same spec, same seeds, device-tolerance-identical results.
    #    Guarded: torch is an optional dependency, and a spec naming a
    #    missing namespace fails eagerly with an actionable ImportError.
    import importlib.util

    if importlib.util.find_spec("torch") is not None:
        torch_spec = ExperimentSpec(
            kind="variance", config=config, seed=args.seed, backend="torch"
        )
        print(f"torch backend routes to executor={torch_spec.resolved_executor()}")
        torch_outcome = repro.run(torch_spec)
        print(f"torch-backend ranking: {torch_outcome.ranking}")
    else:
        print("torch not installed; skipping the backend='torch' step")

    # 5. Noise is configuration too: a JSON payload of factory channels
    #    (plus optional readout error) routes the same spec through the
    #    batched Pauli-transfer simulator — (B, 4**n) Pauli vectors on
    #    the same batched kernels, rows matching exact density-matrix
    #    evolution.  A trivial model (zero rates) canonicalizes to None
    #    and stays bit-identical to the noiseless run; a real one gets
    #    its own fingerprint, so noisy and noiseless results never share
    #    cache entries.
    noise = {"default": {"name": "depolarizing", "probability": 0.01}}
    noisy_spec = ExperimentSpec(
        kind="variance", config=config, seed=args.seed, noise=noise
    )
    trivial_spec = ExperimentSpec(
        kind="variance",
        config=config,
        seed=args.seed,
        noise={"default": {"name": "depolarizing", "probability": 0.0}},
    )
    print(
        f"trivial noise shares the noiseless fingerprint: "
        f"{trivial_spec.fingerprint() == spec.fingerprint()}; "
        f"real noise gets its own: "
        f"{noisy_spec.fingerprint() != spec.fingerprint()}"
    )
    noisy = repro.run(noisy_spec)
    print(f"noisy ranking (depolarizing 1%): {noisy.ranking}")

    # 6. Specs serialize: this JSON file is exactly what
    #    `python -m repro run SPEC.json` consumes.
    with tempfile.TemporaryDirectory() as tmp:
        spec_path = Path(tmp) / "variance_spec.json"
        spec_path.write_text(json.dumps(spec.to_dict(), indent=2))
        reloaded = ExperimentSpec.from_file(spec_path)
        print(
            f"spec round-trips through {spec_path.name}: "
            f"kind={reloaded.kind}, seed={reloaded.seed}"
        )

    # 7. The same spec served over HTTP: `repro serve` fronts a
    #    deduplicating job queue and a content-addressed result store.
    #    The first submission executes; resubmitting the identical spec
    #    is answered instantly from the cache — byte-identical payloads,
    #    no recomputation.  (ExperimentServer is the in-process handle
    #    behind `python -m repro serve`.)
    import time as _time
    import urllib.request

    from repro.service import ExperimentServer

    with tempfile.TemporaryDirectory() as store_dir:
        with ExperimentServer(store=store_dir) as server:
            print(f"serving experiments on {server.url}")
            body = json.dumps(spec.to_dict()).encode("utf-8")

            def submit():
                request = urllib.request.Request(
                    server.url + "/experiments",
                    data=body,
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    job = json.loads(response.read())
                while job["state"] not in ("done", "failed"):
                    _time.sleep(0.05)
                    with urllib.request.urlopen(
                        f"{server.url}/experiments/{job['job_id']}"
                    ) as response:
                        job = json.loads(response.read())
                with urllib.request.urlopen(
                    f"{server.url}/experiments/{job['job_id']}/result"
                ) as response:
                    return job, response.read()

            first, payload_one = submit()
            second, payload_two = submit()
            print(
                f"first submission: state={first['state']} "
                f"cache_hit={first['cache_hit']} "
                f"units={first['progress']['completed_units']}"
                f"/{first['progress']['total_units']}"
            )
            print(
                f"second submission: state={second['state']} "
                f"cache_hit={second['cache_hit']}"
            )
            print(
                f"served payloads byte-identical: "
                f"{payload_one == payload_two}"
            )

    # 8. Distributed execution: `executor="remote"` makes the server a
    #    lease coordinator — `repro worker` processes pull units over
    #    HTTP, execute them locally, and push fingerprinted results
    #    back.  Here the workers are in-process loops (the CLI command
    #    runs the same `run_worker` function); a fresh store keeps the
    #    run from cache-hitting step 7, and the distributed payload is
    #    byte-identical to the single-host one because every unit
    #    carries its own pre-reserved RNG children.
    import threading

    from repro.service.dispatch import run_worker

    remote_spec = ExperimentSpec(
        kind="variance", config=config, seed=args.seed, executor="remote"
    )
    with tempfile.TemporaryDirectory() as store_dir:
        with ExperimentServer(store=store_dir) as server:
            print(f"coordinator on {server.url}; attaching 2 workers")
            stop = threading.Event()
            workers = [
                threading.Thread(
                    target=run_worker,
                    args=(server.url,),
                    kwargs={
                        "worker_id": f"example-w{i}",
                        "poll_interval": 0.05,
                        "allow_exit": False,
                        "should_stop": stop.is_set,
                    },
                    daemon=True,
                )
                for i in range(2)
            ]
            for worker in workers:
                worker.start()
            try:
                body = json.dumps(remote_spec.to_dict()).encode("utf-8")
                request = urllib.request.Request(
                    server.url + "/experiments",
                    data=body,
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request) as response:
                    job = json.loads(response.read())
                while job["state"] not in ("done", "failed"):
                    _time.sleep(0.05)
                    with urllib.request.urlopen(
                        f"{server.url}/experiments/{job['job_id']}"
                    ) as response:
                        job = json.loads(response.read())
                with urllib.request.urlopen(
                    f"{server.url}/experiments/{job['job_id']}/result"
                ) as response:
                    remote_payload = response.read()
                with urllib.request.urlopen(
                    f"{server.url}/healthz"
                ) as response:
                    dispatch = json.loads(response.read())["dispatch"]
            finally:
                stop.set()
                for worker in workers:
                    worker.join(timeout=10.0)
    print(
        f"remote run: state={job['state']}, "
        f"{dispatch['leases_granted']} leases to "
        f"{len(dispatch['workers'])} workers, "
        f"{dispatch['results_accepted']} results accepted"
    )
    print(
        f"distributed bytes identical to single-host serving: "
        f"{remote_payload == payload_one}"
    )


if __name__ == "__main__":
    main()
