"""Fig. 5a reproduction: gradient-variance decay per initialization.

Run a reduced-scale study (finishes in ~30 s)::

    python examples/variance_decay_analysis.py

Run the full paper scale (200 circuits, depth 100, up to 10 qubits;
takes several minutes)::

    python examples/variance_decay_analysis.py --paper-scale

Optionally persist the outcome::

    python examples/variance_decay_analysis.py --output results/fig5a.json
"""

import argparse

from repro.analysis import bootstrap_decay_rate, decay_table, variance_table
from repro.core import VarianceConfig, run_variance_experiment
from repro.io import save_result


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use the paper's full configuration (200 circuits, depth 100, "
        "qubits 2-10) instead of the fast reduced one",
    )
    parser.add_argument("--seed", type=int, default=2311, help="master seed")
    parser.add_argument(
        "--output", type=str, default=None, help="write the outcome JSON here"
    )
    parser.add_argument(
        "--bootstrap",
        action="store_true",
        help="also print bootstrap 95%% CIs for each decay rate",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.paper_scale:
        config = VarianceConfig()  # paper defaults
    else:
        config = VarianceConfig(
            qubit_counts=(2, 4, 6, 8), num_circuits=50, num_layers=30
        )
    print(
        f"variance study: qubits={tuple(config.qubit_counts)}, "
        f"circuits={config.num_circuits}, layers={config.num_layers}"
    )
    outcome = run_variance_experiment(config, seed=args.seed, verbose=True)

    print()
    print(variance_table(outcome.result))
    print()
    print(decay_table(outcome.fits, outcome.improvements))
    print(f"\nranking (best decay first): {outcome.ranking}")
    print(
        "\npaper reports improvements of ~62.3% (xavier), ~32% (he), "
        "~28.3% (lecun), ~26.4% (orthogonal)"
    )

    if args.bootstrap:
        print("\nbootstrap 95% CIs on the decay rates:")
        for method in outcome.result.methods:
            low, high = bootstrap_decay_rate(
                outcome.result.qubit_counts,
                outcome.result.gradient_matrix(method),
                seed=args.seed,
            )
            print(f"  {method:15s} [{low:.3f}, {high:.3f}]")

    if args.output:
        path = save_result(outcome, args.output)
        print(f"\nsaved outcome to {path}")


if __name__ == "__main__":
    main()
