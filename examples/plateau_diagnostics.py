"""Plateau health check: diagnose a configuration before training it.

Combines the library's diagnostic tools into the workflow a practitioner
would run before committing a training budget:

1. ``diagnose_plateau`` — decay-rate probe with a plateau/warning/healthy
   verdict per initializer;
2. ``gradient_profile`` — per-layer gradient variance, showing *where*
   gradients survive;
3. expressibility / entangling capability — the information-theoretic
   explanation (closer to Haar = flatter landscape).

Run::

    python examples/plateau_diagnostics.py
    python examples/plateau_diagnostics.py --methods random he_normal --qubits 2 4 6
"""

import argparse

from repro.analysis import format_table
from repro.analysis.detector import diagnose_plateau
from repro.analysis.expressibility import (
    entangling_capability,
    expressibility_kl,
)
from repro.ansatz import HardwareEfficientAnsatz
from repro.core.profile import ProfileConfig, gradient_profile
from repro.initializers import get_initializer


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--methods", nargs="+", default=["random", "xavier_normal", "he_normal"]
    )
    parser.add_argument("--qubits", type=int, nargs="+", default=[2, 4, 6])
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--circuits", type=int, default=25)
    parser.add_argument("--seed", type=int, default=3)
    return parser.parse_args()


def main() -> None:
    args = parse_args()

    print("step 1 — decay-rate probe")
    rows = []
    for method in args.methods:
        diagnosis = diagnose_plateau(
            method,
            qubit_counts=tuple(args.qubits),
            num_circuits=args.circuits,
            num_layers=args.layers,
            seed=args.seed,
        )
        rows.append(
            [
                method,
                diagnosis.verdict,
                f"{diagnosis.decay_rate:.3f}",
                f"{100 * diagnosis.severity:.0f}%",
            ]
        )
    print(
        format_table(
            ["method", "verdict", "decay_rate", "of_2design_slope"], rows
        )
    )

    print("\nstep 2 — per-layer gradient variance (where gradients survive)")
    config = ProfileConfig(
        num_qubits=max(args.qubits), num_layers=4, num_samples=30
    )
    rows = []
    for method in args.methods:
        profile = gradient_profile(method, config, seed=args.seed)
        rows.append(
            [method] + [f"{v:.2e}" for v in profile.per_layer_variance]
        )
    print(
        format_table(
            ["method"] + [f"layer{l}" for l in range(config.num_layers)], rows
        )
    )

    print("\nstep 3 — expressibility (KL vs Haar; low = plateau-prone)")
    ansatz = HardwareEfficientAnsatz(max(args.qubits), args.layers // 2)
    rows = []
    for method in args.methods:
        initializer = get_initializer(method)
        kl = expressibility_kl(ansatz, initializer, num_pairs=80, seed=args.seed)
        q = entangling_capability(
            ansatz, initializer, num_samples=40, seed=args.seed
        )
        rows.append([method, f"{kl:.3f}", f"{q:.3f}"])
    print(format_table(["method", "KL_from_Haar", "meyer_wallach_Q"], rows))

    print(
        "\nreading: a 'plateau' verdict + near-Haar expressibility means "
        "gradient-based training will stall at scale; pick a width-scaled "
        "initializer (or a shallower/local-cost design) before training."
    )


if __name__ == "__main__":
    main()
