"""Full paper-scale reproduction driver.

Runs every experiment at the paper's published scale and writes a
machine-readable JSON plus a human-readable summary:

* Fig. 5a — 200 random PQCs per qubit count in {2,4,6,8,10}, depth 100;
* Section VI-A — decay rates + improvement-vs-random table;
* Fig. 5b — training, gradient descent, 10 qubits / 5 layers / 50 iters;
* Fig. 5c — training, Adam, same configuration.

Expect a multi-minute run at full scale::

    python examples/reproduce_paper.py --output results/

A faster smoke configuration (about a minute)::

    python examples/reproduce_paper.py --fast
"""

import argparse
import time
from pathlib import Path

from repro.core import (
    TrainingConfig,
    VarianceConfig,
    run_full_reproduction,
)
from repro.analysis import decay_table, training_table, variance_table
from repro.io import save_result


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced scale: 50 circuits, depth 30, qubits up to 8",
    )
    parser.add_argument("--seed", type=int, default=20240311)
    parser.add_argument("--output", type=str, default=None)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    if args.fast:
        variance_config = VarianceConfig(
            qubit_counts=(2, 4, 6, 8), num_circuits=50, num_layers=30
        )
    else:
        variance_config = VarianceConfig()  # 200 circuits, depth 100, 2-10 qubits
    training_config = TrainingConfig()  # 10 qubits, 5 layers, 50 iters, lr 0.1

    start = time.time()
    outcome = run_full_reproduction(
        variance_config=variance_config,
        training_config=training_config,
        optimizers=("gradient_descent", "adam"),
        seed=args.seed,
        verbose=True,
    )
    elapsed = time.time() - start

    print()
    print("#" * 72)
    print("# Fig. 5a — gradient-variance decay")
    print("#" * 72)
    print(variance_table(outcome.variance.result))
    print()
    print(decay_table(outcome.variance.fits, outcome.variance.improvements))
    print(f"ranking (best decay first): {outcome.variance.ranking}")

    for optimizer, training in outcome.training.items():
        print()
        print("#" * 72)
        print(f"# Fig. 5{'b' if optimizer == 'gradient_descent' else 'c'} — "
              f"training with {optimizer}")
        print("#" * 72)
        print(training_table(training.histories))

    print(f"\ntotal wall time: {elapsed:.1f} s")

    if args.output:
        out_dir = Path(args.output)
        path = save_result(outcome, out_dir / "full_reproduction.json")
        print(f"saved full outcome to {path}")


if __name__ == "__main__":
    main()
