"""Fig. 5b/5c reproduction: train the identity-learning QNN.

Runs the paper's exact training experiment — 10 qubits, 5 layers
(145 gates, 100 parameters), global cost (Eq. 4), 50 iterations at step
size 0.1 — for all six initialization methods under both optimizers::

    python examples/train_identity_qnn.py

Scale down or tweak::

    python examples/train_identity_qnn.py --qubits 6 --layers 3 --iterations 30
    python examples/train_identity_qnn.py --optimizers adam --output results/
"""

import argparse
from pathlib import Path

from repro.analysis import loss_curve, training_table
from repro.core import TrainingConfig, run_training_experiment
from repro.io import save_result


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=10)
    parser.add_argument("--layers", type=int, default=5)
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument("--learning-rate", type=float, default=0.1)
    parser.add_argument(
        "--optimizers",
        nargs="+",
        default=["gradient_descent", "adam"],
        help="optimizers to run (paper uses both)",
    )
    parser.add_argument("--cost", choices=("global", "local"), default="global")
    parser.add_argument("--seed", type=int, default=423)
    parser.add_argument(
        "--output",
        type=str,
        default=None,
        help="directory to write one JSON outcome per optimizer",
    )
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    for optimizer in args.optimizers:
        config = TrainingConfig(
            num_qubits=args.qubits,
            num_layers=args.layers,
            iterations=args.iterations,
            optimizer=optimizer,
            learning_rate=args.learning_rate,
            cost_kind=args.cost,
        )
        print()
        print("=" * 72)
        print(
            f"training with {optimizer}: {args.qubits} qubits, "
            f"{args.layers} layers, {args.iterations} iterations, "
            f"lr={args.learning_rate}, cost={args.cost}"
        )
        print("=" * 72)
        outcome = run_training_experiment(config, seed=args.seed, verbose=True)
        print()
        print(training_table(outcome.histories))
        print()
        for method in ("random", "xavier_normal"):
            print(loss_curve(outcome.histories[method], width=60, height=10))
            print()
        print(f"final-loss ranking (best first): {outcome.ranking()}")

        if args.output:
            path = Path(args.output) / f"training_{optimizer}.json"
            save_result(outcome, path)
            print(f"saved outcome to {path}")


if __name__ == "__main__":
    main()
