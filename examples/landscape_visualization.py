"""Fig. 1 reproduction: watch the cost landscape flatten with width.

Scans a 2-D slice of the global-cost landscape for PQCs of increasing
qubit count and renders each surface as an ASCII heat map next to its
flatness metrics::

    python examples/landscape_visualization.py
    python examples/landscape_visualization.py --qubits 2 5 10 --layers 100
"""

import argparse

import numpy as np

from repro.analysis import flatness_metrics, scan_landscape
from repro.ansatz import HardwareEfficientAnsatz
from repro.core import global_identity_cost


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, nargs="+", default=[2, 5, 10])
    parser.add_argument(
        "--layers", type=int, default=40,
        help="ansatz depth (the paper's Fig. 1 uses 100)",
    )
    parser.add_argument("--resolution", type=int, default=17)
    parser.add_argument("--seed", type=int, default=1)
    return parser.parse_args()


def main() -> None:
    args = parse_args()
    for num_qubits in args.qubits:
        ansatz = HardwareEfficientAnsatz(num_qubits, args.layers)
        circuit = ansatz.build()
        cost = global_identity_cost(circuit)
        rng = np.random.default_rng(args.seed)
        anchor = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
        scan = scan_landscape(
            cost,
            anchor,
            param_indices=(
                circuit.num_parameters - 2,
                circuit.num_parameters - 1,
            ),
            resolution=args.resolution,
        )
        metrics = flatness_metrics(scan)
        print()
        print("=" * 60)
        print(
            f"{num_qubits} qubits, depth {args.layers} "
            f"({circuit.num_parameters} parameters)"
        )
        print(
            f"  cost range {metrics['cost_range']:.3e} | "
            f"std {metrics['cost_std']:.3e} | "
            f"mean |grad| {metrics['mean_gradient_magnitude']:.3e}"
        )
        print("=" * 60)
        print(scan.to_ascii())
    print(
        "\nNote how the surface loses all contrast as the width grows — "
        "the normalized maps stay patterned, but the absolute cost range "
        "collapses exponentially (the printed metrics): that collapse is "
        "the barren plateau of the paper's Fig. 1."
    )


if __name__ == "__main__":
    main()
