"""Compare classical initializers against related-work BP mitigations.

Trains the identity task with: random init (the BP baseline), Xavier
normal (the paper's winner), BeInit (beta init + perturbed GD), the
identity-block strategy of Grant et al., and layer-wise training with a
final joint sweep::

    python examples/mitigation_comparison.py
    python examples/mitigation_comparison.py --qubits 8 --iterations 60
"""

import argparse

from repro.analysis import format_table
from repro.core import Trainer, TrainingConfig, global_identity_cost
from repro.mitigation import (
    IdentityBlockStrategy,
    LayerwiseConfig,
    LayerwiseTrainer,
    PerturbedGradientDescent,
    beinit_defaults,
)
from repro.optim import GradientDescent


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--qubits", type=int, default=6)
    parser.add_argument("--layers", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=40)
    parser.add_argument("--seed", type=int, default=31)
    return parser.parse_args()


def train_plain(circuit, params, optimizer, iterations):
    """Minimal training loop used for the strategies with custom setups."""
    cost = global_identity_cost(circuit)
    losses = [cost.value(params)]
    for _ in range(iterations):
        params = optimizer.step(params, cost.gradient(params))
        losses.append(cost.value(params))
    return losses


def main() -> None:
    args = parse_args()
    config = TrainingConfig(
        num_qubits=args.qubits, num_layers=args.layers, iterations=args.iterations
    )
    trainer = Trainer(config)
    results = {}

    for method in ("random", "xavier_normal"):
        results[method] = trainer.run(method, seed=args.seed).losses

    beta_params = trainer.initial_parameters(beinit_defaults(), seed=args.seed)
    circuit = config.build_ansatz().build()
    results["beinit"] = train_plain(
        circuit,
        beta_params,
        PerturbedGradientDescent(0.1, perturbation_std=0.01, seed=args.seed),
        args.iterations,
    )

    strategy = IdentityBlockStrategy(
        num_qubits=args.qubits, num_blocks=max(args.layers // 2, 1), block_layers=1
    )
    block_circuit, block_params = strategy.build_with_parameters(seed=args.seed)
    results["identity_block"] = train_plain(
        block_circuit, block_params, GradientDescent(0.1), args.iterations
    )

    layerwise = LayerwiseTrainer(
        LayerwiseConfig(
            num_qubits=args.qubits,
            total_layers=args.layers,
            iterations_per_stage=max(args.iterations // (2 * args.layers), 1),
            final_sweep_iterations=args.iterations // 2,
            initializer="xavier_normal",
        )
    )
    results["layerwise[xavier]"] = layerwise.run(seed=args.seed).losses

    print()
    print("=" * 68)
    print(
        f"identity-learning, {args.qubits} qubits, depth {args.layers}, "
        f"{args.iterations} iterations (global cost)"
    )
    print("=" * 68)
    rows = [
        [name, f"{losses[0]:.4f}", f"{min(losses):.4f}", f"{losses[-1]:.4f}"]
        for name, losses in results.items()
    ]
    print(format_table(["strategy", "initial", "best", "final"], rows))
    print(
        "\nrandom initialization is the only strategy still stuck on the "
        "plateau; all mitigation approaches (and the paper's classical "
        "initializers) avoid it."
    )


if __name__ == "__main__":
    main()
