"""Quickstart: build a PQC, initialize it, compute gradients, train.

Run::

    python examples/quickstart.py

Walks through the library's core objects in ~40 lines of user code:
an ansatz, an initializer, a cost function, a gradient, and a short
training loop — the minimal version of the paper's training experiment.
"""

import numpy as np

from repro import (
    HardwareEfficientAnsatz,
    StatevectorSimulator,
    Trainer,
    TrainingConfig,
    get_initializer,
    global_identity_cost,
)


def main() -> None:
    # 1. The paper's hardware-efficient ansatz (Eq. 3), scaled down.
    ansatz = HardwareEfficientAnsatz(num_qubits=4, num_layers=3)
    circuit = ansatz.build()
    print("circuit:", circuit)
    print(circuit.draw(max_width=100))

    # 2. Draw initial angles with Xavier-normal initialization.
    initializer = get_initializer("xavier_normal")
    params = initializer.sample(ansatz.parameter_shape, seed=7)
    print(f"\ninitial angles: mean={params.mean():+.4f}, std={params.std():.4f}")

    # 3. The paper's global identity cost, C = 1 - p(|0...0>)  (Eq. 4).
    cost = global_identity_cost(circuit)
    value, gradient = cost.value_and_gradient(params)
    print(f"initial cost: {value:.4f}")
    print(f"gradient norm (adjoint engine): {np.linalg.norm(gradient):.4f}")

    # 4. The final state is one simulator call away.
    state = StatevectorSimulator().run(circuit, params)
    print(f"p(|0000>) before training: {state.probability_of('0000'):.4f}")

    # 5. Train for 30 gradient-descent iterations (paper setup, Sec. V).
    config = TrainingConfig(
        num_qubits=4, num_layers=3, iterations=30, learning_rate=0.1
    )
    history = Trainer(config).run("xavier_normal", seed=7)
    print(
        f"\ntrained {history.num_iterations} iterations: "
        f"loss {history.initial_loss:.4f} -> {history.final_loss:.4f}"
    )

    # 6. Compare against the barren-plateau baseline: random angles.
    random_history = Trainer(config).run("random", seed=7)
    print(
        f"random-initialized control:   "
        f"loss {random_history.initial_loss:.4f} -> {random_history.final_loss:.4f}"
    )
    print(
        "\nXavier initialization escapes the flat region that traps the "
        "randomly-initialized circuit — the paper's core observation."
    )


if __name__ == "__main__":
    main()
