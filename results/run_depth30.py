"""Paper-width variance study at depth 30 (for EXPERIMENTS.md)."""

from repro.analysis import decay_table, variance_table
from repro.core import VarianceConfig, run_variance_experiment
from repro.io import save_result

config = VarianceConfig(num_layers=30)  # qubits 2-10, 200 circuits
outcome = run_variance_experiment(config, seed=20240311, verbose=True)
print(variance_table(outcome.result))
print()
print(decay_table(outcome.fits, outcome.improvements))
print("ranking:", outcome.ranking)
save_result(outcome, "/root/repo/results/fig5a_depth30_full.json")
