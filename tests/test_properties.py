"""Cross-cutting property-based tests (hypothesis).

These check invariants that must hold across the whole stack for *any*
valid input: unitarity of simulation, exactness of gradients, statistical
contracts of initializers, and cost-function bounds.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import HardwareEfficientAnsatz, RandomPQC
from repro.backend import (
    QuantumCircuit,
    StatevectorSimulator,
    adjoint_gradient,
    parameter_shift,
    zero_projector,
)
from repro.core.cost import global_identity_cost, local_identity_cost
from repro.initializers import ParameterShape, get_initializer
from repro.initializers.registry import PAPER_METHODS

_SIM = StatevectorSimulator()


@settings(max_examples=25, deadline=None)
@given(
    num_qubits=st.integers(2, 5),
    num_layers=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_hea_simulation_preserves_norm(num_qubits, num_layers, seed):
    circuit = HardwareEfficientAnsatz(num_qubits, num_layers).build()
    rng = np.random.default_rng(seed)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    state = _SIM.run(circuit, params)
    assert state.norm() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    num_qubits=st.integers(2, 4),
    num_layers=st.integers(1, 3),
    seed=st.integers(0, 10_000),
)
def test_random_pqc_gradient_engines_agree(num_qubits, num_layers, seed):
    pqc = RandomPQC(num_qubits, num_layers, seed=seed)
    circuit = pqc.build()
    rng = np.random.default_rng(seed + 1)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    obs = zero_projector(num_qubits)
    ps = parameter_shift(circuit, obs, params, _SIM)
    adj = adjoint_gradient(circuit, obs, params, _SIM)
    assert np.allclose(ps, adj, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(
    method=st.sampled_from(PAPER_METHODS),
    num_qubits=st.integers(2, 12),
    num_layers=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_initializers_produce_finite_correctly_sized_vectors(
    method, num_qubits, num_layers, seed
):
    shape = ParameterShape(num_layers, num_qubits, params_per_qubit=2)
    params = get_initializer(method).sample(shape, seed=seed)
    assert params.shape == (shape.num_parameters,)
    assert np.all(np.isfinite(params))


@settings(max_examples=25, deadline=None)
@given(
    method=st.sampled_from(["xavier_normal", "he_normal", "lecun_normal"]),
    seed=st.integers(0, 1000),
)
def test_scaled_initializer_angles_shrink_with_width(method, seed):
    """The anti-BP contract: more qubits -> strictly smaller RMS angles."""
    init = get_initializer(method)
    narrow = ParameterShape(num_layers=50, num_qubits=2, params_per_qubit=2)
    wide = ParameterShape(num_layers=50, num_qubits=16, params_per_qubit=2)
    rms_narrow = np.sqrt(np.mean(init.sample(narrow, seed=seed) ** 2))
    rms_wide = np.sqrt(np.mean(init.sample(wide, seed=seed) ** 2))
    assert rms_wide < rms_narrow


@settings(max_examples=20, deadline=None)
@given(
    num_qubits=st.integers(2, 4),
    num_layers=st.integers(1, 3),
    seed=st.integers(0, 10_000),
    kind=st.sampled_from(["global", "local"]),
)
def test_cost_functions_bounded_in_unit_interval(num_qubits, num_layers, seed, kind):
    circuit = HardwareEfficientAnsatz(num_qubits, num_layers).build()
    cost = (
        global_identity_cost(circuit) if kind == "global" else local_identity_cost(circuit)
    )
    rng = np.random.default_rng(seed)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    value = cost.value(params)
    assert -1e-9 <= value <= 1.0 + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    num_qubits=st.integers(2, 4),
    seed=st.integers(0, 10_000),
)
def test_local_cost_never_exceeds_global(num_qubits, seed):
    """1 - (1/n) sum p0_q <= 1 - p(0...0): single-qubit marginals are at
    least the joint probability."""
    circuit = HardwareEfficientAnsatz(num_qubits, 2).build()
    rng = np.random.default_rng(seed)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    local = local_identity_cost(circuit).value(params)
    global_ = global_identity_cost(circuit).value(params)
    assert local <= global_ + 1e-9


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_gradient_of_bound_circuit_is_empty(seed):
    circuit = QuantumCircuit(2).rx(0, value=0.5).ry(1, value=-0.2)
    grad = adjoint_gradient(circuit, zero_projector(2), [], _SIM)
    assert grad.shape == (0,)
