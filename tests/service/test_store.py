"""ResultStore: content addressing, corruption tolerance, concurrency."""

import json
import multiprocessing
import threading

import pytest

from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.service import ResultStore

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=2, num_layers=2, methods=("random",)
)


class TestResultTier:
    def test_round_trip(self, tmp_path):
        import repro

        store = ResultStore(tmp_path)
        spec = ExperimentSpec(kind="variance", config=_CONFIG, seed=0)
        outcome = repro.run(spec)
        fingerprint = spec.fingerprint()
        assert not store.has_result(fingerprint)
        store.put_result(fingerprint, outcome)
        assert store.has_result(fingerprint)
        restored = store.load_outcome(fingerprint)
        assert restored.result.samples.keys() == outcome.result.samples.keys()

    def test_read_result_text_returns_exact_bytes(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = ExperimentSpec(kind="variance", config=_CONFIG, seed=0)
        store.put_result(spec.fingerprint(), spec)  # any persistable type
        text = store.read_result_text(spec.fingerprint())
        assert text == store.result_path(spec.fingerprint()).read_text()
        assert json.loads(text)["type"] == "ExperimentSpec"

    def test_missing_result_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.read_result_text("0" * 40) is None
        assert not store.has_result("0" * 40)

    def test_invalid_fingerprint_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("", "../../etc/passwd", "a/b", "a b"):
            with pytest.raises(ValueError, match="invalid store fingerprint"):
                store.result_path(bad)


class TestShardTier:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        hit, data = store.get_shard("deadbeef")
        assert (hit, data) == (False, None)
        store.put_shard("deadbeef", "unit-0", {"value": [1, 2]})
        hit, data = store.get_shard("deadbeef")
        assert hit and data == {"value": [1, 2]}

    def test_corrupt_shard_is_a_miss_and_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_shard("deadbeef", "unit-0", {"value": 1})
        store.shard_path("deadbeef").write_text("{ truncated")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            hit, data = store.get_shard("deadbeef")
        assert (hit, data) == (False, None)
        # Moved aside, not re-read: the second hit is a silent miss.
        assert not store.shard_path("deadbeef").exists()
        assert list(store.quarantine_dir.glob("*.json"))
        assert store.get_shard("deadbeef") == (False, None)

    def test_mismatched_key_is_a_miss(self, tmp_path):
        """A file renamed to the wrong key must not serve foreign data."""
        store = ResultStore(tmp_path)
        store.put_shard("deadbeef", "unit-0", {"value": 1})
        store.shard_path("deadbeef").rename(store.shard_path("feedface"))
        hit, data = store.get_shard("feedface")
        assert (hit, data) == (False, None)

    def test_stats(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put_shard("aa", "u", {})
        assert store.stats()["shards"] == 1
        assert store.stats()["results"] == 0


def _write_shard_payload(args):
    root, fingerprint, writer = args
    store = ResultStore(root)
    # Every writer stores the same logical payload — as concurrent
    # resubmissions of one spec would.
    store.put_shard(fingerprint, "unit-0", {"gradients": [0.125, -0.5, 0.25]})
    return writer


class TestConcurrentWriters:
    """Satellite: concurrent cache writers must never corrupt a shard."""

    def test_threads_racing_one_fingerprint(self, tmp_path):
        store = ResultStore(tmp_path)
        reference = None
        errors = []

        def writer(index):
            try:
                _write_shard_payload((tmp_path, "cafe01", index))
            except Exception as error:  # pragma: no cover - fail the test
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(16)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        hit, data = store.get_shard("cafe01")
        assert hit and data == {"gradients": [0.125, -0.5, 0.25]}
        reference = store.shard_path("cafe01").read_bytes()
        # One more write must reproduce the file bit-identically.
        _write_shard_payload((tmp_path, "cafe01", -1))
        assert store.shard_path("cafe01").read_bytes() == reference

    @pytest.mark.slow
    def test_processes_racing_one_fingerprint(self, tmp_path):
        context = multiprocessing.get_context("spawn")
        with context.Pool(4) as pool:
            pool.map(
                _write_shard_payload,
                [(str(tmp_path), "cafe02", i) for i in range(8)],
            )
        store = ResultStore(tmp_path)
        hit, data = store.get_shard("cafe02")
        assert hit and data == {"gradients": [0.125, -0.5, 0.25]}
        reference = store.shard_path("cafe02").read_bytes()
        _write_shard_payload((str(tmp_path), "cafe02", -1))
        assert store.shard_path("cafe02").read_bytes() == reference

    def test_no_temp_or_lock_litter_after_writes(self, tmp_path):
        store = ResultStore(tmp_path)
        for index in range(4):
            store.put_shard("beef03", f"unit-{index}", {"value": index})
        leftovers = [
            p.name for p in store.shards_dir.iterdir() if p.suffix == ".tmp"
        ]
        assert leftovers == []
