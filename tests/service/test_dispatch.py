"""Lease-based remote dispatch: board semantics, workers, chaos recovery.

The acceptance bar for the ``remote`` executor is byte-identity: any
placement of a work unit — first lease, reclaimed re-dispatch after a
worker death, a straggler racing its own reclaim — must produce bytes
identical to the serial executor, because every unit carries its own
pre-reserved RNG children.  These tests kill workers mid-unit, drop
result uploads, and partition the network to prove it.
"""

import json
import threading
import time
import urllib.request

import pytest

import repro
from repro.core.executor import available_executors
from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.io import save_result
from repro.reliability.faults import NETWORK_KINDS, FaultAction, FaultPlan
from repro.service import ExperimentServer
from repro.service.dispatch import (
    SPEC_MISMATCH_EXIT,
    DispatchBoard,
    run_worker,
)

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=4, num_layers=3, methods=("random",)
)

_FAST_RETRY = {"max_attempts": 3, "base_delay": 0.0, "jitter": 0.0}


def _spec(**extra):
    extra.setdefault("executor", "remote")
    extra.setdefault("workers", 2)
    extra.setdefault("retry", _FAST_RETRY)
    return ExperimentSpec(kind="variance", config=_CONFIG, seed=7, **extra)


def _serial_bytes(tmp_path, **extra):
    """The reference bytes: the same grid under the serial executor."""
    extra.setdefault("retry", _FAST_RETRY)
    run = repro.run(
        ExperimentSpec(
            kind="variance", config=_CONFIG, seed=7, executor="serial", **extra
        )
    )
    path = tmp_path / "serial.json"
    save_result(run, path)
    return path.read_bytes()


def _register(board, entries, job_id="job-a", net_faults=None):
    board.register_job(
        job_id,
        {"kind": "test"},
        entries,
        net_faults=net_faults,
    )


# -- board unit tests -------------------------------------------------------


class TestDispatchBoard:
    def test_rejects_non_positive_ttl(self):
        with pytest.raises(ValueError, match="positive"):
            DispatchBoard(lease_ttl=0)

    def test_lease_grant_and_idle(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(board, [("u0", "fp0", None), ("u1", "fp1", None)])
        status, body = board.lease("w1")
        assert status == 200
        lease = body["lease"]
        assert lease["unit_id"] == "u0"  # FIFO
        assert lease["unit_fingerprint"] == "fp0"
        assert lease["attempt"] == 1
        assert lease["prior_attempts"] == 0
        assert body["spec"] == {"kind": "test"}
        status, body = board.lease("w2")
        assert body["lease"]["unit_id"] == "u1"
        status, body = board.lease("w3")
        assert body == {"lease": None, "idle": True}

    def test_empty_fingerprint_rejected(self):
        board = DispatchBoard(lease_ttl=5.0)
        with pytest.raises(ValueError, match="fingerprint"):
            _register(board, [("u0", "", None)])

    def test_duplicate_job_id_rejected(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(board, [("u0", "fp0", None)])
        with pytest.raises(ValueError, match="registered"):
            _register(board, [("u1", "fp1", None)])

    def test_heartbeat_renews_and_reports_lost(self):
        board = DispatchBoard(lease_ttl=0.3)
        _register(board, [("u0", "fp0", None)])
        _, body = board.lease("w1")
        lease_id = body["lease"]["lease_id"]
        # Renewals keep the lease alive past several native TTLs.
        for _ in range(4):
            time.sleep(0.15)
            _, beat = board.heartbeat("w1", [lease_id])
            assert beat["valid"] == [lease_id]
        _, beat = board.heartbeat("w1", ["lease-999999"])
        assert beat["lost"] == ["lease-999999"]
        assert board.stats()["reclaimed_leases"] == 0

    def test_expired_lease_reclaims_and_charges_attempt(self):
        board = DispatchBoard(lease_ttl=0.15)
        _register(board, [("u0", "fp0", None)])
        _, body = board.lease("w1")
        time.sleep(0.25)
        events = board.wait_events("job-a", timeout=1.0)
        assert [e["kind"] for e in events] == ["expired"]
        assert events[0]["unit_id"] == "u0"
        assert events[0]["worker_id"] == "w1"
        assert events[0]["attempt"] == 1
        # Parked at "reclaiming": not leasable until the executor rules.
        _, body = board.lease("w2")
        assert body["lease"] is None
        board.requeue("job-a", "u0")
        _, body = board.lease("w2")
        assert body["lease"]["unit_id"] == "u0"
        assert body["lease"]["attempt"] == 2  # the lost lease was charged
        assert body["lease"]["prior_attempts"] == 1
        assert board.stats()["reclaimed_leases"] == 1

    def test_result_is_idempotent_by_fingerprint(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(board, [("u0", "fp0", None)])
        board.lease("w1")
        status, body = board.submit_result(
            "fp0", {"worker_id": "w1", "status": "ok", "output": 42}
        )
        assert status == 200 and body["accepted"]
        # Duplicate upload: acknowledged, ignored, counted.
        status, body = board.submit_result(
            "fp0", {"worker_id": "w2", "status": "ok", "output": 42}
        )
        assert status == 200 and body["accepted"]
        events = board.wait_events("job-a", timeout=0.1)
        assert [e["kind"] for e in events] == ["done"]
        assert events[0]["output"] == 42
        stats = board.stats()
        assert stats["results_accepted"] == 1
        assert stats["duplicate_results"] == 1

    def test_unknown_fingerprint_is_late_404(self):
        board = DispatchBoard(lease_ttl=5.0)
        status, body = board.submit_result("ghost", {"status": "ok"})
        assert status == 404
        assert board.stats()["late_results"] == 1

    def test_failure_report_routes_to_outbox(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(board, [("u0", "fp0", None)])
        board.lease("w1")
        status, _ = board.submit_result(
            "fp0",
            {
                "worker_id": "w1",
                "status": "failed",
                "attempts": 3,
                "error": {"type": "InjectedFault", "message": "boom"},
            },
        )
        assert status == 200
        events = board.wait_events("job-a", timeout=0.1)
        assert events[0]["kind"] == "failed"
        assert events[0]["error_type"] == "InjectedFault"
        assert events[0]["attempts"] == 3
        # Failed units may be requeued (retry ruling) or stay failed.
        _, body = board.lease("w2")
        assert body["lease"] is None
        board.requeue("job-a", "u0")
        _, body = board.lease("w2")
        assert body["lease"]["unit_id"] == "u0"

    def test_unregister_turns_results_late(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(board, [("u0", "fp0", None)])
        board.lease("w1")
        board.unregister_job("job-a")
        status, _ = board.submit_result("fp0", {"status": "ok", "output": 1})
        assert status == 404
        assert board.wait_events("job-a", timeout=0.05) == []
        assert board.stats()["active_leases"] == 0


class TestNetworkFaults:
    def test_drop_lease_grants_phantom_lease(self):
        board = DispatchBoard(lease_ttl=0.15)
        _register(
            board,
            [("u0", "fp0", None)],
            net_faults={"u0": (FaultAction(kind="drop_lease", times=1),)},
        )
        status, body = board.lease("w1")
        assert status == 503  # response lost; lease granted internally
        assert board.stats()["dropped_leases"] == 1
        # Nobody heartbeats the phantom: it expires and is reclaimed.
        time.sleep(0.25)
        events = board.wait_events("job-a", timeout=1.0)
        assert [e["kind"] for e in events] == ["expired"]
        board.requeue("job-a", "u0")
        status, body = board.lease("w1")
        assert status == 200 and body["lease"]["unit_id"] == "u0"

    def test_drop_result_503_then_accepts(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(
            board,
            [("u0", "fp0", None)],
            net_faults={"u0": (FaultAction(kind="drop_result", times=1),)},
        )
        board.lease("w1")
        payload = {"worker_id": "w1", "status": "ok", "output": 7}
        status, _ = board.submit_result("fp0", payload)
        assert status == 503  # first upload swallowed
        status, body = board.submit_result("fp0", payload)
        assert status == 200 and body["accepted"]  # retry lands
        stats = board.stats()
        assert stats["dropped_results"] == 1
        assert stats["results_accepted"] == 1

    def test_partition_rejects_without_side_effect(self):
        board = DispatchBoard(lease_ttl=5.0)
        _register(
            board,
            [("u0", "fp0", None)],
            net_faults={"u0": (FaultAction(kind="partition", times=1),)},
        )
        status, _ = board.lease("w1")
        assert status == 503
        assert board.stats()["partitioned_requests"] == 1
        # No phantom lease: the next request gets the unit normally.
        status, body = board.lease("w1")
        assert status == 200 and body["lease"]["unit_id"] == "u0"

    def test_network_kinds_are_valid_fault_plan_kinds(self):
        plan = FaultPlan.from_dict(
            {
                "units": {
                    "u0": [
                        {"kind": kind, "times": 1} for kind in NETWORK_KINDS
                    ]
                }
            }
        )
        actions = plan.resolve(["u0"])["u0"]
        assert sorted(a.kind for a in actions) == sorted(NETWORK_KINDS)


# -- executor registration --------------------------------------------------


class TestRemoteExecutorRegistration:
    def test_remote_is_registered(self):
        assert "remote" in available_executors()

    def test_unbound_execute_fails_fast(self):
        from repro.core.executor import get_executor

        executor = get_executor("remote", workers=2)
        with pytest.raises(RuntimeError, match="must be bound"):
            list(executor._execute([object()]))


# -- end-to-end: standalone mode (embedded server + subprocess workers) -----


@pytest.mark.slow
class TestStandaloneRemote:
    def test_remote_matches_serial_byte_identical(self, tmp_path):
        run = repro.run(_spec())
        remote = tmp_path / "remote.json"
        save_result(run, remote)
        assert remote.read_bytes() == _serial_bytes(tmp_path)

    def test_remote_under_chaos_matches_serial(self, tmp_path):
        # One worker killed mid-unit, one result upload dropped, one
        # transient compute fault: the full robustness model in one run.
        plan = {
            "units": {
                "#0": [{"kind": "kill", "times": 1}],
                "#1": [{"kind": "drop_result", "times": 1}],
                "#2": [{"kind": "transient", "times": 1}],
            }
        }
        run = repro.run(_spec(fault_plan=plan))
        remote = tmp_path / "chaos.json"
        save_result(run, remote)
        assert remote.read_bytes() == _serial_bytes(tmp_path)


# -- end-to-end: service mode (repro serve + worker threads) ----------------


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get(url, raw=False):
    with urllib.request.urlopen(url) as response:
        body = response.read()
        return response.status, (body if raw else json.loads(body))


def _poll_done(server, job_id, timeout=90.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = _get(f"{server.url}/experiments/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError("job did not finish in time")


class _WorkerPool:
    """In-thread ``run_worker`` loops against a served coordinator."""

    def __init__(self, url, count=2, **kwargs):
        self.stop_event = threading.Event()
        kwargs.setdefault("poll_interval", 0.05)
        self.threads = [
            threading.Thread(
                target=run_worker,
                args=(url,),
                kwargs={
                    "worker_id": f"t{i}",
                    "allow_exit": False,
                    "should_stop": self.stop_event.is_set,
                    **kwargs,
                },
                daemon=True,
            )
            for i in range(count)
        ]
        for thread in self.threads:
            thread.start()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.stop_event.set()
        for thread in self.threads:
            thread.join(timeout=10.0)


@pytest.mark.slow
class TestServedRemote:
    def test_served_remote_matches_serial(self, tmp_path):
        with ExperimentServer(store=tmp_path / "store") as server:
            with _WorkerPool(server.url, count=2):
                _, job = _post(
                    f"{server.url}/experiments", _spec().to_dict()
                )
                status = _poll_done(server, job["job_id"])
                assert status["state"] == "done", status.get("error")
                _, body = _get(
                    f"{server.url}/experiments/{job['job_id']}/result",
                    raw=True,
                )
        run = repro.run(
            ExperimentSpec(
                kind="variance",
                config=_CONFIG,
                seed=7,
                executor="serial",
                retry=_FAST_RETRY,
            )
        )
        path = tmp_path / "serial.json"
        save_result(run, path)
        assert body == path.read_bytes()

    def test_stale_lease_reclaim_redispatches_byte_identical(self, tmp_path):
        """A worker dies mid-unit; the lease expires; a second worker
        picks the unit up; the final bytes match the serial executor —
        including when the first result upload of another unit is
        dropped on the floor."""
        plan = {"units": {"#1": [{"kind": "drop_result", "times": 1}]}}
        with ExperimentServer(
            store=tmp_path / "store", lease_ttl=0.5
        ) as server:
            _, job = _post(
                f"{server.url}/experiments", _spec(fault_plan=plan).to_dict()
            )
            # A doomed worker takes the first lease and vanishes without
            # ever heartbeating — the thread-free way to kill a worker
            # mid-unit.  (Retry: the job may still be planning.)
            deadline = time.monotonic() + 30.0
            doomed_unit = None
            while doomed_unit is None and time.monotonic() < deadline:
                status, body = _post(
                    f"{server.url}/work/lease", {"worker_id": "doomed"}
                )
                if status == 200 and body.get("lease"):
                    doomed_unit = body["lease"]["unit_id"]
                else:
                    time.sleep(0.05)
            # Healthy workers arrive; the expired lease is reclaimed and
            # the unit re-dispatched to one of them.
            with _WorkerPool(server.url, count=2):
                done = _poll_done(server, job["job_id"])
            assert done["state"] == "done", done.get("error")
            assert done["reliability"]["reclaimed_leases"] >= 1
            _, health = _get(f"{server.url}/healthz")
            assert health["dispatch"]["reclaimed_leases"] >= 1
            assert health["dispatch"]["dropped_results"] >= 1
            _, served = _get(
                f"{server.url}/experiments/{job['job_id']}/result", raw=True
            )
        assert doomed_unit  # the stale lease really covered a unit
        envelope = json.loads(served)
        run = repro.run(
            ExperimentSpec(
                kind="variance",
                config=_CONFIG,
                seed=7,
                executor="serial",
                retry=_FAST_RETRY,
            )
        )
        path = tmp_path / "serial.json"
        save_result(run, path)
        reference = json.loads(path.read_bytes())
        assert envelope == reference

    def test_spec_mismatch_fails_fast(self, tmp_path):
        board = DispatchBoard(lease_ttl=5.0)
        spec_payload = _spec(workers=1).to_dict()
        from repro.core.spec import plan_experiment

        plan = plan_experiment(ExperimentSpec.from_dict(spec_payload))
        unit_id = plan.units[0].unit_id
        board.register_job(
            "job-a", spec_payload, [(unit_id, "wrong-fingerprint", None)]
        )
        from repro.service.dispatch import make_dispatch_server

        server = make_dispatch_server(board)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://{server.server_address[0]}:{server.server_address[1]}"
            code = run_worker(
                url, worker_id="strict", poll_interval=0.05, once=True,
                allow_exit=False,
            )
            assert code == SPEC_MISMATCH_EXIT
            events = board.wait_events("job-a", timeout=1.0)
            assert events and events[0]["kind"] == "failed"
            assert events[0]["error_type"] == "SpecMismatch"
        finally:
            server.shutdown()
            server.server_close()


class TestWorkerCLI:
    def test_worker_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "worker",
                "--connect",
                "http://127.0.0.1:8642",
                "--worker-id",
                "w7",
                "--once",
            ]
        )
        assert args.command == "worker"
        assert args.connect == "http://127.0.0.1:8642"
        assert args.worker_id == "w7"
        assert args.once is True

    def test_serve_lease_ttl_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", "x", "--lease-ttl", "3.5"]
        )
        assert args.lease_ttl == 3.5
