"""End-to-end HTTP tests for ``repro serve`` (ExperimentServer)."""

import json
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro
from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.io.serialization import RESULT_TYPES
from repro.service import ExperimentServer

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=4, num_layers=3, methods=("random",)
)
_SPEC = ExperimentSpec(kind="variance", config=_CONFIG, seed=7)


@pytest.fixture
def server(tmp_path):
    with ExperimentServer(store=tmp_path / "store") as server:
        yield server


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get(url, raw=False):
    with urllib.request.urlopen(url) as response:
        body = response.read()
        return response.status, (body if raw else json.loads(body))


def _poll_done(server, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = _get(f"{server.url}/experiments/{job_id}")
        if status["state"] in ("done", "failed"):
            return status
        time.sleep(0.02)
    raise AssertionError("job did not finish in time")


class TestEndpoints:
    def test_healthz(self, server):
        code, payload = _get(f"{server.url}/healthz")
        assert code == 200
        assert payload["status"] == "ok"
        assert "shards" in payload["store"]

    def test_unknown_routes_404(self, server):
        for method, path in (("GET", "/nope"), ("GET", "/experiments/ghost")):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + path)
            assert excinfo.value.code == 404

    def test_bad_submission_400(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post(f"{server.url}/experiments", {"kind": "nonsense"})
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())

    def test_result_before_done_409(self, server, monkeypatch):
        import threading

        import repro.core.variance as vmod

        release = threading.Event()
        original = vmod.run_variance_shard

        def gated(config, shard, **kwargs):
            release.wait(timeout=30)
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", gated)
        try:
            code, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
            assert code == 202
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/experiments/{job['job_id']}/result")
            assert excinfo.value.code == 409
        finally:
            release.set()
        _poll_done(server, job["job_id"])

    def test_listing(self, server):
        _post(f"{server.url}/experiments", _SPEC.to_dict())
        code, payload = _get(f"{server.url}/experiments")
        assert code == 200
        assert len(payload["jobs"]) == 1
        _poll_done(server, payload["jobs"][0]["job_id"])


class TestServedResults:
    def test_resubmission_is_bit_identical_cache_hit(self, server):
        code, first = _post(f"{server.url}/experiments", _SPEC.to_dict())
        assert code == 202
        assert _poll_done(server, first["job_id"])["state"] == "done"
        _, payload_one = _get(
            f"{server.url}/experiments/{first['job_id']}/result", raw=True
        )

        code, second = _post(f"{server.url}/experiments", _SPEC.to_dict())
        assert code == 200  # done at submission time
        assert second["state"] == "done"
        assert second["cache_hit"] is True
        _, payload_two = _get(
            f"{server.url}/experiments/{second['job_id']}/result", raw=True
        )
        assert payload_one == payload_two  # byte-identical serving

        envelope = json.loads(payload_one)
        served = RESULT_TYPES[envelope["type"]].from_dict(envelope["data"])
        direct = repro.run(
            ExperimentSpec(
                kind="variance", config=_CONFIG, seed=7, executor="serial"
            )
        )
        for key in direct.result.samples:
            assert np.array_equal(
                direct.result.samples[key].gradients,
                served.result.samples[key].gradients,
            ), key

    def test_progress_counters_in_status(self, server):
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        status = _poll_done(server, job["job_id"])
        progress = status["progress"]
        assert progress["total_units"] == 2
        assert progress["completed_units"] == 2


class TestPartialResults:
    _fast_retry = {"max_attempts": 2, "base_delay": 0.0, "jitter": 0.0}

    def test_partial_view_of_quarantined_job(self, server):
        # Unit #1 exhausts its retry budget; the job quarantines it and
        # fails, but ?partial=1 salvages the healthy unit's shard plus
        # the persisted failure report.
        spec = ExperimentSpec(
            kind="variance",
            config=_CONFIG,
            seed=7,
            retry=self._fast_retry,
            fault_plan={"units": {"#1": [{"kind": "transient", "times": 10}]}},
        )
        _, job = _post(f"{server.url}/experiments", spec.to_dict())
        assert _poll_done(server, job["job_id"])["state"] == "failed"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/experiments/{job['job_id']}/result")
        assert excinfo.value.code == 500  # the full result does not exist
        _, partial = _get(
            f"{server.url}/experiments/{job['job_id']}/result?partial=1"
        )
        assert partial["partial"] is True
        assert partial["state"] == "failed"
        assert partial["total_units"] == 2
        assert len(partial["completed_units"]) == 1
        assert partial["completed_units"][0]["data"]  # real shard payload
        assert len(partial["missing_units"]) == 1
        report = partial["failure_report"]
        assert report is not None
        assert report["data"]["quarantined"][0]["error_type"] == (
            "InjectedFault"
        )

    def test_partial_view_of_done_job_has_no_gaps(self, server):
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        assert _poll_done(server, job["job_id"])["state"] == "done"
        _, partial = _get(
            f"{server.url}/experiments/{job['job_id']}/result?partial=true"
        )
        assert partial["missing_units"] == []
        assert len(partial["completed_units"]) == partial["total_units"]
        assert partial["failure_report"] is None


class TestEventStream:
    def test_long_poll_streams_unit_progress(self, server):
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        job_id = job["job_id"]
        since, kinds = 0, []
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            _, body = _get(
                f"{server.url}/experiments/{job_id}/events"
                f"?since={since}&timeout=5"
            )
            for event in body["events"]:
                assert event["seq"] > since
                kinds.append(event["kind"])
                assert "completed_units" in event
                assert "cached_units" in event
                assert "total_retries" in event
            since = body["next_since"]
            if body["state"] in ("done", "failed") and not body["events"]:
                break
        assert kinds.count("unit") == 2  # one per completed shard
        assert kinds[-1] == "state"  # terminal transition closes the stream
        # Sequence numbers are dense: replaying from 0 yields them all.
        _, replay = _get(
            f"{server.url}/experiments/{job_id}/events?since=0&timeout=0"
        )
        assert [e["seq"] for e in replay["events"]] == list(
            range(1, len(replay["events"]) + 1)
        )

    def test_cached_resubmission_emits_cached_unit_events(self, server):
        _, first = _post(f"{server.url}/experiments", _SPEC.to_dict())
        _poll_done(server, first["job_id"])
        # Same config, different seed: shares no shards; different
        # circuits_per_shard would too — instead force a partial cache
        # hit by resubmitting the identical spec with a cleared result
        # (simplest: a spec whose shards are cached but whose result
        # fingerprint differs via retry, a non-fingerprinted field, is
        # a full cache hit — so just assert the done-job replay shape).
        _, replay = _get(
            f"{server.url}/experiments/{first['job_id']}/events"
            f"?since=0&timeout=0"
        )
        events = replay["events"]
        assert events[0]["kind"] == "state"
        assert events[0]["state"] == "running"
        unit_events = [e for e in events if e["kind"] == "unit"]
        assert all(e["cached"] is False for e in unit_events)
        assert events[-1]["completed_units"] == 2

    def test_non_numeric_since_is_400(self, server):
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(
                f"{server.url}/experiments/{job['job_id']}/events?since=abc"
            )
        assert excinfo.value.code == 400
        _poll_done(server, job["job_id"])

    def test_events_for_unknown_job_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{server.url}/experiments/ghost/events?since=0&timeout=0")
        assert excinfo.value.code == 404


class TestCLI:
    def test_serve_command_registered(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--store", "x"]
        )
        assert args.command == "serve"
        assert args.port == 0


class TestNoisyService:
    """Noisy specs flow through the HTTP service with distinct cache keys."""

    _noise = {"default": {"name": "depolarizing", "probability": 0.02}}

    def test_noisy_spec_runs_and_caches(self, server):
        spec = ExperimentSpec(
            kind="variance", config=_CONFIG, seed=7, noise=self._noise
        )
        code, first = _post(f"{server.url}/experiments", spec.to_dict())
        assert code == 202
        assert _poll_done(server, first["job_id"])["state"] == "done"
        # The noisy fingerprint must not hit the noiseless cache entry.
        assert first["fingerprint"] != ExperimentSpec(
            kind="variance", config=_CONFIG, seed=7
        ).fingerprint()
        code, again = _post(f"{server.url}/experiments", spec.to_dict())
        assert code == 200
        assert again["cache_hit"] is True
        assert again["fingerprint"] == first["fingerprint"]

    def test_noisy_and_noiseless_results_are_distinct_entries(self, server):
        noiseless = _SPEC.to_dict()
        noisy = ExperimentSpec(
            kind="variance", config=_CONFIG, seed=7, noise=self._noise
        ).to_dict()
        _, job_a = _post(f"{server.url}/experiments", noiseless)
        _, job_b = _post(f"{server.url}/experiments", noisy)
        _poll_done(server, job_a["job_id"])
        _poll_done(server, job_b["job_id"])
        _, body_a = _get(
            f"{server.url}/experiments/{job_a['job_id']}/result", raw=True
        )
        _, body_b = _get(
            f"{server.url}/experiments/{job_b['job_id']}/result", raw=True
        )
        assert body_a != body_b


class TestHealthzRetryMetrics:
    def test_healthz_reports_retry_budget_metrics(self, server):
        code, payload = _get(f"{server.url}/healthz")
        assert code == 200
        retries = payload["retries"]
        assert retries == {
            "jobs_by_state": {},
            "total_retries": 0,
            "units_retried": 0,
            "units_failed": 0,
            "pool_rebuilds": 0,
        }
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        _poll_done(server, job["job_id"])
        _, payload = _get(f"{server.url}/healthz")
        assert payload["retries"]["jobs_by_state"] == {"done": 1}

    def test_healthz_counts_retries(self, server, monkeypatch):
        import repro.core.variance as vmod

        original = vmod.run_variance_shard
        failed = set()

        def flaky(config, shard, **kwargs):
            if shard.unit_id not in failed:
                failed.add(shard.unit_id)
                raise OSError("transient")
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", flaky)
        _, job = _post(f"{server.url}/experiments", _SPEC.to_dict())
        assert _poll_done(server, job["job_id"])["state"] == "done"
        _, payload = _get(f"{server.url}/healthz")
        retries = payload["retries"]
        assert retries["total_retries"] >= 1
        assert retries["units_retried"] >= 1
        assert retries["units_failed"] == 0
