"""JobQueue: caching tiers, in-flight dedup, shard reuse, failures."""

import threading
import time

import numpy as np
import pytest

import repro
import repro.core.variance as vmod
from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.service import JobQueue, ServiceError

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=4, num_layers=3, methods=("random",)
)


def _spec(**overrides):
    base = dict(kind="variance", config=_CONFIG, seed=3)
    base.update(overrides)
    return ExperimentSpec(**base)


def _wait(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed"):
        assert time.monotonic() < deadline, f"timed out in state {job.state}"
        time.sleep(0.01)
    return job


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "store").start()
    yield queue
    queue.stop()


class TestSubmission:
    def test_runs_and_matches_direct_run(self, queue):
        job = _wait(queue.submit(_spec()))
        assert job.state == "done"
        assert not job.cache_hit
        assert job.completed_units == job.total_units > 0
        served = queue.store.load_outcome(job.fingerprint)
        direct = repro.run(_spec(executor="serial"))
        for key in direct.result.samples:
            assert np.array_equal(
                direct.result.samples[key].gradients,
                served.result.samples[key].gradients,
            ), key

    def test_accepts_dict_specs(self, queue):
        job = _wait(queue.submit(_spec().to_dict()))
        assert job.state == "done"

    def test_rejects_sweep(self, queue):
        spec = ExperimentSpec(
            kind="sweep",
            sweep_field="num_layers",
            sweep_values=[1, 2],
            seed=0,
        )
        with pytest.raises(ServiceError, match="sweep"):
            queue.submit(spec)

    def test_rejects_garbage(self, queue):
        with pytest.raises(ServiceError, match="invalid experiment spec"):
            queue.submit({"kind": "nonsense"})

    def test_strips_checkpoint_dir(self, queue, tmp_path):
        job = _wait(queue.submit(_spec(checkpoint_dir=tmp_path / "ckpt")))
        assert job.state == "done"
        assert job.spec.checkpoint_dir is None
        assert not (tmp_path / "ckpt").exists()

    def test_failed_job_reports_error(self, queue, monkeypatch):
        def boom(config, shard, **kwargs):
            raise RuntimeError("shard exploded")

        monkeypatch.setattr(vmod, "run_variance_shard", boom)
        job = _wait(queue.submit(_spec()))
        assert job.state == "failed"
        assert "shard exploded" in job.error
        # The fingerprint is released: a later submission retries.
        monkeypatch.undo()
        retry = _wait(queue.submit(_spec()))
        assert retry.job_id != job.job_id
        assert retry.state == "done"


class TestCaching:
    def test_exact_resubmission_is_instant_cache_hit(self, queue, monkeypatch):
        first = _wait(queue.submit(_spec()))
        calls = []
        monkeypatch.setattr(
            vmod,
            "run_variance_shard",
            lambda *a, **k: calls.append(1),
        )
        second = queue.submit(_spec())
        assert second.state == "done"  # no waiting: done at submit time
        assert second.cache_hit
        assert second.job_id != first.job_id
        assert calls == []
        assert queue.result_text(second) == queue.result_text(first)

    def test_subset_spec_reuses_shards(self, queue, monkeypatch):
        """Grid cells shared with a superset run never recompute."""
        superset = VarianceConfig(
            qubit_counts=(2, 3, 4),
            num_circuits=4,
            num_layers=3,
            methods=("random",),
        )
        subset = VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=4,
            num_layers=3,
            methods=("random",),
        )
        calls = []
        original = vmod.run_variance_shard

        def counting(config, shard, **kwargs):
            calls.append(shard.unit_id)
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", counting)
        _wait(queue.submit(_spec(config=superset)))
        executed_by_superset = len(calls)
        assert executed_by_superset > 0

        job = _wait(queue.submit(_spec(config=subset)))
        assert job.state == "done"
        assert not job.cache_hit  # different spec fingerprint...
        assert len(calls) == executed_by_superset  # ...but zero new shards
        assert job.cached_units == job.total_units == 2

        direct = repro.run(_spec(config=subset, executor="serial"))
        served = queue.store.load_outcome(job.fingerprint)
        for key in direct.result.samples:
            assert np.array_equal(
                direct.result.samples[key].gradients,
                served.result.samples[key].gradients,
            ), key

    def test_inflight_dedup_shares_one_job(self, tmp_path, monkeypatch):
        """Concurrent identical submissions collapse into one execution."""
        release = threading.Event()
        original = vmod.run_variance_shard

        def gated(config, shard, **kwargs):
            release.wait(timeout=30)
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", gated)
        queue = JobQueue(tmp_path / "store").start()
        try:
            jobs = [queue.submit(_spec()) for _ in range(5)]
            assert len({job.job_id for job in jobs}) == 1
            assert jobs[0].submissions == 5
            release.set()
            _wait(jobs[0])
            assert jobs[0].state == "done"
        finally:
            release.set()
            queue.stop()

    def test_executor_override_applies(self, tmp_path):
        queue = JobQueue(tmp_path / "store", executor="serial").start()
        try:
            job = _wait(queue.submit(_spec()))
            assert job.spec.executor == "serial"
            assert job.state == "done"
        finally:
            queue.stop()
