"""JobQueue reliability: quarantine, timeouts, drain/persist/restore."""

import time

import pytest

from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.service import JobQueue, ResultStore, ServiceUnavailable

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=3, num_layers=2, methods=("random",)
)

_FAST_RETRY = {"max_attempts": 2, "base_delay": 0.0, "jitter": 0.0}


def _spec(**extra):
    return ExperimentSpec(
        kind="variance",
        config=_CONFIG,
        seed=11,
        circuits_per_shard=_CONFIG.num_circuits,
        **extra,
    )


def _wait(job, timeout=60.0):
    deadline = time.monotonic() + timeout
    while job.state not in ("done", "failed"):
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.02)
    return job


@pytest.fixture
def queue(tmp_path):
    queue = JobQueue(tmp_path / "store", retry=_FAST_RETRY).start()
    yield queue
    queue.stop()


class TestRetrySurfacing:
    def test_transient_fault_retries_show_in_status(self, queue):
        plan = {"units": {"#0": [{"kind": "transient", "times": 1}]}}
        job = _wait(queue.submit(_spec(fault_plan=plan)))
        assert job.state == "done", job.error
        reliability = job.status_dict()["reliability"]
        assert reliability["total_retries"] == 1
        assert list(reliability["retried_units"].values()) == [1]
        assert reliability["failed_units"] == []


class TestQuarantine:
    def test_exhausted_unit_fails_job_with_partial_results(self, queue):
        plan = {"units": {"#1": [{"kind": "transient", "times": 10}]}}
        job = _wait(queue.submit(_spec(fault_plan=plan)))
        assert job.state == "failed"
        assert "quarantined" in job.error
        assert len(job.failed_units) == 1
        failure = job.failed_units[0]
        assert failure["error_type"] == "InjectedFault"
        assert failure["attempts"] == 2
        # The healthy unit's shard is cached: a resubmission after the
        # chaos clears recomputes only the quarantined one.
        assert queue.store.stats()["shards"] == 1
        # The full report (with tracebacks) is persisted for operators.
        report_path = queue.store.root / "failures" / f"{job.job_id}.json"
        assert report_path.is_file()
        from repro.io import load_result

        report = load_result(report_path)
        assert report.quarantined[0].traceback

    def test_resubmission_after_quarantine_reuses_cached_shards(self, queue):
        plan = {"units": {"#1": [{"kind": "transient", "times": 10}]}}
        failed = _wait(queue.submit(_spec(fault_plan=plan)))
        assert failed.state == "failed"
        healed = _wait(queue.submit(_spec()))
        assert healed.state == "done", healed.error
        assert healed.cached_units == 1  # the shard that survived chaos


class TestTimeouts:
    # The serial executor checks the abort signal between unit attempts,
    # so the injected sleep only needs to outlast the timeout, not the
    # test: ~2s bounds each of these tests.
    def test_job_timeout_aborts(self, tmp_path):
        plan = {
            "units": {
                "#0": [{"kind": "slow", "times": 1, "seconds": 2.0}]
            }
        }
        queue = JobQueue(
            tmp_path / "store", retry=_FAST_RETRY, job_timeout=0.3
        ).start()
        try:
            job = _wait(queue.submit(_spec(fault_plan=plan)), timeout=30.0)
            assert job.state == "failed"
            assert "wall-clock timeout" in job.error
        finally:
            queue.stop(timeout=0.1)

    @pytest.mark.slow
    def test_stall_timeout_aborts(self, tmp_path):
        # A stall is only observable while a pool drains with nothing
        # completing (the in-process executors heartbeat on every
        # retry/result), so this one needs a real multi-worker pool —
        # workers=1 short-circuits to the in-process path.
        plan = {
            "units": {
                "#0": [{"kind": "slow", "times": 1, "seconds": 5.0}]
            }
        }
        queue = JobQueue(
            tmp_path / "store", retry=_FAST_RETRY, stall_timeout=0.3
        ).start()
        try:
            job = _wait(
                queue.submit(
                    _spec(fault_plan=plan, executor="process_pool", workers=2)
                ),
                timeout=60.0,
            )
            assert job.state == "failed"
            assert "stalled" in job.error
        finally:
            queue.stop(timeout=0.1)


class TestDrainPersistRestore:
    def test_draining_queue_rejects_submissions(self, queue):
        queue.begin_draining()
        with pytest.raises(ServiceUnavailable, match="draining"):
            queue.submit(_spec())

    def test_drain_waits_for_inflight(self, queue):
        job = queue.submit(_spec())
        queue.begin_draining()
        assert queue.drain(timeout=60.0)
        assert job.state == "done", job.error

    def test_persist_and_restore_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        # A stopped queue: the job sits queued, is persisted, and a new
        # queue on the same store picks it up and runs it.
        first = JobQueue(store)
        job = first.submit(_spec())
        assert job.state == "queued"
        first.persist_state()
        assert first.state_path().is_file()

        second = JobQueue(store).start()
        try:
            assert second.restore_state() == 1
            assert not second.state_path().exists()  # consumed
            restored = _wait(second.jobs()[0])
            assert restored.state == "done", restored.error
        finally:
            second.stop()

    def test_restore_with_no_state_file_is_zero(self, tmp_path):
        queue = JobQueue(tmp_path / "store")
        assert queue.restore_state() == 0

    def test_stop_is_idempotent(self, tmp_path):
        queue = JobQueue(tmp_path / "store").start()
        queue.stop()
        queue.stop()  # second call must be a no-op, not a hang/raise

    def test_submission_racing_drain_cannot_double_execute(
        self, queue, monkeypatch
    ):
        # Regression: a SIGTERM drain flipping the flag between submit()'s
        # unlocked fast-path check and its locked critical section used
        # to let the submission slip through — persisted for the next
        # server AND runnable by a not-yet-stopped worker thread (the
        # same spec executed twice).  Simulate the race by flipping the
        # flag inside spec.fingerprint(), which submit() calls exactly
        # in that window; the locked re-check must 503.
        original = ExperimentSpec.fingerprint

        def flip_then_fingerprint(self, plan=None):
            if not queue.draining:
                queue.begin_draining()
            return original(self, plan)

        monkeypatch.setattr(
            ExperimentSpec, "fingerprint", flip_then_fingerprint
        )
        with pytest.raises(ServiceUnavailable, match="draining"):
            queue.submit(_spec())
        # The rejected submission left no trace: nothing in flight to
        # run now, nothing persisted for a restarted server to rerun.
        assert queue.jobs() == []
        assert queue.drain(timeout=10.0)
        queue.persist_state()
        import json

        payload = json.loads(queue.state_path().read_text(encoding="utf-8"))
        assert payload["jobs"] == []
