"""ResultStore eviction: LRU byte budget, age expiry, index, quarantine."""

import json
import os
import time

import pytest

from repro.service import ResultStore


def _put(store, key, payload_size=0):
    store.put_shard(key, f"unit-{key}", {"pad": "x" * payload_size})
    return store.shard_path(key)


def _age(path, seconds):
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestByteBudget:
    def test_gc_evicts_oldest_first_down_to_budget(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = [_put(store, f"aa{i}") for i in range(4)]
        for index, path in enumerate(paths):
            _age(path, 1000 - index * 100)  # aa0 oldest ... aa3 newest
        size = paths[0].stat().st_size
        summary = store.gc(max_bytes=2 * size)
        assert summary["evicted"] == 2
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        assert summary["total_bytes"] <= 2 * size

    def test_reads_refresh_recency(self, tmp_path):
        store = ResultStore(tmp_path)
        paths = [_put(store, f"bb{i}") for i in range(3)]
        for path in paths:
            _age(path, 1000)
        hit, _ = store.get_shard("bb0")  # touch: bb0 becomes newest
        assert hit
        size = paths[0].stat().st_size
        store.gc(max_bytes=size)
        assert paths[0].exists()
        assert not paths[1].exists() and not paths[2].exists()

    def test_put_over_budget_triggers_gc(self, tmp_path):
        # Measure one entry's size, then bound the store to exactly that:
        # the second put pushes the total over and must auto-evict the
        # older entry without any explicit gc() call.
        probe = ResultStore(tmp_path)
        first = _put(probe, "cc0")
        size = first.stat().st_size
        _age(first, 100)
        store = ResultStore(tmp_path, max_bytes=size)
        _put(store, "cc1")
        assert not first.exists()
        assert store.shard_path("cc1").exists()
        assert store.total_bytes() <= size

    def test_unbounded_store_never_gcs_on_put(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(3):
            _put(store, f"dd{i}")
        assert store.stats()["shards"] == 3


class TestAgeExpiry:
    def test_gc_evicts_expired_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        old = _put(store, "ee0")
        fresh = _put(store, "ee1")
        _age(old, 3600)
        summary = store.gc(max_age=60.0)
        assert summary["evicted"] == 1
        assert not old.exists() and fresh.exists()


class TestIndex:
    def test_total_bytes_tracks_puts(self, tmp_path):
        store = ResultStore(tmp_path)
        a = _put(store, "ff0")
        b = _put(store, "ff1", payload_size=100)
        assert store.total_bytes() == a.stat().st_size + b.stat().st_size

    def test_index_self_heals_from_scan(self, tmp_path):
        store = ResultStore(tmp_path)
        path = _put(store, "gg0")
        (tmp_path / "index.json").write_text("{ corrupt")
        assert store.total_bytes() == path.stat().st_size
        (tmp_path / "index.json").unlink()
        assert store.total_bytes() == path.stat().st_size

    def test_gc_rewrites_index_to_survivors(self, tmp_path):
        store = ResultStore(tmp_path)
        keep = _put(store, "hh0")
        drop = _put(store, "hh1")
        _age(drop, 3600)
        store.gc(max_age=60.0)
        index = json.loads((tmp_path / "index.json").read_text())
        assert set(index["entries"]) == {f"shards/{keep.name}"}


class TestQuarantineDuringGC:
    def test_unreadable_entry_is_quarantined_not_deleted(self, tmp_path):
        store = ResultStore(tmp_path)
        path = _put(store, "ii0")
        path.write_text("{ truncated")
        with pytest.warns(RuntimeWarning, match="quarantined corrupt"):
            summary = store.gc(max_bytes=10**9)
        assert summary["quarantined"] == 1
        assert not path.exists()
        quarantined = list(store.quarantine_dir.glob("*.json"))
        assert len(quarantined) == 1
        assert quarantined[0].read_text() == "{ truncated"
        assert store.stats()["quarantined"] == 1


class TestStats:
    def test_stats_reports_budgets_and_totals(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10**6, max_age=3600.0)
        _put(store, "jj0")
        stats = store.stats()
        assert stats["max_bytes"] == 10**6
        assert stats["max_age"] == 3600.0
        assert stats["total_bytes"] > 0
        assert stats["shards"] == 1
        assert stats["quarantined"] == 0
