"""Unit tests for the generic variance-scaling initializers."""

import numpy as np
import pytest

from repro.initializers import (
    HeNormal,
    LeCunNormal,
    ParameterShape,
    TruncatedNormal,
    VarianceScaling,
    XavierNormal,
    XavierUniform,
    get_initializer,
    variance_scaling_equivalent,
)

_BIG = ParameterShape(num_layers=500, num_qubits=10, params_per_qubit=2)


class TestVarianceScaling:
    @pytest.mark.parametrize(
        "scale,mode,expected_var",
        [
            (1.0, "fan_in", 0.1),
            (2.0, "fan_in", 0.2),
            (1.0, "fan_avg", 0.1),
            (3.0, "fan_out", 0.3),
        ],
    )
    def test_normal_variance(self, scale, mode, expected_var):
        init = VarianceScaling(scale=scale, mode=mode, distribution="normal")
        params = init.sample(_BIG, seed=0)
        assert params.var() == pytest.approx(expected_var, rel=0.05)

    def test_uniform_variance_matched(self):
        init = VarianceScaling(scale=1.5, mode="fan_in", distribution="uniform")
        params = init.sample(_BIG, seed=1)
        assert params.var() == pytest.approx(0.15, rel=0.05)
        limit = np.sqrt(3.0 * 0.15)
        assert params.min() >= -limit and params.max() <= limit

    def test_truncated_normal_variance_matched(self):
        init = VarianceScaling(
            scale=1.0, mode="fan_in", distribution="truncated_normal"
        )
        params = init.sample(_BIG, seed=2)
        assert params.var() == pytest.approx(0.1, rel=0.05)

    def test_truncated_normal_bounded(self):
        init = VarianceScaling(
            scale=1.0, mode="fan_in", distribution="truncated_normal"
        )
        params = init.sample(_BIG, seed=3)
        # Pre-truncation sigma = sqrt(0.1)/0.8796; bound = 2 sigma.
        bound = 2.0 * np.sqrt(0.1) / 0.879596566170685
        assert np.abs(params).max() <= bound + 1e-12

    def test_registry_entry(self):
        init = get_initializer("variance_scaling", scale=2.0, mode="fan_avg")
        assert isinstance(init, VarianceScaling)
        assert init.scale == pytest.approx(2.0)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            VarianceScaling(scale=0.0)
        with pytest.raises(ValueError):
            VarianceScaling(mode="fan_min")
        with pytest.raises(ValueError):
            VarianceScaling(distribution="levy")


class TestEquivalences:
    @pytest.mark.parametrize(
        "name,reference",
        [
            ("xavier_normal", XavierNormal()),
            ("he_normal", HeNormal()),
            ("lecun_normal", LeCunNormal()),
            ("xavier_uniform", XavierUniform()),
        ],
    )
    def test_matches_classical_scheme_statistically(self, name, reference):
        generic = variance_scaling_equivalent(name)
        var_generic = generic.sample(_BIG, seed=4).var()
        var_reference = reference.sample(_BIG, seed=5).var()
        assert var_generic == pytest.approx(var_reference, rel=0.05)

    def test_unknown_equivalent(self):
        with pytest.raises(ValueError):
            variance_scaling_equivalent("orthogonal")


class TestTruncatedNormal:
    def test_hard_bound(self):
        params = TruncatedNormal(stddev=0.5).sample(_BIG, seed=6)
        assert np.abs(params).max() <= 1.0 + 1e-12

    def test_zero_stddev(self):
        params = TruncatedNormal(stddev=0.0).sample(_BIG, seed=7)
        assert np.all(params == 0.0)

    def test_std_below_nominal(self):
        """Truncation removes tails, so the realized std is < stddev."""
        params = TruncatedNormal(stddev=0.5).sample(_BIG, seed=8)
        assert 0.38 < params.std() < 0.5

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            TruncatedNormal(stddev=-1.0)

    def test_registry(self):
        init = get_initializer("truncated_normal", stddev=0.2)
        assert isinstance(init, TruncatedNormal)
