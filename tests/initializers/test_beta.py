"""Unit tests for the BeInit beta-distribution initializer."""

import numpy as np
import pytest

from repro.initializers import BetaInitializer, ParameterShape

_SHAPE = ParameterShape(num_layers=400, num_qubits=10, params_per_qubit=2)


class TestSampling:
    def test_range(self):
        params = BetaInitializer(2.0, 2.0, scale=2 * np.pi).sample(_SHAPE, seed=0)
        assert params.min() >= 0.0
        assert params.max() <= 2 * np.pi

    def test_moments_symmetric(self):
        params = BetaInitializer(2.0, 2.0, scale=1.0).sample(_SHAPE, seed=1)
        assert params.mean() == pytest.approx(0.5, abs=0.01)
        # Beta(2,2) variance = 4 / (16 * 5) = 0.05.
        assert params.var() == pytest.approx(0.05, rel=0.05)

    def test_asymmetric_mean(self):
        params = BetaInitializer(4.0, 1.0, scale=1.0).sample(_SHAPE, seed=2)
        assert params.mean() == pytest.approx(0.8, abs=0.01)

    def test_rejects_nonpositive_parameters(self):
        with pytest.raises(ValueError):
            BetaInitializer(alpha=0.0, beta=2.0)
        with pytest.raises(ValueError):
            BetaInitializer(alpha=2.0, beta=-1.0)


class TestMomentFitting:
    def test_round_trip(self):
        init = BetaInitializer.from_moments(mean=0.3, variance=0.02, scale=1.0)
        # Analytic moments of the recovered distribution match the targets.
        total = init.alpha + init.beta
        assert init.alpha / total == pytest.approx(0.3)
        fitted_var = (init.alpha * init.beta) / (total**2 * (total + 1.0))
        assert fitted_var == pytest.approx(0.02)

    def test_sampled_moments_match(self):
        init = BetaInitializer.from_moments(mean=0.6, variance=0.03, scale=1.0)
        params = init.sample(_SHAPE, seed=3)
        assert params.mean() == pytest.approx(0.6, abs=0.01)
        assert params.var() == pytest.approx(0.03, rel=0.1)

    def test_from_samples(self):
        source = BetaInitializer(3.0, 5.0, scale=2 * np.pi)
        draws = source.sample(_SHAPE, seed=4)
        refit = BetaInitializer.from_samples(draws, scale=2 * np.pi)
        assert refit.alpha == pytest.approx(3.0, rel=0.1)
        assert refit.beta == pytest.approx(5.0, rel=0.1)

    @pytest.mark.parametrize("mean", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_invalid_mean(self, mean):
        with pytest.raises(ValueError):
            BetaInitializer.from_moments(mean=mean, variance=0.01)

    def test_rejects_excessive_variance(self):
        # Var must be < mean*(1-mean) = 0.25 at mean 0.5.
        with pytest.raises(ValueError):
            BetaInitializer.from_moments(mean=0.5, variance=0.3)

    def test_rejects_zero_variance(self):
        with pytest.raises(ValueError):
            BetaInitializer.from_moments(mean=0.5, variance=0.0)
