"""Unit tests for orthogonal initialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.initializers import Orthogonal, ParameterShape
from repro.initializers.orthogonal import haar_orthogonal_matrix


class TestHaarMatrix:
    def test_square_is_orthogonal(self):
        rng = np.random.default_rng(0)
        q = haar_orthogonal_matrix(6, 6, rng)
        assert np.allclose(q @ q.T, np.eye(6), atol=1e-10)

    def test_tall_has_orthonormal_columns(self):
        rng = np.random.default_rng(1)
        q = haar_orthogonal_matrix(8, 3, rng)
        assert q.shape == (8, 3)
        assert np.allclose(q.T @ q, np.eye(3), atol=1e-10)

    def test_wide_has_orthonormal_rows(self):
        rng = np.random.default_rng(2)
        q = haar_orthogonal_matrix(2, 7, rng)
        assert q.shape == (2, 7)
        assert np.allclose(q @ q.T, np.eye(2), atol=1e-10)

    def test_sign_correction_gives_zero_mean(self):
        """Without the sign fix the QR convention biases entries positive."""
        rng = np.random.default_rng(3)
        entries = np.concatenate(
            [haar_orthogonal_matrix(8, 8, rng).reshape(-1) for _ in range(200)]
        )
        # Mean should be statistically indistinguishable from zero.
        assert abs(entries.mean()) < 4 * entries.std() / np.sqrt(entries.size)


class TestOrthogonalInitializer:
    def test_sample_size(self):
        shape = ParameterShape(num_layers=3, num_qubits=5, params_per_qubit=2)
        params = Orthogonal().sample(shape, seed=0)
        assert params.shape == (30,)

    def test_per_layer_semi_orthogonality(self):
        """Each layer reshaped to (qubits, ppq) must have orthonormal columns."""
        shape = ParameterShape(num_layers=4, num_qubits=6, params_per_qubit=2)
        params = Orthogonal().sample(shape, seed=1)
        for layer in params.reshape(4, 6, 2):
            assert np.allclose(layer.T @ layer, np.eye(2), atol=1e-10)

    def test_single_param_per_qubit_gives_unit_columns(self):
        shape = ParameterShape(num_layers=2, num_qubits=8, params_per_qubit=1)
        params = Orthogonal().sample(shape, seed=2)
        for layer in params.reshape(2, 8):
            assert np.linalg.norm(layer) == pytest.approx(1.0)

    def test_gain_scales_entries(self):
        shape = ParameterShape(num_layers=1, num_qubits=4, params_per_qubit=1)
        base = Orthogonal(gain=1.0).sample(shape, seed=3)
        scaled = Orthogonal(gain=2.5).sample(shape, seed=3)
        assert np.allclose(scaled, 2.5 * base)

    def test_entry_scale_shrinks_with_width(self):
        """Entries of a Haar column scale like 1/sqrt(qubits)."""
        wide = ParameterShape(num_layers=200, num_qubits=25, params_per_qubit=1)
        params = Orthogonal().sample(wide, seed=4)
        assert params.var() == pytest.approx(1.0 / 25.0, rel=0.1)

    def test_reproducible(self):
        shape = ParameterShape(num_layers=2, num_qubits=3, params_per_qubit=2)
        a = Orthogonal().sample(shape, seed=5)
        b = Orthogonal().sample(shape, seed=5)
        assert np.array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 10),
    cols=st.integers(1, 10),
    seed=st.integers(0, 1000),
)
def test_haar_matrix_is_semi_orthogonal_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    q = haar_orthogonal_matrix(rows, cols, rng)
    if rows >= cols:
        assert np.allclose(q.T @ q, np.eye(cols), atol=1e-9)
    else:
        assert np.allclose(q @ q.T, np.eye(rows), atol=1e-9)
