"""Statistical unit tests for the classical initialization schemes."""

import numpy as np
import pytest

from repro.initializers import (
    Constant,
    FanMode,
    HeNormal,
    HeUniform,
    LeCunNormal,
    LeCunUniform,
    Normal,
    ParameterShape,
    RandomUniform,
    Uniform,
    XavierNormal,
    XavierUniform,
    Zeros,
)

# Big sample for tight statistical assertions.
_BIG = ParameterShape(num_layers=500, num_qubits=10, params_per_qubit=2)


def _draw(initializer, seed=0):
    return initializer.sample(_BIG, seed=seed)


class TestRandomUniform:
    def test_range(self):
        params = _draw(RandomUniform())
        assert params.min() >= 0.0
        assert params.max() < 2 * np.pi

    def test_moments(self):
        params = _draw(RandomUniform())
        assert params.mean() == pytest.approx(np.pi, rel=0.02)
        assert params.var() == pytest.approx((2 * np.pi) ** 2 / 12.0, rel=0.05)

    def test_custom_range(self):
        params = _draw(RandomUniform(low=-1.0, high=1.0))
        assert params.min() >= -1.0
        assert params.max() < 1.0

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            RandomUniform(low=2.0, high=1.0)


class TestScaledSchemes:
    """Variance of each scheme under the default QUBITS fan (fan=10)."""

    @pytest.mark.parametrize(
        "initializer,expected_var",
        [
            (XavierNormal(), 2.0 / 20.0),
            (HeNormal(), 2.0 / 10.0),
            (LeCunNormal(), 1.0 / 10.0),
            (XavierUniform(), 2.0 / 20.0),  # U(-a,a) has var a^2/3 = 2/(in+out)
            (HeUniform(), 2.0 / 10.0),
            (LeCunUniform(), 1.0 / 30.0),  # paper's +-1/sqrt(fan): var 1/(3 fan)
        ],
    )
    def test_variance(self, initializer, expected_var):
        params = _draw(initializer)
        assert params.var() == pytest.approx(expected_var, rel=0.05)

    @pytest.mark.parametrize(
        "initializer",
        [XavierNormal(), HeNormal(), LeCunNormal(), XavierUniform()],
    )
    def test_zero_mean(self, initializer):
        params = _draw(initializer)
        assert abs(params.mean()) < 3 * params.std() / np.sqrt(params.size)

    def test_xavier_uniform_limits(self):
        params = _draw(XavierUniform())
        limit = np.sqrt(6.0 / 20.0)
        assert params.min() >= -limit
        assert params.max() <= limit

    def test_lecun_uniform_limits(self):
        params = _draw(LeCunUniform())
        limit = 1.0 / np.sqrt(10.0)
        assert params.min() >= -limit
        assert params.max() <= limit

    def test_variance_shrinks_with_width(self):
        """More qubits -> smaller angles, the anti-BP property."""
        narrow = ParameterShape(num_layers=200, num_qubits=2)
        wide = ParameterShape(num_layers=200, num_qubits=32)
        init = XavierNormal()
        assert init.sample(wide, seed=0).var() < init.sample(narrow, seed=0).var()

    def test_fan_mode_changes_scale(self):
        shape = ParameterShape(num_layers=300, num_qubits=8, params_per_qubit=2)
        default = XavierNormal().sample(shape, seed=0).var()
        per_layer = XavierNormal(
            fan_mode=FanMode.PARAMS_PER_LAYER
        ).sample(shape, seed=0).var()
        # fan 8 -> variance 1/8; fan 16 -> 1/16.
        assert default == pytest.approx(1.0 / 8.0, rel=0.1)
        assert per_layer == pytest.approx(1.0 / 16.0, rel=0.1)

    def test_he_is_double_lecun(self):
        he = _draw(HeNormal(), seed=3).var()
        lecun = _draw(LeCunNormal(), seed=3).var()
        assert he / lecun == pytest.approx(2.0, rel=0.1)


class TestGenericInitializers:
    def test_normal_stddev(self):
        params = _draw(Normal(stddev=0.25))
        assert params.std() == pytest.approx(0.25, rel=0.05)

    def test_normal_zero_stddev(self):
        params = _draw(Normal(stddev=0.0))
        assert np.all(params == 0.0)

    def test_normal_rejects_negative(self):
        with pytest.raises(ValueError):
            Normal(stddev=-0.1)

    def test_uniform_range(self):
        params = _draw(Uniform(low=0.5, high=0.7))
        assert params.min() >= 0.5
        assert params.max() < 0.7

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            Uniform(low=1.0, high=0.0)

    def test_zeros(self):
        params = _draw(Zeros())
        assert np.all(params == 0.0)

    def test_constant(self):
        params = _draw(Constant(1.25))
        assert np.all(params == 1.25)
