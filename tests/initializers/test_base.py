"""Unit tests for ParameterShape, FanMode, and the Initializer contract."""

import numpy as np
import pytest

from repro.initializers import (
    FanMode,
    Normal,
    ParameterShape,
    RandomUniform,
    XavierNormal,
)


class TestParameterShape:
    def test_counts(self):
        shape = ParameterShape(num_layers=5, num_qubits=10, params_per_qubit=2)
        assert shape.params_per_layer == 20
        assert shape.num_parameters == 100
        assert shape.as_tensor_shape() == (5, 10, 2)

    def test_defaults_to_one_param_per_qubit(self):
        shape = ParameterShape(num_layers=3, num_qubits=4)
        assert shape.num_parameters == 12

    def test_fan_modes(self):
        shape = ParameterShape(num_layers=5, num_qubits=10, params_per_qubit=2)
        assert shape.fans(FanMode.QUBITS) == (10, 10)
        assert shape.fans(FanMode.PARAMS_PER_LAYER) == (20, 20)
        assert shape.fans(FanMode.QUBITS_IN_PARAMS_OUT) == (10, 20)

    def test_default_fan_mode_is_qubits(self):
        shape = ParameterShape(num_layers=1, num_qubits=6)
        assert shape.fans() == (6, 6)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_layers": 0, "num_qubits": 2},
            {"num_layers": 2, "num_qubits": 0},
            {"num_layers": 2, "num_qubits": 2, "params_per_qubit": 0},
            {"num_layers": -1, "num_qubits": 2},
        ],
    )
    def test_rejects_non_positive(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            ParameterShape(**kwargs)

    def test_frozen(self):
        shape = ParameterShape(num_layers=1, num_qubits=2)
        with pytest.raises(AttributeError):
            shape.num_layers = 5


class TestInitializerContract:
    def test_sample_size(self):
        shape = ParameterShape(num_layers=4, num_qubits=3, params_per_qubit=2)
        params = RandomUniform().sample(shape, seed=0)
        assert params.shape == (24,)

    def test_sample_deterministic_with_seed(self):
        shape = ParameterShape(num_layers=3, num_qubits=5)
        a = XavierNormal().sample(shape, seed=42)
        b = XavierNormal().sample(shape, seed=42)
        assert np.array_equal(a, b)

    def test_sample_differs_across_seeds(self):
        shape = ParameterShape(num_layers=3, num_qubits=5)
        a = XavierNormal().sample(shape, seed=1)
        b = XavierNormal().sample(shape, seed=2)
        assert not np.array_equal(a, b)

    def test_sample_accepts_generator(self):
        shape = ParameterShape(num_layers=2, num_qubits=2)
        gen = np.random.default_rng(9)
        params = Normal(0.5).sample(shape, gen)
        assert params.shape == (4,)

    def test_layer_major_ordering(self):
        """Each consecutive block of params_per_layer belongs to one layer."""

        class MarkerInit(Normal):
            """Emits the layer index so the flat ordering is observable."""

            def __init__(self):
                super().__init__(stddev=0.0)
                self._layer = 0

            def sample_layer(self, shape, rng):
                out = np.full(shape.params_per_layer, float(self._layer))
                self._layer += 1
                return out

        shape = ParameterShape(num_layers=3, num_qubits=2, params_per_qubit=2)
        params = MarkerInit().sample(shape, seed=0)
        assert np.array_equal(
            params, np.repeat([0.0, 1.0, 2.0], shape.params_per_layer)
        )

    def test_describe_mentions_fans(self):
        shape = ParameterShape(num_layers=1, num_qubits=8)
        text = XavierNormal().describe(shape)
        assert "fan_in=8" in text and "fan_out=8" in text

    def test_wrong_layer_size_detected(self):
        class BrokenInit(Normal):
            def sample_layer(self, shape, rng):
                return np.zeros(shape.params_per_layer + 1)

        shape = ParameterShape(num_layers=2, num_qubits=2)
        with pytest.raises(RuntimeError):
            BrokenInit().sample(shape, seed=0)
