"""Unit tests for the initializer registry."""

import pytest

from repro.initializers import (
    HeNormal,
    Orthogonal,
    PAPER_METHODS,
    RandomUniform,
    XavierNormal,
    available_initializers,
    get_initializer,
)


class TestLookup:
    def test_basic_lookup(self):
        assert isinstance(get_initializer("random"), RandomUniform)
        assert isinstance(get_initializer("xavier_normal"), XavierNormal)

    def test_case_insensitive(self):
        assert isinstance(get_initializer("Xavier_Normal"), XavierNormal)

    def test_aliases(self):
        assert isinstance(get_initializer("he"), HeNormal)
        assert isinstance(get_initializer("glorot_normal"), XavierNormal)
        assert isinstance(get_initializer("xavier"), XavierNormal)

    def test_kwargs_forwarding(self):
        init = get_initializer("orthogonal", gain=0.5)
        assert isinstance(init, Orthogonal)
        assert init.gain == pytest.approx(0.5)

    def test_constant_requires_value(self):
        init = get_initializer("constant", value=0.3)
        assert init.value == pytest.approx(0.3)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("kaiming_super")


class TestPaperMethods:
    def test_exact_set(self):
        assert PAPER_METHODS == [
            "random",
            "xavier_normal",
            "xavier_uniform",
            "he_normal",
            "lecun_normal",
            "orthogonal",
        ]

    def test_all_paper_methods_constructible(self):
        for name in PAPER_METHODS:
            assert get_initializer(name) is not None

    def test_available_contains_paper_methods(self):
        names = available_initializers()
        for method in PAPER_METHODS:
            assert method in names

    def test_available_is_sorted(self):
        names = available_initializers()
        assert names == sorted(names)
