"""Unit tests for warm-start initialization."""

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.core import Trainer, TrainingConfig, global_identity_cost
from repro.initializers import Normal, ParameterShape
from repro.initializers.warm_start import WarmStart


class TestWarmStart:
    def test_prefix_copied_rest_zero(self):
        trained = np.arange(1.0, 9.0)  # two layers of a 2-qubit x 2-gate circuit
        shape = ParameterShape(num_layers=3, num_qubits=2, params_per_qubit=2)
        params = WarmStart(trained).sample(shape, seed=0)
        assert np.array_equal(params[:8], trained)
        assert np.all(params[8:] == 0.0)

    def test_fill_initializer_used_for_new_layers(self):
        trained = np.zeros(4)
        shape = ParameterShape(num_layers=3, num_qubits=2, params_per_qubit=2)
        params = WarmStart(trained, fill=Normal(stddev=0.5)).sample(shape, seed=1)
        assert np.all(params[:4] == 0.0)
        assert params[4:].std() > 0.0

    def test_repeated_sampling_resets_cursor(self):
        trained = np.arange(4.0)
        shape = ParameterShape(num_layers=2, num_qubits=2, params_per_qubit=1)
        init = WarmStart(trained)
        a = init.sample(shape, seed=0)
        b = init.sample(shape, seed=0)
        assert np.array_equal(a, b)

    def test_rejects_params_longer_than_target(self):
        init = WarmStart(np.zeros(10))
        shape = ParameterShape(num_layers=1, num_qubits=2, params_per_qubit=2)
        with pytest.raises(ValueError, match="only has"):
            init.sample(shape, seed=0)

    def test_rejects_partial_layer(self):
        init = WarmStart(np.zeros(3))  # not a whole 4-angle layer
        shape = ParameterShape(num_layers=2, num_qubits=2, params_per_qubit=2)
        with pytest.raises(ValueError, match="whole number"):
            init.sample(shape, seed=0)

    def test_rejects_empty_or_nonfinite(self):
        with pytest.raises(ValueError):
            WarmStart([])
        with pytest.raises(ValueError):
            WarmStart([np.nan])

    def test_warm_start_preserves_trained_cost(self, simulator):
        """Growing a trained circuit with zero-filled layers keeps its loss."""
        shallow_config = TrainingConfig(num_qubits=3, num_layers=2, iterations=20)
        shallow = Trainer(shallow_config).run("xavier_normal", seed=3)

        deep_ansatz = HardwareEfficientAnsatz(num_qubits=3, num_layers=4)
        deep_circuit = deep_ansatz.build()
        warm = WarmStart(shallow.final_params).sample(
            deep_ansatz.parameter_shape, seed=0
        )
        deep_cost = global_identity_cost(deep_circuit)
        assert deep_cost.value(warm) == pytest.approx(
            shallow.final_loss, abs=1e-10
        )

    def test_warm_started_training_beats_cold_start(self):
        """Continuing from a trained prefix converges at least as well."""
        shallow = Trainer(
            TrainingConfig(num_qubits=3, num_layers=2, iterations=25)
        ).run("xavier_normal", seed=5)
        deep_config = TrainingConfig(num_qubits=3, num_layers=4, iterations=10)
        trainer = Trainer(deep_config)
        warm_history = trainer.run(
            WarmStart(shallow.final_params), seed=0
        )
        cold_history = trainer.run("random", seed=0)
        assert warm_history.final_loss < cold_history.final_loss