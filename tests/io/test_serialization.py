"""Unit tests for JSON persistence."""

import json

import numpy as np
import pytest

from repro.core.experiments import run_training_experiment, run_variance_experiment
from repro.core.results import DecayFit, GradientSamples, TrainingHistory
from repro.core.training import TrainingConfig
from repro.core.variance import VarianceConfig
from repro.io import NumpyJSONEncoder, load_result, save_result


class TestSaveLoad:
    def test_decay_fit_round_trip(self, tmp_path):
        fit = DecayFit("xavier", rate=0.62, intercept=-1.1, r_squared=0.99)
        path = save_result(fit, tmp_path / "fit.json")
        assert load_result(path) == fit

    def test_gradient_samples_round_trip(self, tmp_path):
        samples = GradientSamples(4, "random", np.array([0.1, -0.2, 0.3]))
        restored = load_result(save_result(samples, tmp_path / "s.json"))
        assert np.allclose(restored.gradients, samples.gradients)

    def test_training_history_round_trip(self, tmp_path):
        history = TrainingHistory(
            method="he_normal",
            optimizer="adam",
            losses=[1.0, 0.5],
            gradient_norms=[0.9, 0.4],
            initial_params=np.array([0.1]),
            final_params=np.array([0.2]),
        )
        restored = load_result(save_result(history, tmp_path / "h.json"))
        assert restored.losses == history.losses
        assert restored.method == "he_normal"

    def test_experiment_outcome_round_trip(self, tmp_path):
        outcome = run_variance_experiment(
            VarianceConfig(
                qubit_counts=(2, 3),
                num_circuits=4,
                num_layers=3,
                methods=("random", "zeros"),
            ),
            seed=0,
        )
        restored = load_result(save_result(outcome, tmp_path / "v.json"))
        assert restored.ranking == outcome.ranking

    def test_training_outcome_round_trip(self, tmp_path):
        outcome = run_training_experiment(
            TrainingConfig(num_qubits=2, num_layers=1, iterations=2),
            methods=("zeros",),
            seed=0,
        )
        restored = load_result(save_result(outcome, tmp_path / "t.json"))
        assert restored.histories["zeros"].losses == outcome.histories[
            "zeros"
        ].losses

    def test_creates_parent_directories(self, tmp_path):
        fit = DecayFit("m", 0.1, 0.0, 1.0)
        path = save_result(fit, tmp_path / "deep" / "nested" / "fit.json")
        assert path.exists()

    def test_file_is_valid_json_with_type_tag(self, tmp_path):
        fit = DecayFit("m", 0.1, 0.0, 1.0)
        path = save_result(fit, tmp_path / "fit.json")
        payload = json.loads(path.read_text())
        assert payload["type"] == "DecayFit"
        assert "data" in payload


class TestSchemaVersion:
    def test_saved_payloads_are_stamped(self, tmp_path):
        from repro.io import SCHEMA_VERSION

        fit = DecayFit("m", 0.1, 0.0, 1.0)
        payload = json.loads(save_result(fit, tmp_path / "f.json").read_text())
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_legacy_unstamped_file_still_loads(self, tmp_path):
        """Files written before schema versioning are treated as v1."""
        path = tmp_path / "legacy.json"
        path.write_text(
            json.dumps(
                {
                    "type": "DecayFit",
                    "data": {
                        "method": "m",
                        "rate": 0.5,
                        "intercept": -1.0,
                        "r_squared": 0.9,
                    },
                }
            )
        )
        fit = load_result(path)
        assert fit == DecayFit("m", 0.5, -1.0, 0.9)

    def test_newer_schema_rejected_with_clear_message(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            '{"type": "DecayFit", "schema_version": 99, "data": {}}'
        )
        with pytest.raises(ValueError, match="schema version 99"):
            load_result(path)

    def test_malformed_schema_version_rejected(self, tmp_path):
        path = tmp_path / "odd.json"
        path.write_text(
            '{"type": "DecayFit", "schema_version": "two", "data": {}}'
        )
        with pytest.raises(ValueError, match="malformed schema_version"):
            load_result(path)


class TestSpecAndShardTypes:
    def test_experiment_spec_round_trip(self, tmp_path):
        from repro.core.spec import ExperimentSpec

        spec = ExperimentSpec(
            kind="variance",
            config=VarianceConfig(
                qubit_counts=(2,), num_circuits=3, num_layers=2
            ),
            seed=5,
            executor="process_pool",
            workers=2,
        )
        restored = load_result(save_result(spec, tmp_path / "spec.json"))
        assert restored.kind == "variance"
        assert restored.config == spec.config
        assert restored.workers == 2

    def test_shard_checkpoint_round_trip(self, tmp_path):
        from repro.core.executor import ShardCheckpoint

        checkpoint = ShardCheckpoint(
            unit_id="u1", fingerprint="fp", data={"k": [1.0, 2.0]}
        )
        restored = load_result(save_result(checkpoint, tmp_path / "c.json"))
        assert restored == checkpoint


class TestErrors:
    def test_rejects_unknown_object(self, tmp_path):
        with pytest.raises(TypeError):
            save_result({"not": "a result"}, tmp_path / "x.json")

    def test_rejects_untagged_file(self, tmp_path):
        path = tmp_path / "plain.json"
        path.write_text('{"rate": 1.0}')
        with pytest.raises(ValueError, match="missing type tag"):
            load_result(path)

    def test_rejects_unknown_type_tag(self, tmp_path):
        """An unknown tag names the problem instead of a raw KeyError."""
        path = tmp_path / "odd.json"
        path.write_text('{"type": "Mystery", "data": {}}')
        with pytest.raises(ValueError, match="unknown result type"):
            load_result(path)

    def test_rejects_missing_data(self, tmp_path):
        path = tmp_path / "nodata.json"
        path.write_text('{"type": "DecayFit", "schema_version": 2}')
        with pytest.raises(ValueError, match="missing its data payload"):
            load_result(path)

    def test_rejects_invalid_json_with_filename(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{ nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_result(path)


class TestNumpyEncoder:
    def test_numpy_scalars(self):
        payload = {
            "i": np.int64(4),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "a": np.array([1.0, 2.0]),
        }
        text = json.dumps(payload, cls=NumpyJSONEncoder)
        assert json.loads(text) == {"i": 4, "f": 0.5, "b": True, "a": [1.0, 2.0]}

    def test_unknown_type_still_raises(self):
        with pytest.raises(TypeError):
            json.dumps({"x": object()}, cls=NumpyJSONEncoder)
