"""FileLock: stale-lock breaking in the O_CREAT|O_EXCL fallback.

The flock path lets the kernel release a dead holder's lock; the
portable fallback has no such guarantee, so it records the holder's pid
and waiters break lock files whose holder is provably gone (or, with
``stale_timeout``, older than the threshold).  These tests force the
fallback path explicitly — it is the default only on non-POSIX hosts.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.io import FileLock


def _fallback_lock(path, **kwargs):
    lock = FileLock(path, **kwargs)
    lock._exclusive_create = True  # force the non-flock code path
    return lock


class TestExclusiveCreateFallback:
    def test_acquire_writes_holder_pid(self, tmp_path):
        lock = _fallback_lock(tmp_path / "x.lock")
        with lock:
            assert (tmp_path / "x.lock").read_text() == str(os.getpid())
        assert not (tmp_path / "x.lock").exists()

    def test_dead_holder_lock_is_broken(self, tmp_path):
        # A short-lived child writes its pid into the lock file and
        # exits without releasing — the crashed-holder scenario.
        child = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(child.stdout.strip())
        path = tmp_path / "crashed.lock"
        path.write_text(str(dead_pid))
        lock = _fallback_lock(path, timeout=5.0)
        with pytest.warns(RuntimeWarning, match="breaking stale lock"):
            with lock:
                # We hold it now: the file records *our* pid.
                assert path.read_text() == str(os.getpid())

    def test_live_holder_lock_is_respected(self, tmp_path):
        path = tmp_path / "held.lock"
        path.write_text(str(os.getpid()))  # this process is alive
        lock = _fallback_lock(path, timeout=0.2, poll_interval=0.02)
        with pytest.raises(TimeoutError, match="file lock"):
            lock.acquire()
        assert path.read_text() == str(os.getpid())  # untouched

    def test_age_threshold_breaks_pidless_lock(self, tmp_path):
        # Lock files written by pre-pid versions (or after pid reuse)
        # carry no usable pid; stale_timeout is the backstop.
        path = tmp_path / "old.lock"
        path.write_text("")
        old = time.time() - 3600
        os.utime(path, (old, old))
        lock = _fallback_lock(path, timeout=5.0, stale_timeout=60.0)
        with pytest.warns(RuntimeWarning, match="breaking stale lock"):
            with lock:
                pass

    def test_fresh_pidless_lock_times_out(self, tmp_path):
        path = tmp_path / "fresh.lock"
        path.write_text("")
        lock = _fallback_lock(
            path, timeout=0.2, poll_interval=0.02, stale_timeout=60.0
        )
        with pytest.raises(TimeoutError):
            lock.acquire()


class TestFlockMode:
    def test_default_mode_round_trips(self, tmp_path):
        # Sanity: the platform-default path (flock on POSIX) still works
        # with the stale_timeout parameter present.
        lock = FileLock(tmp_path / "y.lock", stale_timeout=60.0)
        with lock:
            pass
        with lock:
            pass
