"""Unit tests for the variational quantum classifier."""

import numpy as np
import pytest

from repro.apps import AngleEncodedClassifier, ClassifierConfig, make_blobs
from repro.initializers import Zeros


def _tiny_config(**overrides):
    defaults = dict(num_qubits=2, num_layers=1, epochs=3)
    defaults.update(overrides)
    return ClassifierConfig(**defaults)


class TestConstruction:
    def test_parameter_count(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=0)
        assert model.num_parameters == 4  # 2 qubits x 2 gates x 1 layer

    def test_named_initializer(self):
        model = AngleEncodedClassifier(_tiny_config(), initializer="he", seed=0)
        assert model.initializer.name == "he_normal"

    def test_initializer_instance(self):
        model = AngleEncodedClassifier(_tiny_config(), initializer=Zeros())
        assert np.all(model.params == 0.0)

    def test_config_validation(self):
        with pytest.raises((ValueError, TypeError)):
            ClassifierConfig(num_qubits=0)
        with pytest.raises((ValueError, TypeError)):
            ClassifierConfig(epochs=0)


class TestEncoding:
    def test_zero_features_give_zero_state(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=0)
        state = model.encode([0.0, 0.0])
        assert state.probability_of("00") == pytest.approx(1.0)

    def test_single_feature_rotation(self):
        config = _tiny_config(feature_scale=np.pi)
        model = AngleEncodedClassifier(config, seed=0)
        state = model.encode([1.0, 0.0])  # RY(pi) on qubit 0 -> |10>
        assert state.probability_of("10") == pytest.approx(1.0)

    def test_fewer_features_than_qubits_allowed(self):
        model = AngleEncodedClassifier(_tiny_config(num_qubits=3), seed=0)
        state = model.encode([0.5])
        assert state.num_qubits == 3

    def test_too_many_features_rejected(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=0)
        with pytest.raises(ValueError):
            model.encode([0.1, 0.2, 0.3])


class TestInference:
    def test_proba_in_unit_interval(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=1)
        x, _ = make_blobs(num_samples=10, seed=0)
        probs = model.predict_proba(x)
        assert np.all((probs >= 0.0) & (probs <= 1.0))

    def test_zeros_model_is_uninformative(self):
        """With zero angles and zero input, <Z_0> = 1 -> p = 0."""
        model = AngleEncodedClassifier(_tiny_config(), initializer=Zeros())
        probs = model.predict_proba(np.zeros((1, 2)))
        assert probs[0] == pytest.approx(0.0)

    def test_predict_thresholds(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=2)
        x, _ = make_blobs(num_samples=6, seed=1)
        predictions = model.predict(x)
        assert set(np.unique(predictions)) <= {0, 1}

    def test_score_range(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=3)
        x, y = make_blobs(num_samples=8, seed=2)
        assert 0.0 <= model.score(x, y) <= 1.0


class TestTraining:
    def test_gradient_matches_finite_difference(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=4)
        x, y = make_blobs(num_samples=4, seed=3)
        _, grad = model._loss_and_gradient(x, y)
        eps = 1e-6
        for k in range(model.num_parameters):
            saved = model.params.copy()
            model.params = saved.copy()
            model.params[k] += eps
            plus = model.loss(x, y)
            model.params = saved.copy()
            model.params[k] -= eps
            minus = model.loss(x, y)
            model.params = saved
            assert grad[k] == pytest.approx((plus - minus) / (2 * eps), abs=1e-5)

    def test_fit_reduces_loss_on_separable_data(self):
        config = _tiny_config(epochs=15, learning_rate=0.2)
        model = AngleEncodedClassifier(config, seed=5)
        x, y = make_blobs(num_samples=24, separation=1.2, noise=0.15, seed=4)
        log = model.fit(x, y)
        assert len(log.losses) == 15
        assert log.final_loss < log.losses[0]

    def test_fit_reaches_good_accuracy(self):
        config = _tiny_config(epochs=25, learning_rate=0.2)
        model = AngleEncodedClassifier(config, seed=6)
        x, y = make_blobs(num_samples=30, separation=1.4, noise=0.1, seed=5)
        log = model.fit(x, y)
        assert log.final_accuracy >= 0.8

    def test_fit_rejects_mismatched_data(self):
        model = AngleEncodedClassifier(_tiny_config(), seed=0)
        with pytest.raises(ValueError):
            model.fit(np.zeros((3, 2)), np.zeros(2))

    def test_continued_training_appends_log(self):
        model = AngleEncodedClassifier(_tiny_config(epochs=2), seed=7)
        x, y = make_blobs(num_samples=8, seed=6)
        model.fit(x, y)
        model.fit(x, y)
        assert len(model.log.losses) == 4
