"""Unit tests for the synthetic datasets."""

import numpy as np
import pytest

from repro.apps.datasets import make_blobs, make_circles, make_xor, train_test_split


class TestMakeBlobs:
    def test_shapes(self):
        x, y = make_blobs(num_samples=50, num_features=3, seed=0)
        assert x.shape == (50, 3)
        assert y.shape == (50,)
        assert set(np.unique(y)) <= {0, 1}

    def test_reproducible(self):
        a = make_blobs(seed=1)
        b = make_blobs(seed=1)
        assert np.allclose(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_separation_moves_class_means(self):
        x, y = make_blobs(num_samples=400, separation=1.2, noise=0.1, seed=2)
        mean_one = x[y == 1].mean()
        mean_zero = x[y == 0].mean()
        assert mean_one - mean_zero > 0.8

    def test_rejects_bad_sizes(self):
        with pytest.raises((ValueError, TypeError)):
            make_blobs(num_samples=0)


class TestMakeCircles:
    def test_radii_separate_classes(self):
        x, y = make_circles(num_samples=300, noise=0.0, seed=3)
        radii = np.linalg.norm(x, axis=1)
        assert radii[y == 1].max() < radii[y == 0].min()

    def test_shape(self):
        x, y = make_circles(num_samples=40, seed=0)
        assert x.shape == (40, 2)


class TestMakeXor:
    def test_labels_match_quadrants_at_zero_noise(self):
        x, y = make_xor(num_samples=200, noise=0.0, seed=4)
        expected = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(int)
        assert np.array_equal(y, expected)

    def test_roughly_balanced(self):
        _, y = make_xor(num_samples=400, seed=5)
        assert 0.35 < y.mean() < 0.65


class TestSplit:
    def test_sizes(self):
        x, y = make_blobs(num_samples=100, seed=6)
        x_tr, y_tr, x_te, y_te = train_test_split(x, y, test_fraction=0.25, seed=0)
        assert len(x_tr) == 75 and len(x_te) == 25
        assert len(y_tr) == 75 and len(y_te) == 25

    def test_partition_is_complete(self):
        x, y = make_blobs(num_samples=40, seed=7)
        x_tr, _, x_te, _ = train_test_split(x, y, seed=1)
        combined = np.vstack([x_tr, x_te])
        assert sorted(map(tuple, combined)) == sorted(map(tuple, x))

    def test_rejects_bad_fraction(self):
        x, y = make_blobs(num_samples=10, seed=0)
        with pytest.raises(ValueError):
            train_test_split(x, y, test_fraction=0.0)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((5, 2)), np.zeros(4))
