"""FaultPlan: selectors, serialization, and the injection wrapper."""

import json

import pytest

from repro.reliability import FaultPlan, InjectedFault, WorkerCrash
from repro.reliability.faults import FaultAction, call_with_faults, corrupt_file


class TestFaultAction:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultAction(kind="explode")
        with pytest.raises(ValueError, match="times"):
            FaultAction(kind="transient", times=0)
        with pytest.raises(ValueError, match="seconds"):
            FaultAction(kind="slow", seconds=-1)

    def test_applies_window(self):
        action = FaultAction(kind="transient", times=2)
        assert action.applies(1) and action.applies(2)
        assert not action.applies(3)

    def test_dict_round_trip(self):
        action = FaultAction(kind="slow", times=3, seconds=0.5)
        assert FaultAction.from_dict(action.to_dict()) == action
        with pytest.raises(ValueError, match="unknown fault action field"):
            FaultAction.from_dict({"kind": "transient", "time": 1})


class TestFaultPlan:
    def test_resolve_positional_and_literal(self):
        plan = FaultPlan.from_dict(
            {
                "units": {
                    "#0": [{"kind": "transient", "times": 2}],
                    "u2": [{"kind": "kill"}],
                    "ghost": [{"kind": "transient"}],  # matches nothing
                    "#99": [{"kind": "transient"}],  # out of range
                }
            }
        )
        resolved = plan.resolve(["u0", "u1", "u2"])
        assert set(resolved) == {"u0", "u2"}
        assert resolved["u0"][0].kind == "transient"
        assert resolved["u2"][0].kind == "kill"

    def test_bad_positional_selector(self):
        plan = FaultPlan({"#abc": (FaultAction(kind="transient"),)})
        with pytest.raises(ValueError, match="positional fault selector"):
            plan.resolve(["u0"])

    def test_dict_round_trip_and_coerce(self):
        payload = {"units": {"#1": [{"kind": "transient", "times": 2}]}}
        plan = FaultPlan.from_dict(payload)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.coerce(payload) == plan
        assert FaultPlan.coerce(plan) is plan
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce({"units": {}}) is None  # empty plan = no plan
        with pytest.raises(TypeError):
            FaultPlan.coerce(42)

    def test_from_text_inline_and_file(self, tmp_path):
        payload = {"units": {"u0": [{"kind": "kill", "times": 1}]}}
        inline = FaultPlan.from_text(json.dumps(payload))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(payload))
        assert FaultPlan.from_text(str(path)) == inline
        assert FaultPlan.from_text("") is None
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_text("{broken")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(
            "REPRO_FAULT_PLAN",
            '{"units": {"#0": [{"kind": "transient"}]}}',
        )
        plan = FaultPlan.from_env()
        assert plan and plan.selectors == ("#0",)


class TestCallWithFaults:
    def test_transient_fires_then_clears(self):
        actions = [{"kind": "transient", "times": 2}]
        for attempt in (1, 2):
            with pytest.raises(InjectedFault):
                call_with_faults(actions, attempt, False, lambda x: x, (5,))
        assert call_with_faults(actions, 3, False, lambda x: x, (5,)) == 5

    def test_kill_degrades_in_process(self):
        # allow_exit=False must never actually exit the test process.
        with pytest.raises(WorkerCrash):
            call_with_faults(
                [{"kind": "kill"}], 1, False, lambda: None, ()
            )

    def test_slow_then_runs(self):
        actions = [{"kind": "slow", "times": 1, "seconds": 0.0}]
        assert call_with_faults(actions, 1, False, lambda x: x * 2, (3,)) == 6

    def test_corruption_kinds_are_parent_side_noops(self):
        # corrupt_checkpoint/corrupt_shard apply where the file is
        # written, not inside the unit: the wrapper runs the fn clean.
        actions = [{"kind": "corrupt_checkpoint"}, {"kind": "corrupt_shard"}]
        assert call_with_faults(actions, 1, False, lambda: "ok", ()) == "ok"


class TestCorruptFile:
    def test_overwrites_existing(self, tmp_path):
        path = tmp_path / "shard.json"
        path.write_text('{"fine": true}')
        assert corrupt_file(str(path))
        with pytest.raises(ValueError):
            json.loads(path.read_text(errors="replace"))

    def test_missing_file_is_false(self, tmp_path):
        assert not corrupt_file(str(tmp_path / "absent.json"))
