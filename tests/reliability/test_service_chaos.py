"""HTTP end-to-end chaos: the service survives injected worker faults.

The full stack — real HTTP requests into :class:`ExperimentServer`, a
job queue, a process-pool executor whose worker is hard-killed by a
:class:`~repro.reliability.FaultPlan` — must produce the byte-identical
result payload a fault-free submission produces, with the retry counts
visible in the job's reliability status block.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.core.spec import ExperimentSpec
from repro.core.variance import VarianceConfig
from repro.service import ExperimentServer

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3), num_circuits=3, num_layers=2, methods=("random",)
)

_CHAOS_PLAN = {
    "units": {
        "#0": [{"kind": "transient", "times": 1}],
        "#1": [{"kind": "kill", "times": 1}],
    }
}


def _spec_payload(**extra):
    spec = ExperimentSpec(
        kind="variance",
        config=_CONFIG,
        seed=3,
        circuits_per_shard=_CONFIG.num_circuits,
        **extra,
    )
    return spec.to_dict()


def _post(url, payload):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read())


def _get(url, raw=False):
    with urllib.request.urlopen(url) as response:
        body = response.read()
        return response.status, (body if raw else json.loads(body))


def _submit_and_wait(server, payload, timeout=120.0):
    _, job = _post(f"{server.url}/experiments", payload)
    deadline = time.monotonic() + timeout
    while job["state"] not in ("done", "failed"):
        assert time.monotonic() < deadline, "job did not finish in time"
        time.sleep(0.05)
        _, job = _get(f"{server.url}/experiments/{job['job_id']}")
    return job


class TestServiceChaos:
    @pytest.mark.slow
    def test_worker_kill_over_http_is_byte_identical(self, tmp_path):
        # Fault-free reference run in its own store.
        with ExperimentServer(store=tmp_path / "clean") as server:
            job = _submit_and_wait(server, _spec_payload())
            assert job["state"] == "done", job.get("error")
            _, reference = _get(
                f"{server.url}/experiments/{job['job_id']}/result", raw=True
            )

        # Chaos run: a transient fault plus a real worker kill inside a
        # two-process pool, injected via the spec's own fault_plan field.
        with ExperimentServer(store=tmp_path / "chaos") as server:
            job = _submit_and_wait(
                server,
                _spec_payload(
                    executor="process_pool",
                    workers=2,
                    fault_plan=_CHAOS_PLAN,
                    retry={"max_attempts": 3, "base_delay": 0.0, "jitter": 0.0},
                ),
            )
            assert job["state"] == "done", job.get("error")
            reliability = job["reliability"]
            assert reliability["total_retries"] >= 2
            assert len(reliability["retried_units"]) == 2
            assert reliability["failed_units"] == []
            _, survived = _get(
                f"{server.url}/experiments/{job['job_id']}/result", raw=True
            )
        assert survived == reference

    def test_quarantined_job_surfaces_failed_units_over_http(self, tmp_path):
        plan = {"units": {"#0": [{"kind": "transient", "times": 10}]}}
        with ExperimentServer(store=tmp_path / "store") as server:
            job = _submit_and_wait(
                server,
                _spec_payload(
                    fault_plan=plan,
                    retry={"max_attempts": 2, "base_delay": 0.0, "jitter": 0.0},
                ),
            )
            assert job["state"] == "failed"
            assert "quarantined" in job["error"]
            failed = job["reliability"]["failed_units"]
            assert len(failed) == 1
            assert failed[0]["error_type"] == "InjectedFault"
            assert failed[0]["attempts"] == 2
            # The other shards made it into the cache (partial results).
            _, health = _get(f"{server.url}/healthz")
            assert health["store"]["shards"] >= 1
            # The result endpoint reports the failure, not a hang.
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(f"{server.url}/experiments/{job['job_id']}/result")
            assert excinfo.value.code == 500

    def test_draining_server_returns_503_with_retry_after(self, tmp_path):
        with ExperimentServer(store=tmp_path / "store") as server:
            server.queue.begin_draining()
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post(f"{server.url}/experiments", _spec_payload())
            assert excinfo.value.code == 503
            assert excinfo.value.headers["Retry-After"]
            assert "draining" in json.loads(excinfo.value.read())["error"]
