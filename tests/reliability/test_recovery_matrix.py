"""Fault-injection recovery matrix: recovered runs are byte-identical.

The acceptance contract of the reliability subsystem: under an injected
fault plan (transient failures on several units plus a worker kill), a
run must complete with *exactly* the same results as a fault-free run —
on every executor — with the retry counts observable.  Exhausted units
quarantine into a FailureReport instead of crashing the run, and a
corrupt checkpoint is recomputed on resume without changing any bytes.
"""

import numpy as np
import pytest

from repro.core.executor import get_executor
from repro.core.spec import ExperimentSpec, plan_experiment
from repro.core.variance import VarianceConfig
from repro.reliability import RetryPolicy

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3, 4), num_circuits=3, num_layers=2, methods=("random",)
)

#: Transient faults on two units plus a hard worker kill on a third —
#: the ISSUE's acceptance plan.  Positional selectors resolve against
#: the run's ordered unit list, so the same plan applies verbatim to
#: the serial, process-pool and async executors.
_CHAOS_PLAN = {
    "units": {
        "#0": [{"kind": "transient", "times": 2}],
        "#1": [{"kind": "transient", "times": 1}],
        "#2": [{"kind": "kill", "times": 1}],
    }
}

#: Fast deterministic policy: enough budget for the plan, ~zero backoff.
_RETRY = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)


def _run(executor_name, workers=1, fault_plan=None, retry=_RETRY, **kwargs):
    """Run the variance grid; returns (outputs, retries, report)."""
    executor = get_executor(
        executor_name,
        workers=workers,
        retry=retry,
        fault_plan=fault_plan,
        **kwargs,
    )
    # Pin the shard granularity: executors subdivide differently by
    # default, and the positional fault selectors (and the cross-executor
    # comparisons) need one shard per qubit count everywhere.
    spec = ExperimentSpec(
        kind="variance",
        config=_CONFIG,
        seed=0,
        circuits_per_shard=_CONFIG.num_circuits,
    )
    plan = plan_experiment(spec, executor)
    events = []
    outputs = executor.map_units(
        plan.units,
        fingerprint=plan.fingerprint,
        on_event=lambda kind, payload: events.append((kind, payload)),
        raise_on_failure=False,
        unit_keys=plan.unit_fingerprints,
    )
    retries = {}
    for kind, payload in events:
        if kind == "retry":
            uid = payload["unit_id"]
            retries[uid] = retries.get(uid, 0) + 1
    return outputs, retries, executor.last_report


class TestRecoveryMatrix:
    def test_serial_recovers_byte_identically(self):
        clean, no_retries, _ = _run("serial")
        assert no_retries == {}
        recovered, retries, report = _run("serial", fault_plan=_CHAOS_PLAN)
        np.testing.assert_equal(recovered, clean)
        # Three faulted units, visible retry counts: 2 + 1 + 1.
        assert sorted(retries.values()) == [1, 1, 2]
        assert dict(report.retries) == retries
        assert report.failed_unit_ids == ()

    @pytest.mark.slow
    def test_process_pool_recovers_byte_identically(self):
        clean, _, _ = _run("process_pool", workers=2)
        recovered, retries, report = _run(
            "process_pool", workers=2, fault_plan=_CHAOS_PLAN
        )
        np.testing.assert_equal(recovered, clean)
        assert sorted(retries.values()) == [1, 1, 2]
        # The kill broke the pool at least once and it was rebuilt.
        assert report.pool_rebuilds >= 1

    @pytest.mark.slow
    def test_async_recovers_byte_identically(self):
        clean, _, _ = _run("async", workers=2)
        recovered, retries, report = _run(
            "async", workers=2, fault_plan=_CHAOS_PLAN
        )
        np.testing.assert_equal(recovered, clean)
        assert sorted(retries.values()) == [1, 1, 2]
        assert report.pool_rebuilds >= 1

    @pytest.mark.slow
    def test_same_plan_reproduces_across_executors(self):
        """One plan, three executors: identical retry trajectories."""
        serial_out, serial_retries, _ = _run("serial", fault_plan=_CHAOS_PLAN)
        pool_out, pool_retries, _ = _run(
            "process_pool", workers=2, fault_plan=_CHAOS_PLAN
        )
        assert pool_retries == serial_retries
        np.testing.assert_equal(pool_out, serial_out)
        async_out, async_retries, _ = _run(
            "async", workers=2, fault_plan=_CHAOS_PLAN
        )
        assert async_retries == serial_retries
        np.testing.assert_equal(async_out, serial_out)


class TestQuarantine:
    _EXHAUSTING_PLAN = {
        "units": {"#1": [{"kind": "transient", "times": 10}]}
    }

    def test_exhausted_unit_quarantines_with_partial_results(self):
        clean, _, _ = _run("serial")
        outputs, retries, report = _run(
            "serial", fault_plan=self._EXHAUSTING_PLAN
        )
        failed_id = report.failed_unit_ids[0] if report.failed_unit_ids else None
        assert failed_id is not None
        # The quarantined slot is a None placeholder; every other unit
        # completed with byte-identical output (partial results).
        assert outputs[1] is None
        np.testing.assert_equal(outputs[0], clean[0])
        np.testing.assert_equal(outputs[2], clean[2])
        failure = report.quarantined[0]
        assert failure.unit_id == failed_id
        assert failure.attempts == _RETRY.max_attempts
        assert failure.error_type == "InjectedFault"
        assert failure.traceback
        assert retries == {failed_id: _RETRY.max_attempts - 1}

    def test_raise_mode_propagates_after_budget(self):
        executor = get_executor(
            "serial", retry=_RETRY, fault_plan=self._EXHAUSTING_PLAN
        )
        spec = ExperimentSpec(kind="variance", config=_CONFIG, seed=0)
        plan = plan_experiment(spec, executor)
        from repro.reliability import InjectedFault

        with pytest.raises(InjectedFault):
            executor.map_units(plan.units, fingerprint=plan.fingerprint)

    def test_failure_report_persisted_next_to_checkpoints(self, tmp_path):
        _run(
            "serial",
            fault_plan=self._EXHAUSTING_PLAN,
            checkpoint_dir=tmp_path,
        )
        from repro.io import load_result
        from repro.reliability import FailureReport

        report = load_result(tmp_path / "failure-report.json")
        assert isinstance(report, FailureReport)
        assert len(report.quarantined) == 1


class TestCheckpointCorruptionRecovery:
    _CORRUPTING_PLAN = {"units": {"#1": [{"kind": "corrupt_checkpoint"}]}}

    def test_resume_over_corrupt_checkpoint_is_byte_identical(self, tmp_path):
        clean, _, _ = _run("serial")
        # First run: completes, but unit #1's checkpoint is scribbled
        # over after writing (the fault applies parent-side).
        first, _, _ = _run(
            "serial",
            fault_plan=self._CORRUPTING_PLAN,
            checkpoint_dir=tmp_path,
        )
        np.testing.assert_equal(first, clean)
        # Resume: intact checkpoints load, the corrupt one warns and
        # recomputes, and the merged outputs match exactly.
        with pytest.warns(RuntimeWarning, match="checkpoint"):
            resumed, retries, report = _run(
                "serial", checkpoint_dir=tmp_path
            )
        np.testing.assert_equal(resumed, clean)
        assert retries == {}
        assert report.failed_unit_ids == ()
