"""RetryPolicy: classification, deterministic backoff, serialization."""

import pytest

from repro.reliability import ExecutionAborted, RetryPolicy, TransientError


class TestClassification:
    def test_transient_families_are_retryable(self):
        policy = RetryPolicy()
        assert policy.classify(TransientError("flaky"))
        assert policy.classify(OSError("reset"))
        assert policy.classify(EOFError("pipe died"))

    def test_logic_errors_fail_fast(self):
        policy = RetryPolicy()
        assert not policy.classify(ValueError("bad shard size"))
        assert not policy.classify(TypeError("bad arg"))
        assert not policy.classify(RuntimeError("shard exploded"))

    def test_abort_is_never_retryable(self):
        # Even a generous retry_on list must not retry an abort: the
        # point of aborting is to stop consuming wall clock.
        policy = RetryPolicy(retry_on=("RuntimeError", "ExecutionAborted"))
        assert not policy.classify(ExecutionAborted("job timed out"))

    def test_retry_on_matches_by_mro_name(self):
        policy = RetryPolicy(retry_on=("ArithmeticError",))
        assert policy.classify(ZeroDivisionError("1/0"))  # subclass
        assert not policy.classify(ValueError("nope"))

    def test_should_retry_respects_attempt_budget(self):
        policy = RetryPolicy(max_attempts=2)
        error = TransientError("flaky")
        assert policy.should_retry(error, attempt=1)
        assert not policy.should_retry(error, attempt=2)

    def test_should_retry_respects_deadlines(self):
        policy = RetryPolicy(
            max_attempts=10, unit_deadline=5.0, run_deadline=60.0
        )
        error = TransientError("flaky")
        assert policy.should_retry(error, 1, unit_elapsed=1.0, run_elapsed=1.0)
        assert not policy.should_retry(error, 1, unit_elapsed=5.0)
        assert not policy.should_retry(error, 1, run_elapsed=60.0)


class TestBackoff:
    def test_delay_is_deterministic_per_key_and_attempt(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5)
        assert policy.delay(1, key="unit-a") == policy.delay(1, key="unit-a")
        assert policy.delay(1, key="unit-a") != policy.delay(1, key="unit-b")
        assert policy.delay(1, key="unit-a") != policy.delay(2, key="unit-a")

    def test_delay_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay=1.0, backoff_factor=2.0, max_delay=3.0, jitter=0.0
        )
        assert policy.delay(1) == 1.0
        assert policy.delay(2) == 2.0
        assert policy.delay(3) == 3.0  # capped, not 4.0
        assert policy.delay(10) == 3.0

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(base_delay=1.0, backoff_factor=1.0, jitter=0.25)
        for key in ("a", "b", "c", "d"):
            delay = policy.delay(1, key=key)
            assert 1.0 <= delay < 1.25


class TestValidationAndSerialization:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="base_delay"):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError, match="unit_deadline"):
            RetryPolicy(unit_deadline=0)

    def test_dict_round_trip(self):
        policy = RetryPolicy(
            max_attempts=5, retry_on=("BrokenPipeError",), unit_deadline=9.0
        )
        assert RetryPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown retry policy field"):
            RetryPolicy.from_dict({"max_attemps": 3})

    def test_coerce_forms(self):
        assert RetryPolicy.coerce(4).max_attempts == 4
        assert RetryPolicy.coerce({"max_attempts": 2}).max_attempts == 2
        policy = RetryPolicy(max_attempts=7)
        assert RetryPolicy.coerce(policy) is policy
        with pytest.raises(TypeError, match="bool"):
            RetryPolicy.coerce(True)
        with pytest.raises(TypeError):
            RetryPolicy.coerce(object())

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY", '{"max_attempts": 6, "jitter": 0}')
        policy = RetryPolicy.from_env()
        assert policy.max_attempts == 6
        assert policy.jitter == 0
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "9")
        assert RetryPolicy.from_env().max_attempts == 9  # shorthand wins
        monkeypatch.setenv("REPRO_RETRY", "not json")
        with pytest.raises(ValueError, match="REPRO_RETRY"):
            RetryPolicy.from_env()

    def test_coerce_none_reads_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_ATTEMPTS", "8")
        assert RetryPolicy.coerce(None).max_attempts == 8
        monkeypatch.delenv("REPRO_MAX_ATTEMPTS")
        assert RetryPolicy.coerce(None) == RetryPolicy()
