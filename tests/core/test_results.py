"""Unit tests for result containers and their dict round-trips."""

import numpy as np
import pytest

from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)


def _history(**overrides):
    defaults = dict(
        method="xavier_normal",
        optimizer="adam",
        losses=[0.9, 0.5, 0.2, 0.05],
        gradient_norms=[1.0, 0.8, 0.3, 0.1],
        initial_params=np.array([0.1, 0.2]),
        final_params=np.array([0.3, -0.4]),
    )
    defaults.update(overrides)
    return TrainingHistory(**defaults)


class TestGradientSamples:
    def test_variance_and_mean(self):
        samples = GradientSamples(4, "random", np.array([1.0, -1.0, 1.0, -1.0]))
        assert samples.variance == pytest.approx(1.0)
        assert samples.mean == pytest.approx(0.0)

    def test_round_trip(self):
        samples = GradientSamples(6, "he_normal", np.array([0.1, 0.2]))
        restored = GradientSamples.from_dict(samples.to_dict())
        assert restored.num_qubits == 6
        assert restored.method == "he_normal"
        assert np.allclose(restored.gradients, samples.gradients)


class TestVarianceResult:
    def _result(self):
        result = VarianceResult(qubit_counts=[2, 4], methods=["random"])
        result.add(GradientSamples(2, "random", np.array([0.5, -0.5])))
        result.add(GradientSamples(4, "random", np.array([0.1, -0.1])))
        return result

    def test_variance_series(self):
        series = self._result().variance_series("random")
        assert series == pytest.approx([0.25, 0.01])

    def test_gradient_matrix(self):
        matrix = self._result().gradient_matrix("random")
        assert matrix.shape == (2, 2)

    def test_unknown_method_raises(self):
        with pytest.raises(KeyError):
            self._result().variance_series("he")

    def test_add_validates_grid(self):
        result = VarianceResult(qubit_counts=[2], methods=["random"])
        with pytest.raises(ValueError):
            result.add(GradientSamples(3, "random", np.array([0.0])))
        with pytest.raises(ValueError):
            result.add(GradientSamples(2, "bogus", np.array([0.0])))

    def test_round_trip(self):
        result = self._result()
        restored = VarianceResult.from_dict(result.to_dict())
        assert restored.qubit_counts == result.qubit_counts
        assert np.allclose(
            restored.variance_series("random"), result.variance_series("random")
        )


class TestDecayFit:
    def test_round_trip(self):
        fit = DecayFit("xavier", rate=0.62, intercept=-0.5, r_squared=0.98)
        restored = DecayFit.from_dict(fit.to_dict())
        assert restored == fit


class TestTrainingHistory:
    def test_initial_final(self):
        history = _history()
        assert history.initial_loss == pytest.approx(0.9)
        assert history.final_loss == pytest.approx(0.05)
        assert history.num_iterations == 3
        assert history.loss_reduction == pytest.approx(0.85)

    def test_iterations_to_reach(self):
        history = _history()
        assert history.iterations_to_reach(0.5) == 1
        assert history.iterations_to_reach(0.01) is None
        assert history.iterations_to_reach(2.0) == 0

    def test_round_trip(self):
        history = _history()
        restored = TrainingHistory.from_dict(history.to_dict())
        assert restored.method == history.method
        assert restored.losses == history.losses
        assert np.allclose(restored.final_params, history.final_params)
        assert restored.cost_kind == "global"

    def test_cost_kind_default_on_old_payloads(self):
        payload = _history().to_dict()
        del payload["cost_kind"]
        restored = TrainingHistory.from_dict(payload)
        assert restored.cost_kind == "global"
