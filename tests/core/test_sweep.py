"""Unit tests for configuration sweeps."""

import numpy as np
import pytest

from repro.core.sweep import improvement_series, sweep_variance
from repro.core.variance import VarianceConfig

_BASE = VarianceConfig(
    qubit_counts=(2, 3),
    num_circuits=6,
    num_layers=4,
    methods=("random", "xavier_normal"),
)


class TestSweepVariance:
    def test_keys_match_values(self):
        outcomes = sweep_variance("num_layers", [2, 5], base_config=_BASE, seed=0)
        assert set(outcomes) == {2, 5}

    def test_swept_field_applied(self):
        outcomes = sweep_variance("num_circuits", [3, 7], base_config=_BASE, seed=1)
        assert outcomes[3].result.samples[(2, "random")].gradients.shape == (3,)
        assert outcomes[7].result.samples[(2, "random")].gradients.shape == (7,)

    def test_paired_sweep_shares_draws(self):
        """With the same swept value, paired runs are identical."""
        a = sweep_variance("num_layers", [3], base_config=_BASE, seed=5)
        b = sweep_variance("num_layers", [3], base_config=_BASE, seed=5)
        assert np.allclose(
            a[3].result.samples[(2, "random")].gradients,
            b[3].result.samples[(2, "random")].gradients,
        )

    def test_paired_values_share_structures(self):
        """cost_kind sweep with pairing: same circuits, different costs."""
        outcomes = sweep_variance(
            "cost_kind", ["global", "local"], base_config=_BASE, seed=2
        )
        g = outcomes["global"].result.samples[(2, "random")].gradients
        l = outcomes["local"].result.samples[(2, "random")].gradients
        # Same circuit structures but different observables: correlated
        # yet not equal.
        assert not np.allclose(g, l)

    def test_unpaired_runs_differ(self):
        paired = sweep_variance(
            "num_layers", [3, 3], base_config=_BASE, seed=3, paired=True
        )
        # dict collapses duplicate keys; use two distinct values instead.
        outcomes = sweep_variance(
            "num_circuits", [6, 6], base_config=_BASE, seed=3, paired=False
        )
        del paired
        assert set(outcomes) == {6}

    def test_unknown_field(self):
        with pytest.raises(ValueError):
            sweep_variance("depth", [1], base_config=_BASE)

    def test_bad_value_fails_before_any_run(self, monkeypatch):
        """Invalid swept values are rejected eagerly, not mid-sweep."""
        import repro.core.variance as vmod

        calls = []
        original = vmod.run_variance_shard

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", counting)
        with pytest.raises(ValueError):
            sweep_variance("num_circuits", [4, 0], base_config=_BASE, seed=0)
        assert calls == []  # the valid value 4 never burned a run


class TestImprovementSeries:
    def test_extracts_improvements(self):
        outcomes = sweep_variance(
            "num_layers", [3, 6], base_config=_BASE, seed=4
        )
        series = improvement_series(outcomes, method="xavier_normal")
        assert set(series) == {3, 6}
        for value in series.values():
            assert value is None or isinstance(value, float)

    def test_type_check(self):
        with pytest.raises(TypeError):
            improvement_series({1: "oops"})
