"""Lock-step multi-trajectory training: bit-identity with sequential runs.

The contract under test: lock-step execution — one batched adjoint sweep
and one batch-aware optimizer step per iteration for all trajectories —
is a pure throughput change.  Histories (losses, gradient norms, initial
and final parameters) must equal the sequential per-trajectory runs
*exactly*, across optimizers, costs, restarts and the spec/executor
layer.
"""

import numpy as np
import pytest

import repro
from repro.core import ExperimentSpec
from repro.core.cost import make_cost
from repro.core.training import (
    Trainer,
    TrainingConfig,
    expand_trajectories,
    run_lockstep_training_unit,
    train_all_methods,
)
from repro.optim import Adam, GradientDescent, Momentum
from repro.utils.rng import spawn_seeds


def _tiny_config(**overrides):
    defaults = dict(num_qubits=3, num_layers=2, iterations=5)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def _assert_history_equal(a, b):
    assert a.method == b.method
    assert a.losses == b.losses
    assert a.gradient_norms == b.gradient_norms
    assert np.array_equal(a.initial_params, b.initial_params)
    assert np.array_equal(a.final_params, b.final_params)


class TestValueAndGradientFusion:
    def test_adjoint_engine_runs_circuit_once(self, monkeypatch):
        from repro.backend.simulator import StatevectorSimulator

        circuit = repro.QuantumCircuit(2).rx(0).ry(1).cz(0, 1).ry(0)
        cost = make_cost("global", circuit)
        params = np.array([0.3, -0.8, 1.4])
        calls = {"run": 0}
        original = StatevectorSimulator.run

        def counting_run(self, *args, **kwargs):
            calls["run"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(StatevectorSimulator, "run", counting_run)
        value, grad = cost.value_and_gradient(params)
        assert calls["run"] == 1
        monkeypatch.undo()
        assert value == cost.value(params)
        assert np.array_equal(grad, cost.gradient(params))

    @pytest.mark.parametrize(
        "engine",
        ["adjoint", "batch_adjoint", "parameter_shift", "finite_difference"],
    )
    def test_pair_matches_separate_calls(self, engine):
        circuit = repro.QuantumCircuit(2).rx(0).ry(1).cz(0, 1).ry(0)
        cost = make_cost("local", circuit, gradient_engine=engine)
        params = np.array([0.7, 0.1, -1.1])
        value, grad = cost.value_and_gradient(params)
        assert value == cost.value(params)
        if engine == "finite_difference":
            assert np.allclose(grad, cost.gradient(params))
        else:
            assert np.array_equal(grad, cost.gradient(params))


class TestValueAndGradientBatch:
    @pytest.mark.parametrize(
        "engine", ["adjoint", "batch_adjoint", "parameter_shift", "finite_difference"]
    )
    @pytest.mark.parametrize("kind", ["global", "local"])
    def test_rows_match_sequential_pair(self, engine, kind):
        circuit = repro.QuantumCircuit(3)
        for q in range(3):
            circuit.rx(q).ry(q)
        circuit.cz(0, 1).cz(1, 2)
        cost = make_cost(kind, circuit, gradient_engine=engine)
        rng = np.random.default_rng(71)
        batch = rng.uniform(0, 2 * np.pi, (4, circuit.num_parameters))
        values, grads = cost.value_and_gradient_batch(batch)
        assert values.shape == (4,) and grads.shape == (4, circuit.num_parameters)
        for b in range(4):
            value, grad = cost.value_and_gradient(batch[b])
            assert values[b] == value
            assert np.array_equal(grads[b], grad)

    def test_rejects_1d_params(self):
        circuit = repro.QuantumCircuit(1).rx(0)
        cost = make_cost("global", circuit)
        with pytest.raises(ValueError, match="2-D"):
            cost.value_and_gradient_batch(np.zeros(1))


class TestBatchedOptimizers:
    @pytest.mark.parametrize("cls", [GradientDescent, Momentum, Adam])
    def test_rows_match_independent_instances(self, cls):
        rng = np.random.default_rng(72)
        params = rng.normal(size=(3, 5))
        singles = [cls() for _ in range(3)]
        batched = cls()
        current = params.copy()
        per_row = [params[b].copy() for b in range(3)]
        for _ in range(4):
            grads = rng.normal(size=(3, 5))
            current = batched.step(current, grads)
            for b in range(3):
                per_row[b] = singles[b].step(per_row[b], grads[b])
                assert np.array_equal(current[b], per_row[b])

    def test_state_shape_switch_rejected(self):
        optimizer = Adam()
        optimizer.step(np.zeros((2, 3)), np.ones((2, 3)))
        with pytest.raises(ValueError, match="reset"):
            optimizer.step(np.zeros(3), np.ones(3))
        optimizer.reset()
        optimizer.step(np.zeros(3), np.ones(3))

    def test_qng_rejects_batches(self):
        from repro.optim import QuantumNaturalGradient

        circuit = repro.QuantumCircuit(1).rx(0)
        optimizer = QuantumNaturalGradient(circuit)
        with pytest.raises(ValueError, match="one trajectory"):
            optimizer.step(np.zeros((2, 1)), np.ones((2, 1)))


class TestRunLockstep:
    @pytest.mark.parametrize("optimizer", ["gradient_descent", "adam"])
    @pytest.mark.parametrize("cost_kind", ["global", "local"])
    def test_bit_identical_to_sequential_runs(self, optimizer, cost_kind):
        config = _tiny_config(optimizer=optimizer, cost_kind=cost_kind)
        trainer = Trainer(config)
        methods = ["random", "xavier_normal", "zeros"]
        seeds = spawn_seeds(123, len(methods))
        lock = trainer.run_lockstep(methods, seeds=seeds)
        for history, method, seed in zip(lock, methods, seeds):
            _assert_history_equal(history, trainer.run(method, seed=seed))

    def test_duplicate_methods_with_labels(self):
        trainer = Trainer(_tiny_config())
        seeds = spawn_seeds(5, 2)
        histories = trainer.run_lockstep(
            ["random", "random"], seeds=seeds, labels=["random#r0", "random#r1"]
        )
        assert [h.method for h in histories] == ["random#r0", "random#r1"]
        # Different child seeds -> different draws.
        assert not np.array_equal(
            histories[0].initial_params, histories[1].initial_params
        )

    def test_initial_params_override(self):
        trainer = Trainer(_tiny_config())
        stack = np.zeros((2, trainer.num_parameters))
        histories = trainer.run_lockstep(["random", "zeros"], initial_params=stack)
        for history in histories:
            assert history.initial_loss == pytest.approx(0.0, abs=1e-12)

    def test_callback_sees_batch(self):
        trainer = Trainer(_tiny_config(iterations=2))
        seen = []
        trainer.run_lockstep(
            ["random", "zeros"],
            seeds=spawn_seeds(1, 2),
            callback=lambda it, losses, params: seen.append(
                (it, losses.shape, params.shape)
            ),
        )
        assert seen == [(i, (2,), (2, trainer.num_parameters)) for i in range(3)]

    def test_rejects_empty_and_mismatched(self):
        trainer = Trainer(_tiny_config())
        with pytest.raises(ValueError, match="at least one"):
            trainer.run_lockstep([])
        with pytest.raises(ValueError, match="seeds"):
            trainer.run_lockstep(["random"], seeds=[1, 2])
        with pytest.raises(ValueError, match="labels"):
            trainer.run_lockstep(["random"], labels=["a", "b"])
        with pytest.raises(ValueError, match="shape"):
            trainer.run_lockstep(["random"], initial_params=np.zeros(3))


class TestTrainAllMethodsLockstep:
    def test_bit_identical_to_sequential_mode(self):
        config = _tiny_config()
        methods = ("random", "he_normal", "zeros")
        sequential = train_all_methods(config, methods=methods, seed=42)
        lockstep = train_all_methods(config, methods=methods, seed=42, lockstep=True)
        assert list(sequential) == list(lockstep)
        for method in sequential:
            _assert_history_equal(sequential[method], lockstep[method])

    def test_restarts_bit_identical_and_labelled(self):
        config = _tiny_config(iterations=3)
        sequential = train_all_methods(
            config, methods=("random", "he_normal"), seed=6, restarts=2
        )
        lockstep = train_all_methods(
            config, methods=("random", "he_normal"), seed=6, restarts=2, lockstep=True
        )
        assert set(sequential) == {
            "random#r0",
            "random#r1",
            "he_normal#r0",
            "he_normal#r1",
        }
        for label in sequential:
            _assert_history_equal(sequential[label], lockstep[label])

    def test_expand_trajectories_layout(self):
        labels, methods = expand_trajectories(("a", "b"), restarts=3)
        assert labels == ["a#r0", "a#r1", "a#r2", "b#r0", "b#r1", "b#r2"]
        assert methods == ["a", "a", "a", "b", "b", "b"]
        labels, methods = expand_trajectories(("a", "b"))
        assert labels == ["a", "b"] and methods == ["a", "b"]

    def test_verbose_prints_labels(self, capsys):
        train_all_methods(
            _tiny_config(iterations=1),
            methods=("zeros",),
            seed=0,
            restarts=2,
            lockstep=True,
            verbose=True,
        )
        out = capsys.readouterr().out
        assert "zeros#r0" in out and "zeros#r1" in out


class TestLockstepSpecExecution:
    def test_lockstep_executor_matches_serial(self):
        config = _tiny_config(iterations=3)
        base = dict(
            kind="training", config=config, seed=9, methods=("random", "zeros")
        )
        serial = repro.run(ExperimentSpec(executor="serial", **base))
        lockstep = repro.run(ExperimentSpec(executor="lockstep", **base))
        assert list(serial.histories) == list(lockstep.histories)
        for method in serial.histories:
            _assert_history_equal(
                serial.histories[method], lockstep.histories[method]
            )

    def test_restarts_through_spec(self):
        config = _tiny_config(iterations=2)
        outcome = repro.run(
            ExperimentSpec(
                kind="training",
                config=config,
                seed=3,
                methods=("random",),
                restarts=3,
                executor="lockstep",
            )
        )
        assert set(outcome.histories) == {"random#r0", "random#r1", "random#r2"}

    def test_lockstep_unit_outputs_round_trip(self):
        config = _tiny_config(iterations=2)
        seeds = spawn_seeds(4, 2)
        payloads = run_lockstep_training_unit(
            config, ("random", "zeros"), ("random", "zeros"), seeds
        )
        from repro.core.results import TrainingHistory

        histories = [TrainingHistory.from_dict(p) for p in payloads]
        assert [h.method for h in histories] == ["random", "zeros"]
        assert all(len(h.losses) == 3 for h in histories)

    def test_checkpoint_resume(self, tmp_path):
        config = _tiny_config(iterations=2)
        spec = ExperimentSpec(
            kind="training",
            config=config,
            seed=8,
            methods=("random", "zeros"),
            executor="lockstep",
            checkpoint_dir=tmp_path,
        )
        first = repro.run(spec)
        assert list(tmp_path.glob("shard-*.json"))
        resumed = repro.run(spec)
        for method in first.histories:
            _assert_history_equal(
                first.histories[method], resumed.histories[method]
            )

    def test_restarts_rejected_outside_training(self):
        with pytest.raises(ValueError, match="restarts"):
            ExperimentSpec(kind="variance", restarts=2)

    def test_restarts_round_trip(self):
        spec = ExperimentSpec(kind="training", restarts=4, executor="lockstep")
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.restarts == 4
        legacy = ExperimentSpec.from_dict({"kind": "training"})
        assert legacy.restarts == 1


class TestCliBatchTrajectories:
    def test_train_flag_runs_lockstep(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--qubits",
                "2",
                "--layers",
                "1",
                "--iterations",
                "1",
                "--methods",
                "zeros",
                "--restarts",
                "2",
                "--batch-trajectories",
                "--seed",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "zeros#r0" in out and "zeros#r1" in out
