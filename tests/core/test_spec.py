"""Unit tests for the declarative ExperimentSpec API and repro.run."""

import json

import numpy as np
import pytest

import repro
from repro.core.experiments import (
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
    run_training_experiment,
    run_variance_experiment,
)
from repro.core.spec import EXPERIMENT_KINDS, ExperimentSpec, run
from repro.core.sweep import sweep_variance
from repro.core.training import TrainingConfig
from repro.core.variance import VarianceConfig

_VAR_CONFIG = VarianceConfig(
    qubit_counts=(2, 3),
    num_circuits=5,
    num_layers=4,
    methods=("random", "xavier_normal"),
)
_TRAIN_CONFIG = TrainingConfig(num_qubits=2, num_layers=1, iterations=3)


class TestValidation:
    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown experiment kind"):
            ExperimentSpec(kind="teleportation")

    def test_kinds_registry(self):
        assert set(EXPERIMENT_KINDS) == {"variance", "training", "sweep"}

    def test_config_dict_coercion(self):
        spec = ExperimentSpec(
            kind="variance", config={"qubit_counts": [2], "num_circuits": 3}
        )
        assert isinstance(spec.config, VarianceConfig)
        assert spec.config.num_circuits == 3

    def test_wrong_config_type(self):
        with pytest.raises(TypeError, match="TrainingConfig"):
            ExperimentSpec(kind="training", config=_VAR_CONFIG)

    def test_methods_only_for_training(self):
        with pytest.raises(ValueError, match="training specs only"):
            ExperimentSpec(kind="variance", methods=("random",))

    def test_sweep_requires_field_and_values(self):
        with pytest.raises(ValueError, match="sweep_field"):
            ExperimentSpec(kind="sweep")

    def test_sweep_unknown_field(self):
        with pytest.raises(ValueError, match="unknown VarianceConfig field"):
            ExperimentSpec(kind="sweep", sweep_field="depth", sweep_values=[1])

    def test_sweep_fields_rejected_elsewhere(self):
        with pytest.raises(ValueError, match="sweep specs only"):
            ExperimentSpec(
                kind="variance", sweep_field="num_layers", sweep_values=[1]
            )

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExperimentSpec(kind="variance", workers=0)


class TestResolvedExecutor:
    def test_explicit_name_wins(self):
        spec = ExperimentSpec(kind="variance", executor="process_pool")
        assert spec.resolved_executor() == "process_pool"

    def test_derived_from_batched_flag(self):
        batched = ExperimentSpec(kind="variance", config=_VAR_CONFIG)
        sequential = ExperimentSpec(
            kind="variance",
            config=VarianceConfig(
                qubit_counts=(2,), num_circuits=2, num_layers=2, batched=False
            ),
        )
        assert batched.resolved_executor() == "batched"
        assert sequential.resolved_executor() == "serial"

    def test_training_default(self):
        assert ExperimentSpec(kind="training").resolved_executor() == "serial"


class TestSerialization:
    def test_dict_round_trip(self):
        spec = ExperimentSpec(
            kind="variance",
            config=_VAR_CONFIG,
            seed=7,
            executor="process_pool",
            workers=3,
        )
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.kind == "variance"
        assert restored.config == _VAR_CONFIG
        assert restored.seed == 7
        assert restored.workers == 3

    def test_json_round_trip_is_pure_json(self):
        spec = ExperimentSpec(kind="training", config=_TRAIN_CONFIG, seed=1)
        text = json.dumps(spec.to_dict())
        restored = ExperimentSpec.from_json(text)
        assert restored.config == _TRAIN_CONFIG

    def test_seed_sequence_round_trip(self):
        seed_seq = np.random.SeedSequence(42, spawn_key=(3,))
        seed_seq.spawn(2)  # advance the child counter
        spec = ExperimentSpec(kind="variance", seed=seed_seq)
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.seed.entropy == 42
        assert restored.seed.spawn_key == (3,)
        assert restored.seed.n_children_spawned == 2

    def test_generator_seed_round_trips_via_seed_sequence(self):
        rng = np.random.default_rng(5)
        spec = ExperimentSpec(kind="variance", seed=rng)
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert isinstance(restored.seed, np.random.SeedSequence)

    def test_from_file_bare_and_wrapped(self, tmp_path):
        from repro.io import save_result

        spec = ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=2)
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(spec.to_dict()))
        wrapped = save_result(spec, tmp_path / "wrapped.json")
        for path in (bare, wrapped):
            restored = ExperimentSpec.from_file(path)
            assert restored.config == _VAR_CONFIG
            assert restored.seed == 2

    def test_from_file_rejects_non_object(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="spec object"):
            ExperimentSpec.from_file(path)

    def test_from_dict_rejects_unknown_keys(self):
        """A typo'd field must not silently change the experiment."""
        with pytest.raises(ValueError, match="sede"):
            ExperimentSpec.from_dict({"kind": "variance", "sede": 5})

    def test_from_dict_missing_kind_is_a_clear_error(self):
        with pytest.raises(ValueError, match="missing its 'kind'"):
            ExperimentSpec.from_dict({"seed": 1})

    def test_from_dict_tolerates_explicit_nulls(self):
        """Handwritten spec JSON with nulls for optional scalars loads."""
        spec = ExperimentSpec.from_dict(
            {
                "kind": "variance",
                "config": None,
                "seed": None,
                "executor": None,
                "workers": None,
                "paired": None,
            }
        )
        assert spec.workers == 1
        assert spec.paired is True


class TestRun:
    def test_variance_matches_legacy_entry_point(self):
        via_spec = run(
            ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=0)
        )
        via_legacy = run_variance_experiment(_VAR_CONFIG, seed=0)
        assert isinstance(via_spec, VarianceExperimentOutcome)
        for key in via_legacy.result.samples:
            assert np.array_equal(
                via_spec.result.samples[key].gradients,
                via_legacy.result.samples[key].gradients,
            ), key

    def test_training_matches_legacy_entry_point(self):
        methods = ("random", "zeros")
        via_spec = run(
            ExperimentSpec(
                kind="training", config=_TRAIN_CONFIG, seed=0, methods=methods
            )
        )
        via_legacy = run_training_experiment(
            _TRAIN_CONFIG, methods=methods, seed=0
        )
        assert isinstance(via_spec, TrainingExperimentOutcome)
        for method in methods:
            assert (
                via_spec.histories[method].losses
                == via_legacy.histories[method].losses
            )

    def test_sweep_matches_legacy_entry_point(self):
        spec = ExperimentSpec(
            kind="sweep",
            config=_VAR_CONFIG,
            seed=4,
            sweep_field="num_layers",
            sweep_values=[2, 5],
        )
        via_spec = run(spec)
        via_legacy = sweep_variance(
            "num_layers", [2, 5], base_config=_VAR_CONFIG, seed=4
        )
        assert set(via_spec) == {2, 5}
        for value in (2, 5):
            assert np.array_equal(
                via_spec[value].result.samples[(2, "random")].gradients,
                via_legacy[value].result.samples[(2, "random")].gradients,
            )

    def test_accepts_dict_and_file(self, tmp_path):
        spec = ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=1)
        from_obj = run(spec)
        from_dict = run(spec.to_dict())
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        from_file = run(str(path))
        for other in (from_dict, from_file):
            assert np.array_equal(
                from_obj.result.samples[(2, "random")].gradients,
                other.result.samples[(2, "random")].gradients,
            )

    def test_repro_run_is_the_spec_runner(self):
        assert repro.run is run

    def test_unknown_executor_rejected_at_run_time(self):
        spec = ExperimentSpec(kind="variance", config=_VAR_CONFIG, executor="gpu")
        with pytest.raises(ValueError, match="unknown executor"):
            run(spec)

    def test_verbose_streams_per_qubit_count(self, capsys):
        run(
            ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=0),
            verbose=True,
        )
        out = capsys.readouterr().out
        assert "[variance] q=2:" in out
        assert "[variance] q=3:" in out

    def test_sweep_validates_values_before_running(self, monkeypatch):
        """A bad swept value fails eagerly, before any run burns time."""
        import repro.core.variance as vmod

        calls = []
        original = vmod.run_variance_shard

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", counting)
        spec = ExperimentSpec(
            kind="sweep",
            config=_VAR_CONFIG,
            seed=0,
            sweep_field="num_circuits",
            sweep_values=[3, -1],
        )
        with pytest.raises(ValueError):
            run(spec)
        assert calls == []


class TestFoldCheckpointCompatibility:
    """The fold scope must not perturb checkpoint fingerprints."""

    def test_fingerprint_ignores_fold(self):
        from dataclasses import replace

        from repro.core.spec import _fingerprint
        from repro.core.variance import VarianceConfig

        config = VarianceConfig(qubit_counts=(2,), num_circuits=4, num_layers=2)
        spec = ExperimentSpec(kind="variance", config=config, seed=3)
        prints = {
            _fingerprint("variance", replace(config, fold=fold), spec)
            for fold in ("shape", "structure")
        }
        assert len(prints) == 1

    def test_structure_checkpoints_resume_under_shape(self, tmp_path):
        """A grid checkpointed under fold="structure" resumes (and merges
        identically) when rerun under the default shape fold."""
        import numpy as np

        from repro.core.variance import VarianceConfig

        def outcome_for(fold):
            config = VarianceConfig(
                qubit_counts=(2, 3),
                num_circuits=4,
                num_layers=2,
                methods=("random", "zeros"),
                fold=fold,
            )
            spec = ExperimentSpec(
                kind="variance",
                config=config,
                seed=11,
                executor="batched",
                checkpoint_dir=tmp_path,
            )
            return repro.run(spec)

        first = outcome_for("structure")
        resumed = outcome_for("shape")
        for key in first.result.samples:
            assert np.array_equal(
                first.result.samples[key].gradients,
                resumed.result.samples[key].gradients,
            )

    def test_rejects_nonpositive_circuits_per_shard(self):
        with pytest.raises(ValueError, match="circuits_per_shard"):
            ExperimentSpec(kind="variance", circuits_per_shard=0)
        with pytest.raises(ValueError, match="circuits_per_shard"):
            ExperimentSpec(kind="variance", circuits_per_shard=-2)

    def test_rejects_nonpositive_shots_eagerly(self):
        with pytest.raises(ValueError, match="shots"):
            ExperimentSpec(kind="variance", shots=0)
        from repro.core.variance import VarianceConfig

        with pytest.raises(ValueError, match="shots"):
            VarianceConfig(shots=-5)


class TestPublicFingerprint:
    _config = VarianceConfig(
        qubit_counts=(2, 3), num_circuits=4, num_layers=3, methods=("random",)
    )

    def test_stable_across_instances(self):
        a = ExperimentSpec(kind="variance", config=self._config, seed=3)
        b = ExperimentSpec(kind="variance", config=self._config, seed=3)
        assert a.fingerprint() == b.fingerprint()
        assert len(a.fingerprint()) == 40  # sha1 hex digest

    def test_sensitive_to_seed_and_config(self):
        from dataclasses import replace

        base = ExperimentSpec(kind="variance", config=self._config, seed=3)
        reseeded = ExperimentSpec(kind="variance", config=self._config, seed=4)
        deeper = ExperimentSpec(
            kind="variance",
            config=replace(self._config, num_layers=4),
            seed=3,
        )
        assert base.fingerprint() != reseeded.fingerprint()
        assert base.fingerprint() != deeper.fingerprint()

    def test_scheduling_fields_are_identity_neutral(self):
        base = ExperimentSpec(kind="variance", config=self._config, seed=3)
        scheduled = ExperimentSpec(
            kind="variance",
            config=self._config,
            seed=3,
            executor="process_pool",
            workers=4,
            checkpoint_dir="/tmp/somewhere",
        )
        assert base.fingerprint() == scheduled.fingerprint()

    def test_plan_folds_in(self):
        spec = ExperimentSpec(kind="variance", config=self._config, seed=3)
        assert spec.fingerprint() != spec.fingerprint(
            plan={"circuits_per_shard": 2}
        )

    def test_matches_internal_fingerprint_used_by_run(self):
        from repro.core.spec import _fingerprint, _resolve_config

        spec = ExperimentSpec(kind="variance", config=self._config, seed=3)
        assert spec.fingerprint() == _fingerprint(
            spec.kind, _resolve_config(spec), spec
        )

    def test_sweep_values_stamped(self):
        a = ExperimentSpec(
            kind="sweep", sweep_field="num_layers", sweep_values=[1, 2], seed=0
        )
        b = ExperimentSpec(
            kind="sweep", sweep_field="num_layers", sweep_values=[1, 3], seed=0
        )
        assert a.fingerprint() != b.fingerprint()

    def test_generator_seeds_fingerprint_via_seed_sequence(self):
        a = ExperimentSpec(
            kind="variance", config=self._config, seed=np.random.default_rng(3)
        )
        b = ExperimentSpec(
            kind="variance", config=self._config, seed=np.random.default_rng(3)
        )
        c = ExperimentSpec(
            kind="variance", config=self._config, seed=np.random.default_rng(4)
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestUnitFingerprintSharing:
    """Shard content keys are grid-independent: subsets share them."""

    def _unit_fingerprints(self, qubit_counts):
        from repro.core.spec import plan_experiment

        spec = ExperimentSpec(
            kind="variance",
            config=VarianceConfig(
                qubit_counts=qubit_counts,
                num_circuits=4,
                num_layers=3,
                methods=("random",),
            ),
            seed=3,
        )
        return plan_experiment(spec).unit_fingerprints

    def test_subset_grid_reuses_superset_unit_keys(self):
        superset = self._unit_fingerprints((2, 3, 4))
        subset = self._unit_fingerprints((2, 3))
        assert set(subset.values()) < set(superset.values())

    def test_disjoint_rows_do_not_collide(self):
        first = self._unit_fingerprints((2, 3))
        second = self._unit_fingerprints((4, 5))
        assert not set(first.values()) & set(second.values())


_NOISE = {"default": {"name": "depolarizing", "probability": 0.02}}


class TestNoiseFingerprints:
    """The noise:null -> dropped rule keeps historical keys valid."""

    _config = VarianceConfig(
        qubit_counts=(2, 3), num_circuits=4, num_layers=3, methods=("random",)
    )

    def test_noiseless_fingerprint_unchanged_by_field_addition(self):
        # The canonical payload drops noise=None, so specs written before
        # the field existed digest identically to specs written after.
        spec = ExperimentSpec(kind="variance", config=self._config, seed=3)
        payload = spec.to_dict()
        assert payload["noise"] is None
        del payload["noise"]
        assert ExperimentSpec.from_dict(payload).fingerprint() == spec.fingerprint()

    def test_noisy_fingerprint_never_collides_with_noiseless(self):
        base = ExperimentSpec(kind="variance", config=self._config, seed=3)
        noisy = ExperimentSpec(
            kind="variance", config=self._config, seed=3, noise=_NOISE
        )
        assert base.fingerprint() != noisy.fingerprint()

    def test_trivial_noise_is_identity_neutral(self):
        base = ExperimentSpec(kind="variance", config=self._config, seed=3)
        trivial = ExperimentSpec(
            kind="variance",
            config=self._config,
            seed=3,
            noise={"default": {"name": "bit_flip", "probability": 0.0}},
        )
        assert trivial.noise is None
        assert base.fingerprint() == trivial.fingerprint()

    def test_spec_override_matches_config_field(self):
        from dataclasses import replace

        via_spec = ExperimentSpec(
            kind="variance", config=self._config, seed=3, noise=_NOISE
        )
        via_config = ExperimentSpec(
            kind="variance",
            config=replace(self._config, noise=dict(_NOISE)),
            seed=3,
        )
        assert via_spec.fingerprint() == via_config.fingerprint()

    def test_noise_round_trips_through_json(self):
        spec = ExperimentSpec(
            kind="training", config=_TRAIN_CONFIG, seed=1, noise=_NOISE
        )
        rebuilt = ExperimentSpec.from_json(json.dumps(spec.to_dict()))
        assert rebuilt.noise == spec.noise
        assert rebuilt.fingerprint() == spec.fingerprint()

    def test_rejects_malformed_noise_payload(self):
        with pytest.raises(ValueError):
            ExperimentSpec(
                kind="variance",
                config=self._config,
                noise={"default": {"name": "cosmic_ray"}},
            )

    def test_unit_fingerprints_distinguish_noise(self):
        from repro.core.spec import plan_experiment

        def unit_keys(noise):
            spec = ExperimentSpec(
                kind="variance", config=self._config, seed=3, noise=noise
            )
            return set(plan_experiment(spec).unit_fingerprints.values())

        assert not unit_keys(None) & unit_keys(_NOISE)


class TestNoisyExecution:
    """A noisy spec runs end-to-end through every executor, bit-identically."""

    _config = VarianceConfig(
        qubit_counts=(2, 3),
        num_circuits=3,
        num_layers=2,
        methods=("random", "xavier_normal"),
        noise={
            "default": {"name": "depolarizing", "probability": 0.02},
            "readout_error": 0.0,
        },
    )

    def _outcome(self, **kwargs):
        spec = ExperimentSpec(
            kind="variance", config=self._config, seed=7, **kwargs
        )
        return repro.run(spec)

    def test_executors_agree_bit_identically(self):
        serial = self._outcome(executor="serial")
        batched = self._outcome(executor="batched")
        pooled = self._outcome(executor="process_pool", workers=2)
        asynced = self._outcome(executor="async")
        for other in (batched, pooled, asynced):
            for method in serial.result.methods:
                assert np.array_equal(
                    serial.result.variance_series(method),
                    other.result.variance_series(method),
                )

    def test_noise_changes_the_physics(self):
        from dataclasses import replace

        noiseless = ExperimentSpec(
            kind="variance",
            config=replace(self._config, noise=None),
            seed=7,
        )
        ideal = repro.run(noiseless)
        noisy = self._outcome()
        assert not np.array_equal(
            ideal.result.variance_series("random"),
            noisy.result.variance_series("random"),
        )

    def test_noisy_training_spec_runs(self):
        config = TrainingConfig(
            num_qubits=2,
            num_layers=1,
            iterations=2,
            noise={"default": {"name": "phase_damping", "gamma": 0.05}},
        )
        spec = ExperimentSpec(
            kind="training", config=config, seed=1, methods=("random",)
        )
        outcome = repro.run(spec)
        assert "random" in outcome.histories

    def test_noisy_training_lockstep_runs(self):
        config = TrainingConfig(
            num_qubits=2,
            num_layers=1,
            iterations=2,
            noise={"default": {"name": "depolarizing", "probability": 0.02}},
        )
        spec = ExperimentSpec(
            kind="training",
            config=config,
            seed=1,
            methods=("random",),
            executor="lockstep",
        )
        serial = repro.run(
            ExperimentSpec(
                kind="training", config=config, seed=1, methods=("random",)
            )
        )
        lockstep = repro.run(spec)
        assert "random" in lockstep.histories
        assert serial.histories["random"].losses == pytest.approx(
            lockstep.histories["random"].losses
        )
