"""Seed reproducibility of sampled results across executors and resume.

The acceptance contract of the shot-sampling PR: the same spec seed
produces bit-identical sampled results on every executor — ``serial``,
``batched``, ``process_pool`` and ``lockstep`` — and across
checkpoint/resume, because all measurement streams are pre-derived from
the spec seed rather than from execution order.
"""

import numpy as np
import pytest

import repro
from repro.core import ExperimentSpec, TrainingConfig, VarianceConfig


def _training_spec(executor, **overrides):
    base = dict(
        kind="training",
        config=TrainingConfig(num_qubits=3, num_layers=2, iterations=3),
        seed=14,
        methods=("random", "zeros"),
        shots=40,
        executor=executor,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _variance_spec(executor, **overrides):
    base = dict(
        kind="variance",
        config=VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=4,
            num_layers=3,
            methods=("random", "xavier_normal"),
        ),
        seed=23,
        shots=30,
        executor=executor,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


def _assert_histories_equal(a, b):
    assert list(a.histories) == list(b.histories)
    for label in a.histories:
        assert a.histories[label].losses == b.histories[label].losses
        assert (
            a.histories[label].gradient_norms
            == b.histories[label].gradient_norms
        )
        assert np.array_equal(
            a.histories[label].final_params, b.histories[label].final_params
        )


def _assert_variance_equal(a, b):
    assert set(a.result.samples) == set(b.result.samples)
    for key in a.result.samples:
        assert np.array_equal(
            a.result.samples[key].gradients, b.result.samples[key].gradients
        )


class TestSampledTrainingAcrossExecutors:
    @pytest.fixture(scope="class")
    def serial_outcome(self):
        return repro.run(_training_spec("serial"))

    @pytest.mark.parametrize("executor", ["batched", "lockstep"])
    def test_in_process_executors_match_serial(self, serial_outcome, executor):
        _assert_histories_equal(serial_outcome, repro.run(_training_spec(executor)))

    @pytest.mark.slow
    def test_process_pool_matches_serial(self, serial_outcome):
        outcome = repro.run(_training_spec("process_pool", workers=2))
        _assert_histories_equal(serial_outcome, outcome)

    def test_restarts_with_shots_match(self):
        serial = repro.run(_training_spec("serial", restarts=2))
        lockstep = repro.run(_training_spec("lockstep", restarts=2))
        assert set(serial.histories) == {
            "random#r0",
            "random#r1",
            "zeros#r0",
            "zeros#r1",
        }
        _assert_histories_equal(serial, lockstep)

    def test_checkpoint_resume_reproduces(self, tmp_path, serial_outcome):
        spec = _training_spec("lockstep", checkpoint_dir=tmp_path)
        first = repro.run(spec)
        assert list(tmp_path.glob("shard-*.json"))
        resumed = repro.run(spec)
        _assert_histories_equal(first, resumed)
        _assert_histories_equal(serial_outcome, resumed)

    def test_partial_resume_from_per_trajectory_checkpoints(self, tmp_path):
        """Checkpoints written by one executor resume under another with the
        same unit layout (serial and batched share per-trajectory units)."""
        serial = repro.run(_training_spec("serial", checkpoint_dir=tmp_path))
        shards = sorted(tmp_path.glob("shard-*.json"))
        assert len(shards) == 2
        shards[0].unlink()  # drop one trajectory; the rerun recomputes it
        resumed = repro.run(_training_spec("batched", checkpoint_dir=tmp_path))
        _assert_histories_equal(serial, resumed)

    def test_different_shots_change_results_and_checkpoints(self, tmp_path):
        low = repro.run(_training_spec("serial"))
        high = repro.run(_training_spec("serial", shots=4000))
        losses_low = low.histories["random"].losses
        losses_high = high.histories["random"].losses
        assert losses_low != losses_high


class TestSampledVarianceAcrossExecutors:
    @pytest.fixture(scope="class")
    def serial_outcome(self):
        return repro.run(_variance_spec("serial"))

    @pytest.mark.parametrize("executor", ["batched", "lockstep"])
    def test_in_process_executors_match_serial(self, serial_outcome, executor):
        _assert_variance_equal(serial_outcome, repro.run(_variance_spec(executor)))

    @pytest.mark.slow
    def test_process_pool_matches_serial(self, serial_outcome):
        outcome = repro.run(
            _variance_spec("process_pool", workers=2, circuits_per_shard=2)
        )
        _assert_variance_equal(serial_outcome, outcome)

    def test_checkpoint_resume_reproduces(self, tmp_path, serial_outcome):
        spec = _variance_spec("batched", checkpoint_dir=tmp_path)
        first = repro.run(spec)
        assert list(tmp_path.glob("shard-*.json"))
        resumed = repro.run(spec)
        _assert_variance_equal(first, resumed)
        _assert_variance_equal(serial_outcome, resumed)

    def test_sweep_propagates_shots(self):
        spec = ExperimentSpec(
            kind="sweep",
            config=VarianceConfig(
                qubit_counts=(2, 3),
                num_circuits=3,
                num_layers=2,
                methods=("random",),
            ),
            seed=5,
            shots=25,
            sweep_field="num_layers",
            sweep_values=[2, 4],
        )
        outcomes = repro.run(spec)
        assert set(outcomes) == {2, 4}
        # Identical seeds + paired streams: the depth-2 grid of the sweep
        # equals a standalone depth-2 sampled run under the same child.
        for outcome in outcomes.values():
            samples = outcome.result.samples
            assert all(
                np.isfinite(samples[key].gradients).all() for key in samples
            )


class TestSpecShotsValidation:
    def test_shots_round_trip_and_validation(self):
        spec = _training_spec("lockstep")
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.shots == 40
        assert clone.config.shots is None  # override lives on the spec
        legacy = ExperimentSpec.from_dict({"kind": "training"})
        assert legacy.shots is None
        with pytest.raises(ValueError, match="shots"):
            ExperimentSpec(kind="training", shots=0)

    def test_config_level_shots_round_trip(self):
        spec = ExperimentSpec(
            kind="variance",
            config=VarianceConfig(qubit_counts=(2,), num_circuits=2, shots=10),
        )
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.config.shots == 10

    def test_spec_shots_overrides_config(self):
        config = TrainingConfig(
            num_qubits=2, num_layers=1, iterations=1, shots=9999
        )
        spec = ExperimentSpec(
            kind="training",
            config=config,
            seed=0,
            methods=("zeros",),
            shots=10,
        )
        outcome = repro.run(spec)
        assert "zeros" in outcome.histories


class TestCliShots:
    def test_train_shots_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "1",
                "--methods", "random",
                "--shots", "50",
                "--seed", "1",
                "--batch-trajectories",
            ]
        )
        assert code == 0
        assert "final-loss ranking" in capsys.readouterr().out

    def test_variance_shots_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "2",
                "--layers", "2",
                "--methods", "random",
                "--shots", "20",
                "--seed", "0",
            ]
        )
        assert code == 0
        assert "ranking" in capsys.readouterr().out
