"""Shot-based training: cost plumbing, Trainer modes, lock-step identity.

The contract: with ``TrainingConfig.shots`` set, losses and gradients are
finite-sample estimates through the parameter-shift rule, each trajectory
owns a persistent measurement stream, and lock-step execution consumes
every stream exactly as the sequential per-trajectory loop would — so
histories are bit-identical between the modes given the same seeds.
"""

import numpy as np
import pytest

import repro
from repro.core.cost import make_cost
from repro.core.training import (
    Trainer,
    TrainingConfig,
    run_labelled_training_unit,
    run_lockstep_training_unit,
    train_all_methods,
)
from repro.utils.rng import ensure_rng, spawn_seeds


def _tiny_config(**overrides):
    defaults = dict(num_qubits=3, num_layers=2, iterations=4, shots=48)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


def _assert_history_equal(a, b):
    assert a.method == b.method
    assert a.losses == b.losses
    assert a.gradient_norms == b.gradient_norms
    assert np.array_equal(a.initial_params, b.initial_params)
    assert np.array_equal(a.final_params, b.final_params)


class TestSampledCost:
    @pytest.fixture
    def circuit(self):
        circuit = repro.QuantumCircuit(3)
        for q in range(3):
            circuit.rx(q).ry(q)
        circuit.cz(0, 1).cz(1, 2)
        return circuit

    @pytest.mark.parametrize("kind", ["global", "local"])
    def test_value_reproducible_and_noisy(self, circuit, kind):
        cost = make_cost(kind, circuit)
        params = np.full(circuit.num_parameters, 0.4)
        a = cost.value(params, shots=64, seed=5)
        b = cost.value(params, shots=64, seed=5)
        c = cost.value(params, shots=64, seed=6)
        assert a == b
        assert a != c or kind == "global"  # global cost can coincide

    def test_sampled_gradient_uses_shift_rule_for_adjoint_engine(self, circuit):
        cost = make_cost("local", circuit, gradient_engine="adjoint")
        params = np.full(circuit.num_parameters, 0.7)
        grad = cost.gradient(params, shots=20000, seed=0)
        assert np.allclose(grad, cost.gradient(params), atol=0.05)

    def test_value_and_gradient_stream_order(self, circuit):
        """The fused pair consumes one rng value-first then shifts."""
        cost = make_cost("global", circuit)
        params = np.full(circuit.num_parameters, 0.3)
        rng = ensure_rng(9)
        value, grad = cost.value_and_gradient(params, shots=50, seed=rng)
        rng = ensure_rng(9)
        expected_value = cost.value(params, shots=50, seed=rng)
        expected_grad = cost.gradient(params, shots=50, seed=rng)
        assert value == expected_value
        assert np.array_equal(grad, expected_grad)

    def test_batch_rows_match_sequential_pair(self, circuit):
        cost = make_cost("local", circuit)
        rng = np.random.default_rng(3)
        batch = rng.uniform(0, 2 * np.pi, (3, circuit.num_parameters))
        children = spawn_seeds(8, 3)
        values, grads = cost.value_and_gradient_batch(batch, shots=40, seed=8)
        for b in range(3):
            value, grad = cost.value_and_gradient(
                batch[b], shots=40, seed=ensure_rng(children[b])
            )
            assert values[b] == value
            assert np.array_equal(grads[b], grad)

    def test_sampled_value_is_unbiased(
        self, circuit, assert_unbiased_estimator
    ):
        cost = make_cost("local", circuit)
        params = np.full(circuit.num_parameters, 0.9)
        exact = cost.value(params)
        estimates = [
            cost.value(params, shots=48, seed=seed) for seed in range(200)
        ]
        assert_unbiased_estimator(estimates, exact)


class TestTrainerShotBased:
    def test_sample_seed_requires_shots(self):
        trainer = Trainer(_tiny_config(shots=None))
        with pytest.raises(ValueError, match="sample_seed requires"):
            trainer.run("zeros", seed=0, sample_seed=1)
        with pytest.raises(ValueError, match="sample_seeds requires"):
            trainer.run_lockstep(["zeros"], seeds=[0], sample_seeds=[1])

    def test_reproducible_given_seeds(self):
        trainer = Trainer(_tiny_config())
        a = trainer.run("random", seed=1, sample_seed=2)
        b = trainer.run("random", seed=1, sample_seed=2)
        _assert_history_equal(a, b)

    def test_measurement_noise_changes_history(self):
        trainer = Trainer(_tiny_config())
        a = trainer.run("random", seed=1, sample_seed=2)
        b = trainer.run("random", seed=1, sample_seed=3)
        assert np.array_equal(a.initial_params, b.initial_params)
        assert a.losses != b.losses

    @pytest.mark.parametrize("optimizer", ["gradient_descent", "adam"])
    def test_lockstep_bit_identical_to_sequential(self, optimizer):
        config = _tiny_config(optimizer=optimizer)
        trainer = Trainer(config)
        methods = ["random", "xavier_normal", "zeros"]
        init_seeds = spawn_seeds(100, 3)
        sample_seeds = spawn_seeds(200, 3)
        lock = trainer.run_lockstep(
            methods, seeds=init_seeds, sample_seeds=sample_seeds
        )
        for history, method, init, sample in zip(
            lock, methods, init_seeds, sample_seeds
        ):
            reference = trainer.run(method, seed=init, sample_seed=sample)
            _assert_history_equal(history, reference)

    def test_train_all_methods_modes_agree(self):
        config = _tiny_config()
        methods = ("random", "he_normal")
        sequential = train_all_methods(config, methods=methods, seed=11)
        lockstep = train_all_methods(
            config, methods=methods, seed=11, lockstep=True
        )
        assert list(sequential) == list(lockstep)
        for label in sequential:
            _assert_history_equal(sequential[label], lockstep[label])

    def test_restarts_with_shots(self):
        config = _tiny_config(iterations=2)
        sequential = train_all_methods(
            config, methods=("random",), seed=4, restarts=2
        )
        lockstep = train_all_methods(
            config, methods=("random",), seed=4, restarts=2, lockstep=True
        )
        assert set(sequential) == {"random#r0", "random#r1"}
        for label in sequential:
            _assert_history_equal(sequential[label], lockstep[label])

    def test_unit_functions_agree(self):
        config = _tiny_config(iterations=2)
        lockstep_payloads = run_lockstep_training_unit(
            config, ("random", "zeros"), ("a", "b"), spawn_seeds(21, 2)
        )
        # Fresh (identical) children: resolving a trajectory's seed spawns
        # from it, so each unit must receive its own copy — exactly what
        # the spec layer hands the executors.
        labelled = [
            run_labelled_training_unit(config, method, label, seed)
            for method, label, seed in zip(
                ("random", "zeros"), ("a", "b"), spawn_seeds(21, 2)
            )
        ]
        for lock, ref in zip(lockstep_payloads, labelled):
            assert lock == ref
