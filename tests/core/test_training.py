"""Unit tests for the training engine."""

import numpy as np
import pytest

from repro.core.training import Trainer, TrainingConfig, train, train_all_methods
from repro.initializers import Zeros


def _tiny_config(**overrides):
    defaults = dict(num_qubits=3, num_layers=2, iterations=5)
    defaults.update(overrides)
    return TrainingConfig(**defaults)


class TestConfig:
    def test_paper_defaults(self):
        config = TrainingConfig()
        assert config.num_qubits == 10
        assert config.num_layers == 5
        assert config.iterations == 50
        assert config.learning_rate == pytest.approx(0.1)
        assert config.optimizer == "gradient_descent"
        assert config.cost_kind == "global"

    def test_paper_parameter_count(self):
        trainer = Trainer(TrainingConfig())
        assert trainer.num_parameters == 100

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_qubits": 0},
            {"num_layers": 0},
            {"iterations": 0},
            {"learning_rate": 0.0},
            {"learning_rate": -0.5},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            _tiny_config(**kwargs)

    def test_build_optimizer_kwargs(self):
        config = _tiny_config(optimizer="adam", optimizer_kwargs={"beta1": 0.8})
        optimizer = config.build_optimizer()
        assert optimizer.beta1 == pytest.approx(0.8)
        assert optimizer.learning_rate == pytest.approx(0.1)


class TestTrainer:
    def test_history_lengths(self):
        history = Trainer(_tiny_config()).run("xavier_normal", seed=0)
        assert len(history.losses) == 6  # initial + 5 iterations
        assert len(history.gradient_norms) == 6
        assert history.num_iterations == 5

    def test_zeros_init_starts_and_stays_at_zero_loss(self):
        history = Trainer(_tiny_config()).run(Zeros(), seed=0)
        assert history.initial_loss == pytest.approx(0.0, abs=1e-12)
        assert history.final_loss == pytest.approx(0.0, abs=1e-12)

    def test_training_reduces_loss(self):
        config = _tiny_config(iterations=30)
        history = Trainer(config).run("xavier_normal", seed=1)
        assert history.final_loss < history.initial_loss

    def test_reproducible(self):
        config = _tiny_config()
        a = Trainer(config).run("he_normal", seed=5)
        b = Trainer(config).run("he_normal", seed=5)
        assert np.allclose(a.losses, b.losses)
        assert np.allclose(a.final_params, b.final_params)

    def test_method_name_recorded(self):
        history = Trainer(_tiny_config()).run("lecun_normal", seed=0)
        assert history.method == "lecun_normal"
        assert history.optimizer == "gradient_descent"

    def test_initializer_instance_accepted(self):
        history = Trainer(_tiny_config()).run(Zeros(), seed=0)
        assert history.method == "zeros"

    def test_callback_invoked(self):
        calls = []
        Trainer(_tiny_config(iterations=3)).run(
            "xavier_normal",
            seed=0,
            callback=lambda it, loss, params: calls.append(it),
        )
        assert calls == [0, 1, 2, 3]

    def test_initial_params_override(self):
        trainer = Trainer(_tiny_config())
        explicit = np.zeros(trainer.num_parameters)
        history = trainer.run("random", seed=0, initial_params=explicit)
        assert history.initial_loss == pytest.approx(0.0, abs=1e-12)
        assert np.allclose(history.initial_params, explicit)

    def test_initial_params_wrong_shape(self):
        trainer = Trainer(_tiny_config())
        with pytest.raises(ValueError):
            trainer.run("random", initial_params=np.zeros(3))

    def test_adam_optimizer(self):
        config = _tiny_config(optimizer="adam", iterations=20)
        history = Trainer(config).run("xavier_normal", seed=2)
        assert history.optimizer == "adam"
        assert history.final_loss < history.initial_loss

    def test_gradient_engine_parameter_shift(self):
        config = _tiny_config(gradient_engine="parameter_shift", iterations=3)
        ps = Trainer(config).run("xavier_normal", seed=7)
        adj = Trainer(_tiny_config(iterations=3)).run("xavier_normal", seed=7)
        assert np.allclose(ps.losses, adj.losses, atol=1e-9)

    def test_local_cost_training(self):
        config = _tiny_config(cost_kind="local", iterations=10)
        history = Trainer(config).run("xavier_normal", seed=3)
        assert history.cost_kind == "local"
        assert history.final_loss < history.initial_loss


class TestConvenienceWrappers:
    def test_train(self):
        history = train(_tiny_config(), method="he_normal", seed=0)
        assert history.method == "he_normal"

    def test_train_all_methods(self):
        histories = train_all_methods(
            _tiny_config(), methods=("random", "zeros"), seed=0
        )
        assert set(histories) == {"random", "zeros"}

    def test_train_all_methods_reproducible(self):
        a = train_all_methods(_tiny_config(), methods=("random",), seed=9)
        b = train_all_methods(_tiny_config(), methods=("random",), seed=9)
        assert np.allclose(a["random"].losses, b["random"].losses)

    def test_verbose(self, capsys):
        train_all_methods(
            _tiny_config(iterations=1), methods=("zeros",), seed=0, verbose=True
        )
        assert "zeros" in capsys.readouterr().out
