"""Unit tests for the cost functions."""

import numpy as np
import pytest

from repro.backend import PauliString, QuantumCircuit
from repro.core.cost import (
    ObservableCost,
    global_identity_cost,
    local_identity_cost,
    make_cost,
)


def _hea(num_qubits=3, num_layers=2):
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_layers):
        for q in range(num_qubits):
            circuit.rx(q)
            circuit.ry(q)
        for q in range(num_qubits - 1):
            circuit.cz(q, q + 1)
    return circuit


class TestGlobalCost:
    def test_identity_circuit_costs_zero(self):
        cost = global_identity_cost(_hea())
        assert cost.value(np.zeros(cost.num_parameters)) == pytest.approx(0.0)

    def test_flipped_state_costs_one(self):
        circuit = QuantumCircuit(2).rx(0).rx(1)
        cost = global_identity_cost(circuit)
        assert cost.value([np.pi, np.pi]) == pytest.approx(1.0)

    def test_cost_in_unit_interval(self):
        circuit = _hea()
        cost = global_identity_cost(circuit)
        rng = np.random.default_rng(0)
        for _ in range(10):
            value = cost.value(rng.uniform(0, 2 * np.pi, cost.num_parameters))
            assert 0.0 <= value <= 1.0

    def test_single_qubit_analytic(self):
        """C(theta) = 1 - cos^2(theta/2) = sin^2(theta/2) for RX|0>."""
        circuit = QuantumCircuit(1).rx(0)
        cost = global_identity_cost(circuit)
        for theta in (0.0, 0.4, np.pi / 2, np.pi):
            assert cost.value([theta]) == pytest.approx(np.sin(theta / 2) ** 2)

    def test_gradient_sign(self):
        """At small positive theta, increasing theta increases the cost."""
        circuit = QuantumCircuit(1).rx(0)
        cost = global_identity_cost(circuit)
        grad = cost.gradient([0.3])
        assert grad[0] == pytest.approx(np.sin(0.3) / 2.0)

    def test_gradient_matches_numeric(self):
        circuit = _hea()
        cost = global_identity_cost(circuit)
        rng = np.random.default_rng(1)
        params = rng.uniform(0, 2 * np.pi, cost.num_parameters)
        grad = cost.gradient(params)
        eps = 1e-6
        for k in (0, 5, cost.num_parameters - 1):
            shifted = params.copy()
            shifted[k] += eps
            plus = cost.value(shifted)
            shifted[k] -= 2 * eps
            minus = cost.value(shifted)
            assert grad[k] == pytest.approx((plus - minus) / (2 * eps), abs=1e-5)


class TestLocalCost:
    def test_identity_circuit_costs_zero(self):
        cost = local_identity_cost(_hea())
        assert cost.value(np.zeros(cost.num_parameters)) == pytest.approx(0.0)

    def test_single_flip_costs_one_over_n(self):
        circuit = QuantumCircuit(4).rx(0).rx(1, value=0.0).rx(2, value=0.0).rx(3, value=0.0)
        cost = local_identity_cost(circuit)
        assert cost.value([np.pi]) == pytest.approx(0.25)

    def test_all_flipped_costs_one(self):
        circuit = QuantumCircuit(3).rx(0).rx(1).rx(2)
        cost = local_identity_cost(circuit)
        assert cost.value([np.pi] * 3) == pytest.approx(1.0)

    def test_local_leq_global_signal(self):
        """On |1...1> both costs are 1; on single flips local is milder."""
        circuit = QuantumCircuit(3).rx(0).rx(1, value=0.0).rx(2, value=0.0)
        local = local_identity_cost(circuit).value([np.pi])
        from repro.core.cost import global_identity_cost as gic

        global_ = gic(circuit).value([np.pi])
        assert local == pytest.approx(1.0 / 3.0)
        assert global_ == pytest.approx(1.0)


class TestObservableCost:
    def test_affine_transform(self):
        circuit = QuantumCircuit(1).h(0)
        obs = PauliString(1, "X")
        cost = ObservableCost(circuit, obs, offset=2.0, scale=3.0)
        # <X> on |+> is 1 -> cost = 2 + 3.
        assert cost.value(None) == pytest.approx(5.0)

    def test_callable(self):
        circuit = QuantumCircuit(1).ry(0)
        cost = global_identity_cost(circuit)
        assert cost([0.5]) == pytest.approx(cost.value([0.5]))

    def test_value_and_gradient(self):
        circuit = QuantumCircuit(1).ry(0)
        cost = global_identity_cost(circuit)
        value, grad = cost.value_and_gradient([0.7])
        assert value == pytest.approx(cost.value([0.7]))
        assert np.allclose(grad, cost.gradient([0.7]))

    def test_gradient_subset(self):
        circuit = _hea(2, 1)
        cost = global_identity_cost(circuit)
        params = np.linspace(0.1, 0.8, cost.num_parameters)
        full = cost.gradient(params)
        subset = cost.gradient(params, param_indices=[2, 0])
        assert np.allclose(subset, full[[2, 0]])

    def test_qubit_mismatch_rejected(self):
        circuit = QuantumCircuit(2).h(0)
        with pytest.raises(ValueError):
            ObservableCost(circuit, PauliString(3, "ZZZ"))

    def test_gradient_engine_selection(self):
        circuit = _hea(2, 1)
        params = np.linspace(0.2, 1.0, circuit.num_parameters)
        values = {}
        for engine in ("adjoint", "parameter_shift", "finite_difference"):
            cost = global_identity_cost(circuit, gradient_engine=engine)
            values[engine] = cost.gradient(params)
        assert np.allclose(values["adjoint"], values["parameter_shift"], atol=1e-10)
        assert np.allclose(values["adjoint"], values["finite_difference"], atol=1e-5)


class TestMakeCost:
    def test_builders(self):
        circuit = _hea(2, 1)
        assert make_cost("global", circuit).offset == pytest.approx(1.0)
        assert make_cost("local", circuit).offset == pytest.approx(0.5)

    def test_case_insensitive(self):
        circuit = _hea(2, 1)
        assert make_cost("GLOBAL", circuit).scale == pytest.approx(-1.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_cost("medium", _hea(2, 1))
