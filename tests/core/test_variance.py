"""Unit tests for the variance-analysis engine."""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.variance import VarianceAnalysis, VarianceConfig


def _tiny_config(**overrides):
    defaults = dict(
        qubit_counts=(2, 3),
        num_circuits=8,
        num_layers=4,
        methods=("random", "xavier_normal"),
    )
    defaults.update(overrides)
    return VarianceConfig(**defaults)


class TestConfig:
    def test_paper_defaults(self):
        config = VarianceConfig()
        assert tuple(config.qubit_counts) == (2, 4, 6, 8, 10)
        assert config.num_circuits == 200
        # The paper leaves depth unstated; 30 is the documented default
        # (see the VarianceConfig docstring and EXPERIMENTS.md).
        assert config.num_layers == 30
        assert "random" in config.methods
        assert "orthogonal" in config.methods

    def test_rejects_empty_qubits(self):
        with pytest.raises(ValueError):
            VarianceConfig(qubit_counts=())

    def test_rejects_zero_circuits(self):
        with pytest.raises(ValueError):
            VarianceConfig(num_circuits=0)

    def test_rejects_empty_methods(self):
        with pytest.raises(ValueError):
            VarianceConfig(methods=())

    def test_build_initializers(self):
        config = _tiny_config(
            methods=("orthogonal",), method_kwargs={"orthogonal": {"gain": 2.0}}
        )
        inits = config.build_initializers()
        assert inits["orthogonal"].gain == pytest.approx(2.0)


class TestRun:
    def test_result_grid_complete(self):
        result = VarianceAnalysis(_tiny_config()).run(seed=0)
        assert result.qubit_counts == [2, 3]
        assert result.methods == ["random", "xavier_normal"]
        for q in (2, 3):
            for method in ("random", "xavier_normal"):
                samples = result.samples[(q, method)]
                assert samples.gradients.shape == (8,)

    def test_reproducible(self):
        config = _tiny_config()
        a = VarianceAnalysis(config).run(seed=42)
        b = VarianceAnalysis(config).run(seed=42)
        for key in a.samples:
            assert np.allclose(a.samples[key].gradients, b.samples[key].gradients)

    def test_different_seeds_differ(self):
        config = _tiny_config()
        a = VarianceAnalysis(config).run(seed=1)
        b = VarianceAnalysis(config).run(seed=2)
        assert not np.allclose(
            a.samples[(2, "random")].gradients,
            b.samples[(2, "random")].gradients,
        )

    def test_gradients_bounded(self):
        """Projector-cost gradients via parameter shift are bounded by 1."""
        result = VarianceAnalysis(_tiny_config()).run(seed=3)
        for samples in result.samples.values():
            assert np.all(np.abs(samples.gradients) <= 1.0 + 1e-12)

    def test_local_cost_variant(self):
        result = VarianceAnalysis(_tiny_config(cost_kind="local")).run(seed=4)
        assert result.variance_series("random").shape == (2,)

    def test_verbose_prints(self, capsys):
        VarianceAnalysis(_tiny_config(qubit_counts=(2,))).run(seed=0, verbose=True)
        assert "[variance] q=2" in capsys.readouterr().out

    def test_zeros_initializer_gives_degenerate_gradients(self):
        """With all-zero angles every instance gives the same gradient."""
        config = _tiny_config(methods=("zeros",), num_circuits=5)
        result = VarianceAnalysis(config).run(seed=5)
        grads = result.samples[(2, "zeros")].gradients
        # Structures differ (RX vs RY vs RZ last), but zero-angle circuits
        # are identity maps: p0 stays 1, so the parameter-shift gradient of
        # each instance is one of a few deterministic values; variance over
        # instances is small and finite.
        assert np.all(np.isfinite(grads))

    def test_variance_series_order(self):
        result = VarianceAnalysis(_tiny_config()).run(seed=6)
        series = result.variance_series("random")
        assert series[0] == result.samples[(2, "random")].variance
        assert series[1] == result.samples[(3, "random")].variance

    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_param_position_variants_run(self, position):
        config = _tiny_config(param_position=position, num_circuits=4)
        result = VarianceAnalysis(config).run(seed=7)
        assert result.variance_series("random").shape == (2,)

    def test_param_positions_probe_different_gradients(self):
        first = VarianceAnalysis(
            _tiny_config(param_position="first")
        ).run(seed=8)
        last = VarianceAnalysis(
            _tiny_config(param_position="last")
        ).run(seed=8)
        assert not np.allclose(
            first.samples[(3, "random")].gradients,
            last.samples[(3, "random")].gradients,
        )

    def test_rejects_unknown_position(self):
        with pytest.raises(ValueError):
            _tiny_config(param_position="penultimate")


class TestBatchedExecution:
    """The batched hot path is a pure throughput change: same results."""

    def test_batched_is_default(self):
        assert VarianceConfig().batched is True

    def test_batched_bit_identical_to_sequential(self):
        config = _tiny_config(
            methods=("random", "xavier_normal", "he_normal"), num_circuits=6
        )
        batched = VarianceAnalysis(replace(config, batched=True)).run(seed=42)
        sequential = VarianceAnalysis(replace(config, batched=False)).run(seed=42)
        assert set(batched.samples) == set(sequential.samples)
        for key in batched.samples:
            assert np.array_equal(
                batched.samples[key].gradients, sequential.samples[key].gradients
            ), key

    @pytest.mark.parametrize("cost_kind", ["global", "local"])
    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_bit_identity_across_configurations(self, cost_kind, position):
        config = _tiny_config(
            num_circuits=4, cost_kind=cost_kind, param_position=position
        )
        batched = VarianceAnalysis(replace(config, batched=True)).run(seed=7)
        sequential = VarianceAnalysis(replace(config, batched=False)).run(seed=7)
        for key in batched.samples:
            assert np.array_equal(
                batched.samples[key].gradients, sequential.samples[key].gradients
            )


class TestShapeFold:
    """The shape-keyed mega-batch fold: same results, bigger batches."""

    def test_shape_fold_is_default(self):
        assert VarianceConfig().fold == "shape"

    def test_rejects_unknown_fold(self):
        with pytest.raises(ValueError):
            _tiny_config(fold="circuit")

    def test_fold_scopes_bit_identical(self):
        config = _tiny_config(
            methods=("random", "xavier_normal", "he_normal"), num_circuits=6
        )
        shape = VarianceAnalysis(replace(config, fold="shape")).run(seed=42)
        structure = VarianceAnalysis(replace(config, fold="structure")).run(seed=42)
        sequential = VarianceAnalysis(replace(config, batched=False)).run(seed=42)
        assert set(shape.samples) == set(structure.samples)
        for key in shape.samples:
            assert np.array_equal(
                shape.samples[key].gradients, structure.samples[key].gradients
            ), key
            assert np.array_equal(
                shape.samples[key].gradients, sequential.samples[key].gradients
            ), key

    @pytest.mark.parametrize("cost_kind", ["global", "local"])
    @pytest.mark.parametrize("position", ["first", "middle", "last"])
    def test_fold_identity_across_configurations(self, cost_kind, position):
        config = _tiny_config(
            num_circuits=4, cost_kind=cost_kind, param_position=position
        )
        shape = VarianceAnalysis(replace(config, fold="shape")).run(seed=7)
        structure = VarianceAnalysis(replace(config, fold="structure")).run(seed=7)
        for key in shape.samples:
            assert np.array_equal(
                shape.samples[key].gradients, structure.samples[key].gradients
            )

    def test_sampled_fold_bit_identical(self):
        config = _tiny_config(num_circuits=4, shots=32)
        shape = VarianceAnalysis(replace(config, fold="shape")).run(seed=9)
        sequential = VarianceAnalysis(replace(config, batched=False)).run(seed=9)
        for key in shape.samples:
            assert np.array_equal(
                shape.samples[key].gradients, sequential.samples[key].gradients
            )


class TestPlanShapeBuckets:
    def test_groups_in_first_appearance_order(self):
        from repro.core.variance import plan_shape_buckets

        buckets = plan_shape_buckets(["a", "b", "a", "c", "b", "a"])
        assert buckets == [[0, 2, 5], [1, 4], [3]]

    def test_empty(self):
        from repro.core.variance import plan_shape_buckets

        assert plan_shape_buckets([]) == []

    def test_variance_shard_buckets_cover_grid(self):
        """A shard's structures all share one shape -> one bucket."""
        from repro.ansatz.random_pqc import RandomPQC

        keys = [RandomPQC(3, 4, seed=s).shape_key for s in range(5)]
        from repro.core.variance import plan_shape_buckets

        assert plan_shape_buckets(keys) == [[0, 1, 2, 3, 4]]


class TestShardValidation:
    def test_rejects_nonpositive_circuits_per_shard(self):
        from repro.core.variance import plan_variance_shards

        config = _tiny_config()
        for bad in (0, -3):
            with pytest.raises(ValueError, match="circuits_per_shard"):
                plan_variance_shards(config, seed=0, circuits_per_shard=bad)
