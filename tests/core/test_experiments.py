"""Unit tests for the paper-level experiment runners."""

import numpy as np
import pytest

from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
    run_full_reproduction,
    run_training_experiment,
    run_variance_experiment,
)
from repro.core.training import TrainingConfig
from repro.core.variance import VarianceConfig

_VAR_CONFIG = VarianceConfig(
    qubit_counts=(2, 3),
    num_circuits=6,
    num_layers=4,
    methods=("random", "xavier_normal"),
)
_TRAIN_CONFIG = TrainingConfig(num_qubits=3, num_layers=1, iterations=3)


class TestVarianceExperiment:
    def test_outcome_structure(self):
        outcome = run_variance_experiment(_VAR_CONFIG, seed=0)
        assert set(outcome.fits) == {"random", "xavier_normal"}
        assert set(outcome.improvements) == {"xavier_normal"}
        assert sorted(outcome.ranking) == ["random", "xavier_normal"]

    def test_no_random_baseline_no_improvements(self):
        config = VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=4,
            num_layers=3,
            methods=("xavier_normal",),
        )
        outcome = run_variance_experiment(config, seed=0)
        assert outcome.improvements == {}

    def test_round_trip(self):
        outcome = run_variance_experiment(_VAR_CONFIG, seed=1)
        restored = VarianceExperimentOutcome.from_dict(outcome.to_dict())
        assert restored.ranking == outcome.ranking
        assert restored.fits["random"].rate == pytest.approx(
            outcome.fits["random"].rate
        )


class TestTrainingExperiment:
    def test_outcome_structure(self):
        outcome = run_training_experiment(
            _TRAIN_CONFIG, methods=("random", "zeros"), seed=0
        )
        assert outcome.optimizer == "gradient_descent"
        assert set(outcome.histories) == {"random", "zeros"}

    def test_final_losses_and_ranking(self):
        outcome = run_training_experiment(
            _TRAIN_CONFIG, methods=("random", "zeros"), seed=0
        )
        finals = outcome.final_losses()
        assert finals["zeros"] == pytest.approx(0.0, abs=1e-12)
        assert outcome.ranking()[0] == "zeros"

    def test_round_trip(self):
        outcome = run_training_experiment(
            _TRAIN_CONFIG, methods=("zeros",), seed=0
        )
        restored = TrainingExperimentOutcome.from_dict(outcome.to_dict())
        assert restored.optimizer == outcome.optimizer
        assert restored.histories["zeros"].losses == outcome.histories[
            "zeros"
        ].losses


class TestFullReproduction:
    def test_structure(self):
        outcome = run_full_reproduction(
            variance_config=_VAR_CONFIG,
            training_config=_TRAIN_CONFIG,
            optimizers=("gradient_descent", "adam"),
            seed=0,
        )
        assert set(outcome.training) == {"gradient_descent", "adam"}
        assert outcome.variance.fits

    def test_reproducible(self):
        kwargs = dict(
            variance_config=_VAR_CONFIG,
            training_config=_TRAIN_CONFIG,
            optimizers=("gradient_descent",),
        )
        a = run_full_reproduction(seed=3, **kwargs)
        b = run_full_reproduction(seed=3, **kwargs)
        assert a.variance.fits["random"].rate == pytest.approx(
            b.variance.fits["random"].rate
        )
        assert np.allclose(
            a.training["gradient_descent"].histories["random"].losses,
            b.training["gradient_descent"].histories["random"].losses,
        )

    def test_round_trip(self):
        outcome = run_full_reproduction(
            variance_config=_VAR_CONFIG,
            training_config=_TRAIN_CONFIG,
            optimizers=("adam",),
            seed=1,
        )
        restored = FullReproductionOutcome.from_dict(outcome.to_dict())
        assert set(restored.training) == {"adam"}
        assert restored.variance.ranking == outcome.variance.ranking
