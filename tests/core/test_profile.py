"""Unit tests for gradient-variance profiles."""

import numpy as np
import pytest

from repro.core.profile import (
    GradientProfile,
    ProfileConfig,
    gradient_profile,
    profile_all_methods,
)


def _tiny_config(**overrides):
    defaults = dict(num_qubits=3, num_layers=2, num_samples=12)
    defaults.update(overrides)
    return ProfileConfig(**defaults)


class TestConfig:
    def test_defaults(self):
        config = ProfileConfig()
        assert config.num_qubits == 6
        assert config.cost_kind == "global"

    @pytest.mark.parametrize(
        "kwargs", [{"num_qubits": 0}, {"num_layers": 0}, {"num_samples": 0}]
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            _tiny_config(**kwargs)


class TestProfile:
    def test_shapes(self):
        profile = gradient_profile("random", _tiny_config(), seed=0)
        assert profile.per_parameter_variance.shape == (12,)  # 2*3*2
        assert profile.per_layer_variance.shape == (2,)
        assert profile.params_per_layer == 6

    def test_total_variance_consistent(self):
        profile = gradient_profile("xavier_normal", _tiny_config(), seed=1)
        assert profile.total_variance == pytest.approx(
            float(profile.per_parameter_variance.mean())
        )

    def test_reproducible(self):
        a = gradient_profile("he_normal", _tiny_config(), seed=3)
        b = gradient_profile("he_normal", _tiny_config(), seed=3)
        assert np.allclose(a.per_parameter_variance, b.per_parameter_variance)

    def test_zeros_profile_is_degenerate(self):
        profile = gradient_profile("zeros", _tiny_config(), seed=4)
        # Identical draws -> zero variance everywhere.
        assert np.allclose(profile.per_parameter_variance, 0.0)

    def test_xavier_profile_retains_more_signal_than_random(self):
        config = _tiny_config(num_qubits=5, num_layers=4, num_samples=40)
        random_profile = gradient_profile("random", config, seed=5)
        xavier_profile = gradient_profile("xavier_normal", config, seed=5)
        assert xavier_profile.total_variance > random_profile.total_variance

    def test_method_kwargs_forwarded(self):
        profile = gradient_profile(
            "constant", _tiny_config(), seed=6, value=0.0
        )
        assert np.allclose(profile.per_parameter_variance, 0.0)

    def test_round_trip(self):
        profile = gradient_profile("random", _tiny_config(), seed=7)
        restored = GradientProfile.from_dict(profile.to_dict())
        assert restored.method == "random"
        assert np.allclose(
            restored.per_parameter_variance, profile.per_parameter_variance
        )


class TestProfileAllMethods:
    def test_multiple_methods(self):
        profiles = profile_all_methods(
            ("random", "zeros"), _tiny_config(), seed=8
        )
        assert set(profiles) == {"random", "zeros"}

    def test_local_cost_variant(self):
        profile = gradient_profile(
            "random", _tiny_config(cost_kind="local"), seed=9
        )
        assert np.all(profile.per_parameter_variance >= 0.0)
