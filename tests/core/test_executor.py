"""Unit tests for the executor registry, sharding, and checkpoint/resume."""

import numpy as np
import pytest

import repro
from repro.core.executor import (
    EXECUTORS,
    BatchedExecutor,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardCheckpoint,
    WorkUnit,
    available_executors,
    get_executor,
    register_executor,
)
from repro.core.spec import ExperimentSpec
from repro.core.variance import (
    VarianceConfig,
    merge_variance_outputs,
    plan_variance_shards,
    run_variance_shard,
)

_CONFIG = VarianceConfig(
    qubit_counts=(2, 3),
    num_circuits=6,
    num_layers=4,
    methods=("random", "xavier_normal"),
)


def _double(x):
    return {"value": 2 * x}


class TestRegistry:
    def test_builtins_registered(self):
        assert available_executors() == [
            "async",
            "batched",
            "device",
            "lockstep",
            "process_pool",
            "remote",
            "serial",
        ]

    def test_get_executor_by_name(self):
        assert isinstance(get_executor("serial"), SerialExecutor)
        assert isinstance(get_executor("batched"), BatchedExecutor)
        assert isinstance(
            get_executor("process_pool", workers=2), ProcessPoolExecutor
        )

    def test_get_executor_passes_instances_through(self):
        executor = SerialExecutor()
        assert get_executor(executor) is executor

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown executor"):
            get_executor("quantum_annealer")

    def test_custom_registration(self):
        @register_executor
        class EchoExecutor(SerialExecutor):
            name = "echo-test"

        try:
            assert isinstance(get_executor("echo-test"), EchoExecutor)
        finally:
            del EXECUTORS["echo-test"]

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            SerialExecutor(workers=0)

    def test_variance_batched_policy(self):
        assert SerialExecutor.variance_batched is False
        assert BatchedExecutor.variance_batched is True
        assert ProcessPoolExecutor.variance_batched is None


class TestMapUnits:
    def test_outputs_in_unit_order(self):
        units = [WorkUnit(f"u{i}", _double, (i,)) for i in range(5)]
        outputs = SerialExecutor().map_units(units)
        assert [o["value"] for o in outputs] == [0, 2, 4, 6, 8]

    def test_duplicate_ids_rejected(self):
        units = [WorkUnit("same", _double, (1,)), WorkUnit("same", _double, (2,))]
        with pytest.raises(ValueError, match="unique"):
            SerialExecutor().map_units(units)

    def test_checkpoints_written_and_reused(self, tmp_path):
        calls = []

        def tracked(x):
            calls.append(x)
            return {"value": x}

        units = [WorkUnit(f"u{i}", tracked, (i,)) for i in range(3)]
        first = SerialExecutor(checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert calls == [0, 1, 2]
        assert len(list(tmp_path.glob("shard-*.json"))) == 3
        second = SerialExecutor(checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert calls == [0, 1, 2]  # nothing re-executed
        assert second == first

    def test_mismatched_fingerprint_ignores_checkpoints(self, tmp_path):
        calls = []

        def tracked(x):
            calls.append(x)
            return {"value": x}

        units = [WorkUnit("u0", tracked, (7,))]
        SerialExecutor(checkpoint_dir=tmp_path).map_units(units, fingerprint="a")
        SerialExecutor(checkpoint_dir=tmp_path).map_units(units, fingerprint="b")
        assert calls == [7, 7]

    def test_corrupt_checkpoint_is_recomputed(self, tmp_path):
        units = [WorkUnit("u0", _double, (3,))]
        executor = SerialExecutor(checkpoint_dir=tmp_path)
        executor.map_units(units, fingerprint="fp")
        (path,) = tmp_path.glob("shard-*.json")
        path.write_text("{ truncated")
        outputs = SerialExecutor(checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert outputs == [{"value": 6}]

    def test_resume_after_failure(self, tmp_path):
        """A run killed mid-grid restarts from completed shards only."""
        calls = []

        def flaky(x):
            calls.append(x)
            if x == 1:
                raise RuntimeError("killed")
            return {"value": x}

        units = [WorkUnit(f"u{i}", flaky, (i,)) for i in range(3)]
        with pytest.raises(RuntimeError):
            SerialExecutor(checkpoint_dir=tmp_path).map_units(
                units, fingerprint="fp"
            )
        assert calls == [0, 1]

        resumed_calls = []

        def steady(x):
            resumed_calls.append(x)
            return {"value": x}

        units = [WorkUnit(f"u{i}", steady, (i,)) for i in range(3)]
        outputs = SerialExecutor(checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert resumed_calls == [1, 2]  # unit 0 came from its checkpoint
        assert [o["value"] for o in outputs] == [0, 1, 2]


class TestShardCheckpoint:
    def test_round_trip(self, tmp_path):
        from repro.io import load_result, save_result

        checkpoint = ShardCheckpoint(
            unit_id="variance-q4-c00010",
            fingerprint="abc",
            data={"gradients": {"random": [0.1, 0.2]}},
        )
        restored = load_result(save_result(checkpoint, tmp_path / "c.json"))
        assert restored == checkpoint


class TestVarianceSharding:
    def test_plan_one_shard_per_qubit_count_by_default(self):
        shards = plan_variance_shards(_CONFIG, seed=0)
        assert [(s.num_qubits, s.start) for s in shards] == [(2, 0), (3, 0)]
        assert all(s.num_circuits == 6 for s in shards)

    def test_plan_subdivides_rows(self):
        shards = plan_variance_shards(_CONFIG, seed=0, circuits_per_shard=4)
        assert [(s.num_qubits, s.start, s.num_circuits) for s in shards] == [
            (2, 0, 4),
            (2, 4, 2),
            (3, 0, 4),
            (3, 4, 2),
        ]

    def test_shard_granularity_does_not_change_results(self):
        coarse = plan_variance_shards(_CONFIG, seed=9)
        fine = plan_variance_shards(_CONFIG, seed=9, circuits_per_shard=2)
        merged_coarse = merge_variance_outputs(
            _CONFIG, [run_variance_shard(_CONFIG, s) for s in coarse]
        )
        # Execute fine shards deliberately out of order.
        merged_fine = merge_variance_outputs(
            _CONFIG, [run_variance_shard(_CONFIG, s) for s in reversed(fine)]
        )
        for key in merged_coarse.samples:
            assert np.array_equal(
                merged_coarse.samples[key].gradients,
                merged_fine.samples[key].gradients,
            ), key

    def test_merge_rejects_incomplete_rows(self):
        shards = plan_variance_shards(_CONFIG, seed=0, circuits_per_shard=4)
        outputs = [run_variance_shard(_CONFIG, shards[0])]
        with pytest.raises(ValueError, match="incomplete"):
            merge_variance_outputs(_CONFIG, outputs)


class TestExecutorAgreement:
    def test_serial_and_batched_bit_identical(self):
        serial = repro.run(
            ExperimentSpec(kind="variance", config=_CONFIG, seed=11, executor="serial")
        )
        batched = repro.run(
            ExperimentSpec(kind="variance", config=_CONFIG, seed=11, executor="batched")
        )
        for key in serial.result.samples:
            assert np.array_equal(
                serial.result.samples[key].gradients,
                batched.result.samples[key].gradients,
            ), key

    @pytest.mark.slow
    def test_process_pool_bit_identical_to_serial(self):
        serial = repro.run(
            ExperimentSpec(kind="variance", config=_CONFIG, seed=11, executor="serial")
        )
        pooled = repro.run(
            ExperimentSpec(
                kind="variance",
                config=_CONFIG,
                seed=11,
                executor="process_pool",
                workers=2,
            )
        )
        for key in serial.result.samples:
            assert np.array_equal(
                serial.result.samples[key].gradients,
                pooled.result.samples[key].gradients,
            ), key

    @pytest.mark.slow
    def test_process_pool_training_bit_identical(self):
        from repro.core.training import TrainingConfig

        config = TrainingConfig(num_qubits=2, num_layers=1, iterations=2)
        spec = dict(kind="training", config=config, seed=0, methods=("random", "zeros"))
        serial = repro.run(ExperimentSpec(executor="serial", **spec))
        pooled = repro.run(
            ExperimentSpec(executor="process_pool", workers=2, **spec)
        )
        for method in ("random", "zeros"):
            assert (
                serial.histories[method].losses == pooled.histories[method].losses
            )


class TestVarianceResume:
    def test_resume_after_one_shard(self, tmp_path, monkeypatch):
        """Kill the grid after one shard; the restart recomputes the rest."""
        import repro.core.variance as vmod

        direct = repro.run(ExperimentSpec(kind="variance", config=_CONFIG, seed=5))

        original = vmod.run_variance_shard
        calls = []

        def flaky(config, shard, **kwargs):
            calls.append(shard.unit_id)
            if len(calls) == 2:
                raise RuntimeError("killed")
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", flaky)
        with pytest.raises(RuntimeError):
            repro.run(
                ExperimentSpec(
                    kind="variance",
                    config=_CONFIG,
                    seed=5,
                    checkpoint_dir=tmp_path,
                )
            )
        assert len(list(tmp_path.glob("shard-*.json"))) == 1

        resumed_calls = []

        def counting(config, shard, **kwargs):
            resumed_calls.append(shard.unit_id)
            return original(config, shard, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", counting)
        resumed = repro.run(
            ExperimentSpec(
                kind="variance", config=_CONFIG, seed=5, checkpoint_dir=tmp_path
            )
        )
        assert len(resumed_calls) == 1  # only the missing shard re-ran
        for key in direct.result.samples:
            assert np.array_equal(
                direct.result.samples[key].gradients,
                resumed.result.samples[key].gradients,
            ), key

    def test_plan_change_invalidates_checkpoints(self, tmp_path):
        """Resuming under a different shard granularity recomputes cleanly.

        Old checkpoints cover different circuit ranges; they must be
        ignored (fingerprint mismatch), not mis-merged into an
        'incomplete grid row' failure.
        """
        base = dict(kind="variance", config=_CONFIG, seed=5, checkpoint_dir=tmp_path)
        coarse = repro.run(ExperimentSpec(circuits_per_shard=2, **base))
        fine = repro.run(ExperimentSpec(circuits_per_shard=3, **base))
        for key in coarse.result.samples:
            assert np.array_equal(
                coarse.result.samples[key].gradients,
                fine.result.samples[key].gradients,
            ), key

    def test_fingerprint_ties_checkpoints_to_seed_and_config(self):
        from dataclasses import replace

        from repro.core.spec import _fingerprint

        spec_a = ExperimentSpec(kind="variance", config=_CONFIG, seed=3)
        spec_b = ExperimentSpec(kind="variance", config=_CONFIG, seed=3)
        spec_c = ExperimentSpec(kind="variance", config=_CONFIG, seed=4)
        assert _fingerprint("variance", _CONFIG, spec_a) == _fingerprint(
            "variance", _CONFIG, spec_b
        )
        assert _fingerprint("variance", _CONFIG, spec_a) != _fingerprint(
            "variance", _CONFIG, spec_c
        )
        other_config = replace(_CONFIG, num_layers=_CONFIG.num_layers + 1)
        assert _fingerprint("variance", _CONFIG, spec_a) != _fingerprint(
            "variance", other_config, spec_a
        )


class TestCheckpointWarnings:
    """Corrupt checkpoints must warn and recompute, never crash a resume."""

    def _run_once(self, tmp_path):
        units = [WorkUnit("u0", _double, (3,))]
        SerialExecutor(checkpoint_dir=tmp_path).map_units(units, fingerprint="fp")
        return units

    def test_truncated_json_warns(self, tmp_path):
        units = self._run_once(tmp_path)
        (path,) = tmp_path.glob("shard-*.json")
        path.write_text("{ truncated")
        with pytest.warns(RuntimeWarning, match="unreadable checkpoint"):
            outputs = SerialExecutor(checkpoint_dir=tmp_path).map_units(
                units, fingerprint="fp"
            )
        assert outputs == [{"value": 6}]

    def test_valid_envelope_missing_fields_warns(self, tmp_path):
        """A well-formed file whose data lost its keys is also skipped."""
        import json

        units = self._run_once(tmp_path)
        (path,) = tmp_path.glob("shard-*.json")
        path.write_text(
            json.dumps({"type": "ShardCheckpoint", "schema_version": 2, "data": {}})
        )
        with pytest.warns(RuntimeWarning, match="unreadable checkpoint"):
            outputs = SerialExecutor(checkpoint_dir=tmp_path).map_units(
                units, fingerprint="fp"
            )
        assert outputs == [{"value": 6}]

    def test_intact_checkpoints_do_not_warn(self, tmp_path, recwarn):
        units = self._run_once(tmp_path)
        SerialExecutor(checkpoint_dir=tmp_path).map_units(units, fingerprint="fp")
        assert not [w for w in recwarn if w.category is RuntimeWarning]


class TestAsyncExecutor:
    def test_registered_with_policy(self):
        from repro.core.executor import AsyncExecutor

        executor = get_executor("async", workers=1)
        assert isinstance(executor, AsyncExecutor)
        assert AsyncExecutor.variance_batched is None

    def test_zero_workers_means_cpu_count(self):
        import os

        from repro.core.executor import AsyncExecutor

        assert AsyncExecutor(workers=0).workers == (os.cpu_count() or 1)

    def test_map_units_matches_serial(self):
        units = [WorkUnit(f"u{i}", _double, (i,)) for i in range(5)]
        outputs = get_executor("async", workers=1).map_units(units)
        assert outputs == SerialExecutor().map_units(
            [WorkUnit(f"u{i}", _double, (i,)) for i in range(5)]
        )

    def test_variance_bit_identical_to_serial(self):
        serial = repro.run(
            ExperimentSpec(kind="variance", config=_CONFIG, seed=11, executor="serial")
        )
        streamed = repro.run(
            ExperimentSpec(
                kind="variance", config=_CONFIG, seed=11, executor="async", workers=1
            )
        )
        for key in serial.result.samples:
            assert np.array_equal(
                serial.result.samples[key].gradients,
                streamed.result.samples[key].gradients,
            ), key

    @pytest.mark.slow
    def test_multiprocess_variance_bit_identical_to_serial(self):
        serial = repro.run(
            ExperimentSpec(kind="variance", config=_CONFIG, seed=11, executor="serial")
        )
        streamed = repro.run(
            ExperimentSpec(
                kind="variance", config=_CONFIG, seed=11, executor="async", workers=2
            )
        )
        for key in serial.result.samples:
            assert np.array_equal(
                serial.result.samples[key].gradients,
                streamed.result.samples[key].gradients,
            ), key

    def test_streams_results_before_completion(self):
        """Each completion surfaces before later units even execute."""
        calls = []

        def tracked(x):
            calls.append(x)
            return {"value": x}

        units = [WorkUnit(f"u{i}", tracked, (i,)) for i in range(3)]
        stream = get_executor("async", workers=1).stream_units(units)
        unit, output = next(stream)
        assert output == {"value": 0}
        assert calls == [0]  # units 1 and 2 have not run yet
        rest = list(stream)
        assert calls == [0, 1, 2]
        assert [o["value"] for _, o in rest] == [1, 2]

    def test_on_result_fires_per_completion(self):
        events = []
        units = [WorkUnit(f"u{i}", _double, (i,)) for i in range(4)]
        outputs = get_executor("async", workers=1).map_units(
            units, on_result=lambda unit, output: events.append(unit.unit_id)
        )
        assert events == [f"u{i}" for i in range(4)]
        assert [o["value"] for o in outputs] == [0, 2, 4, 6]

    def test_checkpoint_resume(self, tmp_path):
        calls = []

        def tracked(x):
            calls.append(x)
            return {"value": x}

        units = [WorkUnit(f"u{i}", tracked, (i,)) for i in range(3)]
        first = get_executor("async", workers=1, checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert calls == [0, 1, 2]
        second = get_executor("async", workers=1, checkpoint_dir=tmp_path).map_units(
            units, fingerprint="fp"
        )
        assert calls == [0, 1, 2]  # nothing re-executed
        assert second == first

    def test_amap_units_native_async(self):
        import asyncio

        events = []
        units = [WorkUnit(f"u{i}", _double, (i,)) for i in range(3)]

        async def drive():
            executor = get_executor("async", workers=1)
            return await executor.amap_units(
                units, on_result=lambda unit, output: events.append(unit.unit_id)
            )

        outputs = asyncio.run(drive())
        assert [o["value"] for o in outputs] == [0, 2, 4]
        assert sorted(events) == ["u0", "u1", "u2"]
