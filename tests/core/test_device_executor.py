"""Tests for the ``device`` executor and backend-as-configuration.

The array namespace is *configuration*, not scheduling: the ``device``
executor reuses the lock-step scheduling (batched variance, lock-step
training) while the namespace rides in on ``config.backend`` /
``ExperimentSpec.backend``.  Contracts under test:

* registration and routing (``resolved_executor`` sends non-numpy
  backends to ``device``);
* spec serialization round-trips the backend, and fingerprints drop the
  default ``backend="numpy"`` so pre-backend checkpoints stay resumable;
* a missing optional namespace fails eagerly with an actionable error;
* ``backend="numpy"`` runs are bit-identical to default runs, and
  loopback runs match across executors to device tolerance.
"""

import importlib.util

import numpy as np
import pytest

from repro.core.executor import (
    DeviceExecutor,
    LockstepExecutor,
    available_executors,
    get_executor,
)
from repro.core.spec import ExperimentSpec, _fingerprint, run
from repro.core.training import TrainingConfig
from repro.core.variance import VarianceConfig

_VAR_CONFIG = VarianceConfig(
    qubit_counts=(2, 3),
    num_circuits=4,
    num_layers=3,
    methods=("random", "xavier_normal"),
)
_TRAIN_CONFIG = TrainingConfig(num_qubits=2, num_layers=1, iterations=3)


class TestRegistration:
    def test_registered(self):
        assert "device" in available_executors()
        executor = get_executor("device")
        assert isinstance(executor, DeviceExecutor)
        assert isinstance(executor, LockstepExecutor)
        assert executor.name == "device"

    def test_inherits_lockstep_scheduling(self):
        executor = get_executor("device")
        assert executor.variance_batched is True
        assert executor.training_lockstep is True


class TestSpecBackendField:
    def test_default_is_numpy(self):
        spec = ExperimentSpec(kind="variance")
        assert spec.backend == "numpy"
        assert spec._resolved_backend() == "numpy"

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="backend"):
            ExperimentSpec(kind="variance", backend="")

    def test_round_trip(self):
        spec = ExperimentSpec(kind="variance", backend="loopback")
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.backend == "loopback"

    def test_from_dict_tolerates_missing_backend(self):
        # Pre-backend spec JSON has no "backend" key.
        spec = ExperimentSpec.from_dict({"kind": "variance"})
        assert spec.backend == "numpy"

    def test_config_backend_round_trips(self):
        config = VarianceConfig(
            qubit_counts=(2,),
            num_circuits=2,
            num_layers=2,
            backend="loopback",
        )
        spec = ExperimentSpec(kind="variance", config=config)
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored.config.backend == "loopback"

    @pytest.mark.parametrize("config_cls", [VarianceConfig, TrainingConfig])
    def test_configs_reject_empty_backend(self, config_cls):
        kwargs = (
            dict(qubit_counts=(2,), num_circuits=2, num_layers=2)
            if config_cls is VarianceConfig
            else dict(num_qubits=2, num_layers=1, iterations=1)
        )
        with pytest.raises(ValueError, match="backend"):
            config_cls(backend="", **kwargs)


class TestResolvedExecutor:
    def test_numpy_keeps_default_routing(self):
        spec = ExperimentSpec(kind="variance", config=_VAR_CONFIG)
        assert spec.resolved_executor() == "batched"

    def test_spec_backend_routes_to_device(self):
        spec = ExperimentSpec(
            kind="variance", config=_VAR_CONFIG, backend="loopback"
        )
        assert spec.resolved_executor() == "device"

    def test_config_backend_routes_to_device(self):
        config = VarianceConfig(
            qubit_counts=(2,),
            num_circuits=2,
            num_layers=2,
            backend="loopback",
        )
        spec = ExperimentSpec(kind="variance", config=config)
        assert spec.resolved_executor() == "device"

    def test_explicit_executor_wins(self):
        spec = ExperimentSpec(
            kind="variance",
            config=_VAR_CONFIG,
            backend="loopback",
            executor="serial",
        )
        assert spec.resolved_executor() == "serial"

    def test_training_backend_routes_to_device(self):
        spec = ExperimentSpec(
            kind="training", config=_TRAIN_CONFIG, backend="loopback"
        )
        assert spec.resolved_executor() == "device"


class TestFingerprintCompatibility:
    def test_numpy_backend_keeps_historical_fingerprint(self):
        # A config stamped backend="numpy" must fingerprint exactly like
        # one from before the field existed, so existing checkpoint trees
        # resume unchanged.  The "legacy" config is a synthetic dataclass
        # carrying the same fields and values minus ``backend``.
        import dataclasses

        fields = [
            (field.name, field.type)
            for field in dataclasses.fields(_VAR_CONFIG)
            if field.name != "backend"
        ]
        Legacy = dataclasses.make_dataclass("Legacy", fields)
        legacy_config = Legacy(
            **{
                field.name: getattr(_VAR_CONFIG, field.name)
                for field in dataclasses.fields(_VAR_CONFIG)
                if field.name != "backend"
            }
        )
        spec = ExperimentSpec(kind="variance", seed=3)
        assert _fingerprint("variance", legacy_config, spec) == _fingerprint(
            "variance", _VAR_CONFIG, spec
        )

    def test_non_numpy_backend_changes_fingerprint(self):
        import dataclasses

        spec = ExperimentSpec(kind="variance", seed=3)
        loopback_config = dataclasses.replace(_VAR_CONFIG, backend="loopback")
        assert _fingerprint("variance", _VAR_CONFIG, spec) != _fingerprint(
            "variance", loopback_config, spec
        )


class TestMissingNamespaceFailsEagerly:
    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_actionable_error_before_any_work(self, name):
        if importlib.util.find_spec(name) is not None:
            pytest.skip(f"{name} installed; eager-resolution error not reachable")
        spec = ExperimentSpec(
            kind="variance", config=_VAR_CONFIG, seed=0, backend=name
        )
        with pytest.raises(ImportError, match=f"pip install {name}"):
            run(spec)

    def test_unknown_backend_is_a_value_error(self):
        spec = ExperimentSpec(
            kind="variance", config=_VAR_CONFIG, seed=0, backend="jax"
        )
        with pytest.raises(ValueError, match="unknown array backend"):
            run(spec)


class TestEndToEndIdentity:
    def test_numpy_backend_bit_identical_to_default(self):
        default = run(ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=0))
        explicit = run(
            ExperimentSpec(
                kind="variance", config=_VAR_CONFIG, seed=0, backend="numpy"
            )
        )
        for key in default.result.samples:
            assert np.array_equal(
                default.result.samples[key].gradients,
                explicit.result.samples[key].gradients,
            ), key

    def test_loopback_variance_matches_reference(self):
        reference = run(
            ExperimentSpec(kind="variance", config=_VAR_CONFIG, seed=0)
        )
        loopback = run(
            ExperimentSpec(
                kind="variance", config=_VAR_CONFIG, seed=0, backend="loopback"
            )
        )
        for key in reference.result.samples:
            np.testing.assert_allclose(
                loopback.result.samples[key].gradients,
                reference.result.samples[key].gradients,
                rtol=1e-10,
                atol=1e-12,
            )

    def test_loopback_identical_across_executors(self):
        runs = {
            executor: run(
                ExperimentSpec(
                    kind="variance",
                    config=_VAR_CONFIG,
                    seed=1,
                    backend="loopback",
                    executor=executor,
                )
            )
            for executor in ("device", "serial", "batched")
        }
        baseline = runs["device"]
        for executor, outcome in runs.items():
            for key in baseline.result.samples:
                np.testing.assert_allclose(
                    outcome.result.samples[key].gradients,
                    baseline.result.samples[key].gradients,
                    rtol=1e-10,
                    atol=1e-12,
                    err_msg=f"{executor}:{key}",
                )

    def test_loopback_training_matches_reference(self):
        methods = ("random", "zeros")
        reference = run(
            ExperimentSpec(
                kind="training", config=_TRAIN_CONFIG, seed=0, methods=methods
            )
        )
        loopback = run(
            ExperimentSpec(
                kind="training",
                config=_TRAIN_CONFIG,
                seed=0,
                methods=methods,
                backend="loopback",
            )
        )
        for method in methods:
            np.testing.assert_allclose(
                loopback.histories[method].losses,
                reference.histories[method].losses,
                rtol=1e-9,
                atol=1e-11,
            )

    def test_checkpoint_resume_with_numpy_backend(self, tmp_path):
        # A default-backend checkpoint tree resumes under an explicit
        # backend="numpy" spec (fingerprints agree) with identical results.
        plain = ExperimentSpec(
            kind="variance",
            config=_VAR_CONFIG,
            seed=2,
            checkpoint_dir=tmp_path,
        )
        first = run(plain)
        stamped = ExperimentSpec(
            kind="variance",
            config=_VAR_CONFIG,
            seed=2,
            checkpoint_dir=tmp_path,
            backend="numpy",
        )
        resumed = run(stamped)
        for key in first.result.samples:
            assert np.array_equal(
                first.result.samples[key].gradients,
                resumed.result.samples[key].gradients,
            ), key
