"""Unit tests for decay-rate fitting and the improvement table."""

import numpy as np
import pytest

from repro.core.decay import (
    fit_all_methods,
    fit_decay_rate,
    improvement_over_random,
    rank_methods,
)
from repro.core.results import DecayFit, GradientSamples, VarianceResult


class TestFitDecayRate:
    def test_exact_exponential_recovered(self):
        qubits = [2, 4, 6, 8, 10]
        rate, intercept = 0.8, -1.0
        variances = np.exp(intercept - rate * np.asarray(qubits, dtype=float))
        fit = fit_decay_rate(qubits, variances, method="test")
        assert fit.rate == pytest.approx(rate)
        assert fit.intercept == pytest.approx(intercept)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.method == "test"

    def test_two_design_slope_recovered(self):
        """Var = 4^-q must fit rate = 2 ln 2."""
        qubits = np.array([2, 4, 6, 8])
        fit = fit_decay_rate(qubits, 4.0 ** (-qubits.astype(float)))
        assert fit.rate == pytest.approx(2 * np.log(2))

    def test_flat_variance_zero_rate(self):
        fit = fit_decay_rate([2, 4, 6], [0.1, 0.1, 0.1])
        assert fit.rate == pytest.approx(0.0)

    def test_growing_variance_negative_rate(self):
        fit = fit_decay_rate([2, 4], [0.1, 0.2])
        assert fit.rate < 0

    def test_noisy_fit_r_squared_below_one(self):
        rng = np.random.default_rng(0)
        qubits = np.arange(2, 12)
        variances = np.exp(-0.5 * qubits + rng.normal(0, 0.3, qubits.size))
        fit = fit_decay_rate(qubits, variances)
        assert 0.5 < fit.r_squared < 1.0

    def test_predicted_variance(self):
        fit = DecayFit(method="m", rate=0.5, intercept=-1.0, r_squared=1.0)
        predicted = fit.predicted_variance(np.array([2.0, 4.0]))
        assert np.allclose(predicted, np.exp([-2.0, -3.0]))

    def test_zero_variance_guarded(self):
        fit = fit_decay_rate([2, 4], [1e-5, 0.0])
        assert np.isfinite(fit.rate)

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            fit_decay_rate([4], [0.1])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_decay_rate([2, 4], [0.1])

    def test_rejects_negative_variance(self):
        with pytest.raises(ValueError):
            fit_decay_rate([2, 4], [0.1, -0.1])

    def test_rejects_degenerate_qubits(self):
        with pytest.raises(ValueError):
            fit_decay_rate([4, 4], [0.1, 0.2])


def _make_result():
    result = VarianceResult(qubit_counts=[2, 4, 6], methods=["random", "xavier"])
    # random decays at rate ln(10) per 2 qubits; xavier at half that.
    for q, var_r, var_x in [(2, 1e-1, 1e-1), (4, 1e-2, 10**-1.5), (6, 1e-3, 1e-2)]:
        rng = np.random.default_rng(q)
        result.add(
            GradientSamples(q, "random", rng.normal(0, np.sqrt(var_r), 4000))
        )
        result.add(
            GradientSamples(q, "xavier", rng.normal(0, np.sqrt(var_x), 4000))
        )
    return result


class TestImprovementTable:
    def test_fit_all_methods(self):
        fits = fit_all_methods(_make_result())
        assert set(fits) == {"random", "xavier"}
        assert fits["random"].rate > fits["xavier"].rate

    def test_improvement_percent(self):
        fits = {
            "random": DecayFit("random", rate=1.0, intercept=0, r_squared=1),
            "xavier": DecayFit("xavier", rate=0.4, intercept=0, r_squared=1),
            "he": DecayFit("he", rate=0.7, intercept=0, r_squared=1),
        }
        improvements = improvement_over_random(fits)
        assert improvements["xavier"] == pytest.approx(60.0)
        assert improvements["he"] == pytest.approx(30.0)
        assert "random" not in improvements

    def test_missing_baseline(self):
        fits = {"xavier": DecayFit("xavier", 0.4, 0, 1)}
        with pytest.raises(KeyError):
            improvement_over_random(fits)

    def test_non_positive_baseline_rate(self):
        fits = {
            "random": DecayFit("random", rate=0.0, intercept=0, r_squared=1),
            "xavier": DecayFit("xavier", rate=0.4, intercept=0, r_squared=1),
        }
        with pytest.raises(ValueError):
            improvement_over_random(fits)

    def test_custom_baseline(self):
        fits = {
            "zeros": DecayFit("zeros", rate=2.0, intercept=0, r_squared=1),
            "ones": DecayFit("ones", rate=1.0, intercept=0, r_squared=1),
        }
        improvements = improvement_over_random(fits, baseline="zeros")
        assert improvements["ones"] == pytest.approx(50.0)


class TestRanking:
    def test_rank_best_first(self):
        fits = {
            "random": DecayFit("random", rate=1.4, intercept=0, r_squared=1),
            "xavier": DecayFit("xavier", rate=0.5, intercept=0, r_squared=1),
            "he": DecayFit("he", rate=0.9, intercept=0, r_squared=1),
        }
        assert rank_methods(fits) == ["xavier", "he", "random"]

    def test_rank_excluding_baseline(self):
        fits = {
            "random": DecayFit("random", rate=0.1, intercept=0, r_squared=1),
            "he": DecayFit("he", rate=0.9, intercept=0, r_squared=1),
        }
        assert rank_methods(fits, include_baseline=False) == ["he"]
