"""Unit tests for StateProjector and the state-learning cost."""

import numpy as np
import pytest

from repro.backend import QuantumCircuit, StateProjector, Statevector
from repro.backend.gradients import (
    adjoint_gradient,
    finite_difference,
    parameter_shift,
)
from repro.core.cost import global_identity_cost, state_learning_cost
from repro.core.training import Trainer, TrainingConfig
from repro.optim import Adam


class TestStateProjector:
    def test_expectation_is_fidelity(self):
        target = Statevector.random_state(3, seed=0)
        other = Statevector.random_state(3, seed=1)
        projector = StateProjector(target)
        assert projector.expectation(other) == pytest.approx(
            target.fidelity(other)
        )

    def test_self_fidelity_is_one(self):
        target = Statevector.random_state(2, seed=2)
        assert StateProjector(target).expectation(target) == pytest.approx(1.0)

    def test_apply_matches_matrix(self):
        target = Statevector.random_state(2, seed=3)
        state = Statevector.random_state(2, seed=4)
        projector = StateProjector(target)
        assert np.allclose(
            projector.apply(state.data), projector.matrix() @ state.data
        )

    def test_matrix_is_rank_one_projector(self):
        target = Statevector.random_state(2, seed=5)
        matrix = StateProjector(target).matrix()
        assert np.allclose(matrix @ matrix, matrix, atol=1e-12)
        assert np.trace(matrix) == pytest.approx(1.0)

    def test_target_copied_not_aliased(self):
        target = Statevector.zero_state(1)
        projector = StateProjector(target)
        assert projector.target is not target

    def test_qubit_mismatch(self):
        projector = StateProjector(Statevector.zero_state(2))
        with pytest.raises(ValueError):
            projector.expectation(Statevector.zero_state(3))


class TestStateLearningCost:
    def _circuit(self, n=3, layers=2):
        circuit = QuantumCircuit(n)
        for _ in range(layers):
            for q in range(n):
                circuit.rx(q)
                circuit.ry(q)
            for q in range(n - 1):
                circuit.cz(q, q + 1)
        return circuit

    def test_zero_target_matches_global_identity_cost(self):
        circuit = self._circuit()
        generic = state_learning_cost(circuit, Statevector.zero_state(3))
        identity = global_identity_cost(circuit)
        rng = np.random.default_rng(0)
        params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
        assert generic.value(params) == pytest.approx(identity.value(params))

    def test_cost_zero_when_target_reached(self, simulator):
        circuit = self._circuit()
        params = np.random.default_rng(1).normal(0, 0.4, circuit.num_parameters)
        target = simulator.run(circuit, params)
        cost = state_learning_cost(circuit, target)
        assert cost.value(params) == pytest.approx(0.0, abs=1e-12)

    def test_gradient_engines_agree(self, simulator):
        circuit = self._circuit(2, 1)
        target = Statevector.random_state(2, seed=6)
        projector = StateProjector(target)
        params = np.random.default_rng(2).uniform(0, 2 * np.pi, 4)
        ps = parameter_shift(circuit, projector, params, simulator)
        adj = adjoint_gradient(circuit, projector, params, simulator)
        fd = finite_difference(circuit, projector, params, simulator)
        assert np.allclose(ps, adj, atol=1e-10)
        assert np.allclose(ps, fd, atol=1e-5)

    def test_qubit_mismatch_rejected(self):
        with pytest.raises(ValueError):
            state_learning_cost(self._circuit(3), Statevector.zero_state(2))

    def test_training_learns_a_random_target(self, simulator):
        """End to end: Adam + Xavier learns an entangled target state."""
        circuit = self._circuit(3, 2)
        teacher = np.random.default_rng(3).normal(0, 0.6, circuit.num_parameters)
        target = simulator.run(circuit, teacher)
        cost = state_learning_cost(circuit, target)

        trainer = Trainer(TrainingConfig(num_qubits=3, num_layers=2, iterations=1))
        params = trainer.initial_parameters("xavier_normal", seed=4)
        optimizer = Adam(learning_rate=0.1)
        initial = cost.value(params)
        for _ in range(60):
            params = optimizer.step(params, cost.gradient(params))
        assert cost.value(params) < min(0.1, initial)
