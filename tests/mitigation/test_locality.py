"""Unit tests for the cost-locality comparison."""

import pytest

from repro.core.variance import VarianceConfig
from repro.mitigation import compare_cost_localities, locality_gap

_CONFIG = VarianceConfig(
    qubit_counts=(2, 4, 6),
    num_circuits=25,
    num_layers=12,
    methods=("random",),
)


@pytest.fixture(scope="module")
def outcomes():
    return compare_cost_localities(_CONFIG, seed=11)


class TestCompare:
    def test_both_kinds_present(self, outcomes):
        assert set(outcomes) == {"global", "local"}

    def test_configs_share_grid(self, outcomes):
        assert outcomes["global"].result.qubit_counts == [2, 4, 6]
        assert outcomes["local"].result.qubit_counts == [2, 4, 6]

    def test_local_cost_decays_slower_for_random_init(self, outcomes):
        """Cerezo et al.: local costs mitigate the plateau."""
        gap = locality_gap(outcomes, method="random")
        assert gap > 0.0

    def test_locality_gap_unknown_method(self, outcomes):
        with pytest.raises(KeyError):
            locality_gap(outcomes, method="he_normal")

    def test_locality_gap_missing_kind(self, outcomes):
        with pytest.raises(KeyError):
            locality_gap({"global": outcomes["global"]})
