"""Unit tests for the identity-block strategy (Grant et al.)."""

import numpy as np
import pytest

from repro.core.cost import global_identity_cost
from repro.initializers import HeNormal, RandomUniform
from repro.mitigation import IdentityBlockStrategy


class TestConstruction:
    def test_parameter_count(self):
        strategy = IdentityBlockStrategy(num_qubits=4, num_blocks=3, block_layers=2)
        circuit = strategy.build()
        # 2 halves x 3 blocks x 2 layers x 4 qubits x 2 gates = 96.
        assert strategy.num_parameters == 96
        assert circuit.num_parameters == 96

    def test_params_per_half_block(self):
        strategy = IdentityBlockStrategy(num_qubits=3, num_blocks=1, block_layers=2)
        assert strategy.params_per_half_block == 12

    def test_rejects_bad_configuration(self):
        with pytest.raises((ValueError, TypeError)):
            IdentityBlockStrategy(num_qubits=0, num_blocks=1)
        with pytest.raises((ValueError, TypeError)):
            IdentityBlockStrategy(num_qubits=2, num_blocks=0)
        with pytest.raises(ValueError):
            IdentityBlockStrategy(num_qubits=2, num_blocks=1, rotation_gates=())


class TestIdentityProperty:
    @pytest.mark.parametrize("num_blocks,block_layers", [(1, 1), (2, 1), (1, 2), (3, 2)])
    def test_initial_circuit_is_identity(self, simulator, num_blocks, block_layers):
        strategy = IdentityBlockStrategy(
            num_qubits=3, num_blocks=num_blocks, block_layers=block_layers
        )
        circuit, params = strategy.build_with_parameters(seed=0)
        state = simulator.run(circuit, params)
        assert state.probability_of("000") == pytest.approx(1.0, abs=1e-10)

    def test_initial_cost_is_zero(self):
        strategy = IdentityBlockStrategy(num_qubits=5, num_blocks=2)
        circuit, params = strategy.build_with_parameters(seed=1)
        cost = global_identity_cost(circuit)
        assert cost.value(params) == pytest.approx(0.0, abs=1e-10)

    def test_identity_holds_for_any_inner_initializer(self, simulator):
        strategy = IdentityBlockStrategy(
            num_qubits=3, num_blocks=2, inner_initializer=HeNormal()
        )
        circuit, params = strategy.build_with_parameters(seed=2)
        state = simulator.run(circuit, params)
        assert state.probability_of("000") == pytest.approx(1.0, abs=1e-10)

    def test_identity_with_ring_entanglement(self, simulator):
        strategy = IdentityBlockStrategy(
            num_qubits=4, num_blocks=1, entanglement="ring"
        )
        circuit, params = strategy.build_with_parameters(seed=3)
        state = simulator.run(circuit, params)
        assert state.probability_of("0000") == pytest.approx(1.0, abs=1e-10)

    def test_perturbation_breaks_identity(self, simulator):
        """Gradients exist: nudging one angle moves the state."""
        strategy = IdentityBlockStrategy(num_qubits=3, num_blocks=1)
        circuit, params = strategy.build_with_parameters(seed=4)
        params[0] += 0.3
        state = simulator.run(circuit, params)
        assert state.probability_of("000") < 1.0


class TestReproducibility:
    def test_same_seed_same_params(self):
        strategy = IdentityBlockStrategy(num_qubits=3, num_blocks=2)
        a = strategy.initial_parameters(seed=9)
        b = strategy.initial_parameters(seed=9)
        assert np.array_equal(a, b)

    def test_inner_angles_are_random(self):
        strategy = IdentityBlockStrategy(
            num_qubits=3, num_blocks=1, inner_initializer=RandomUniform()
        )
        params = strategy.initial_parameters(seed=5)
        half = strategy.params_per_half_block
        assert np.std(params[:half]) > 0.1
        assert np.allclose(params[half:], -params[:half][::-1])
