"""Unit tests for the BeInit mitigation strategy."""

import numpy as np
import pytest

from repro.initializers import BetaInitializer
from repro.mitigation import PerturbedGradientDescent, beinit_defaults
from repro.optim import GradientDescent


class TestPerturbedGradientDescent:
    def test_zero_perturbation_equals_gd(self):
        perturbed = PerturbedGradientDescent(0.1, perturbation_std=0.0)
        vanilla = GradientDescent(0.1)
        params = np.array([1.0, -2.0])
        grad = np.array([0.3, 0.4])
        assert np.allclose(
            perturbed.step(params, grad), vanilla.step(params, grad)
        )

    def test_perturbation_changes_step(self):
        optimizer = PerturbedGradientDescent(0.1, perturbation_std=0.5, seed=0)
        params = np.array([1.0])
        grad = np.array([0.0])
        stepped = optimizer.step(params, grad)
        assert stepped[0] != pytest.approx(1.0)

    def test_reproducible_with_seed(self):
        a = PerturbedGradientDescent(0.1, perturbation_std=0.1, seed=5)
        b = PerturbedGradientDescent(0.1, perturbation_std=0.1, seed=5)
        params = np.array([0.5, 0.5])
        grad = np.array([0.1, -0.1])
        assert np.allclose(a.step(params, grad), b.step(params, grad))

    def test_reset_restores_noise_stream(self):
        optimizer = PerturbedGradientDescent(0.1, perturbation_std=0.2, seed=7)
        params = np.array([0.0])
        grad = np.array([1.0])
        first = optimizer.step(params, grad)
        optimizer.reset()
        again = optimizer.step(params, grad)
        assert np.allclose(first, again)

    def test_perturbation_escapes_flat_gradient(self):
        """On an exactly flat landscape, the iterate still moves."""
        optimizer = PerturbedGradientDescent(0.5, perturbation_std=0.1, seed=1)
        params = np.zeros(4)
        for _ in range(3):
            params = optimizer.step(params, np.zeros(4))
        assert np.linalg.norm(params) > 0.0

    def test_rejects_negative_std(self):
        with pytest.raises(ValueError):
            PerturbedGradientDescent(0.1, perturbation_std=-0.5)


class TestBeinitDefaults:
    def test_returns_symmetric_beta(self):
        init = beinit_defaults()
        assert isinstance(init, BetaInitializer)
        assert init.alpha == pytest.approx(2.0)
        assert init.beta == pytest.approx(2.0)

    def test_custom_scale(self):
        init = beinit_defaults(scale=np.pi)
        assert init.scale == pytest.approx(np.pi)
