"""Unit tests for layer-wise training (Skolik et al.)."""

import numpy as np
import pytest

from repro.mitigation import LayerwiseConfig, LayerwiseTrainer


def _config(**overrides):
    defaults = dict(
        num_qubits=3,
        total_layers=3,
        iterations_per_stage=4,
        initializer="xavier_normal",
    )
    defaults.update(overrides)
    return LayerwiseConfig(**defaults)


class TestConfig:
    def test_defaults(self):
        config = LayerwiseConfig()
        assert config.num_qubits == 10
        assert config.total_layers == 5
        assert config.freeze_previous

    @pytest.mark.parametrize(
        "kwargs",
        [{"num_qubits": 0}, {"total_layers": 0}, {"iterations_per_stage": 0}],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises((ValueError, TypeError)):
            _config(**kwargs)


class TestRun:
    def test_history_length(self):
        history = LayerwiseTrainer(_config()).run(seed=0)
        assert len(history.losses) == 1 + 3 * 4

    def test_method_label(self):
        history = LayerwiseTrainer(_config()).run(seed=0)
        assert history.method == "layerwise[xavier_normal]"

    def test_final_params_size_matches_full_depth(self):
        config = _config()
        history = LayerwiseTrainer(config).run(seed=0)
        expected = config.total_layers * config.num_qubits * 2
        assert history.final_params.shape == (expected,)

    def test_reproducible(self):
        a = LayerwiseTrainer(_config()).run(seed=3)
        b = LayerwiseTrainer(_config()).run(seed=3)
        assert np.allclose(a.losses, b.losses)

    def test_loss_decreases_within_each_stage(self):
        """Appending a fresh layer may bump the loss, but every stage's
        own iterations must make progress."""
        config = _config(iterations_per_stage=10)
        history = LayerwiseTrainer(config).run(seed=1)
        per_stage = 10
        for stage in range(config.total_layers):
            start = history.losses[stage * per_stage + (1 if stage else 0)]
            end = history.losses[(stage + 1) * per_stage]
            assert end < start + 1e-12

    def test_final_sweep_recovers_loss(self):
        config = _config(iterations_per_stage=10, final_sweep_iterations=30)
        history = LayerwiseTrainer(config).run(seed=1)
        assert len(history.losses) == 1 + 3 * 10 + 30
        assert history.final_loss < history.initial_loss

    def test_rejects_negative_final_sweep(self):
        with pytest.raises(ValueError):
            _config(final_sweep_iterations=-1)

    def test_joint_finetuning_variant(self):
        config = _config(freeze_previous=False, iterations_per_stage=6)
        history = LayerwiseTrainer(config).run(seed=2)
        assert len(history.losses) == 1 + 3 * 6
        assert history.final_loss < 1.0

    def test_adam_variant(self):
        config = _config(optimizer="adam")
        history = LayerwiseTrainer(config).run(seed=0)
        assert history.optimizer == "adam"

    def test_local_cost_variant(self):
        config = _config(cost_kind="local")
        history = LayerwiseTrainer(config).run(seed=0)
        assert history.cost_kind == "local"
