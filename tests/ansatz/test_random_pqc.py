"""Unit tests for the randomly-structured variance-analysis PQC (Eq. 2)."""

import pytest

from repro.ansatz import DEFAULT_GATE_POOL, RandomPQC


class TestStructureSampling:
    def test_structure_shape(self):
        pqc = RandomPQC(num_qubits=4, num_layers=6, seed=0)
        assert len(pqc.structure) == 6
        assert all(len(row) == 4 for row in pqc.structure)

    def test_structure_from_pool(self):
        pqc = RandomPQC(num_qubits=5, num_layers=10, seed=1)
        for row in pqc.structure:
            for name in row:
                assert name in DEFAULT_GATE_POOL

    def test_seed_reproducibility(self):
        a = RandomPQC(num_qubits=3, num_layers=5, seed=7)
        b = RandomPQC(num_qubits=3, num_layers=5, seed=7)
        assert a.structure == b.structure

    def test_different_seeds_differ(self):
        a = RandomPQC(num_qubits=5, num_layers=20, seed=1)
        b = RandomPQC(num_qubits=5, num_layers=20, seed=2)
        assert a.structure != b.structure

    def test_all_pool_gates_appear_eventually(self):
        pqc = RandomPQC(num_qubits=10, num_layers=30, seed=3)
        seen = {name for row in pqc.structure for name in row}
        assert seen == set(DEFAULT_GATE_POOL)

    def test_custom_pool(self):
        pqc = RandomPQC(num_qubits=3, num_layers=5, gate_pool=("RY",), seed=0)
        assert all(name == "RY" for row in pqc.structure for name in row)


class TestExplicitStructure:
    def test_explicit_structure_used(self):
        structure = [["RX", "RY"], ["RZ", "RX"]]
        pqc = RandomPQC(num_qubits=2, num_layers=2, structure=structure)
        assert pqc.structure == structure
        names = [
            op.gate.name for op in pqc.build().operations if op.is_parametric
        ]
        assert names == ["RX", "RY", "RZ", "RX"]

    def test_rejects_wrong_dimensions(self):
        with pytest.raises(ValueError):
            RandomPQC(num_qubits=2, num_layers=2, structure=[["RX", "RY"]])

    def test_rejects_gate_outside_pool(self):
        with pytest.raises(ValueError):
            RandomPQC(
                num_qubits=1,
                num_layers=1,
                gate_pool=("RX",),
                structure=[["RY"]],
            )


class TestBuild:
    def test_parameter_count(self):
        pqc = RandomPQC(num_qubits=4, num_layers=7, seed=0)
        assert pqc.build().num_parameters == 28
        assert pqc.num_parameters == 28

    def test_entanglement_per_layer(self):
        pqc = RandomPQC(num_qubits=4, num_layers=3, seed=0)
        counts = pqc.build().gate_counts()
        assert counts.get("CZ", 0) == 9  # 3 pairs x 3 layers

    def test_params_per_qubit_is_one(self):
        assert RandomPQC(num_qubits=2, num_layers=1, seed=0).params_per_qubit == 1

    def test_last_gate(self):
        pqc = RandomPQC(
            num_qubits=2, num_layers=2, structure=[["RX", "RY"], ["RZ", "RX"]]
        )
        assert pqc.last_gate == "RX"

    def test_build_matches_structure_order(self):
        pqc = RandomPQC(num_qubits=3, num_layers=2, seed=11)
        ops = [op for op in pqc.build().operations if op.is_parametric]
        expected = [name for row in pqc.structure for name in row]
        assert [op.gate.name for op in ops] == expected

    def test_validation_of_pool(self):
        with pytest.raises(ValueError):
            RandomPQC(num_qubits=2, num_layers=1, gate_pool=("H",))
        with pytest.raises(ValueError):
            RandomPQC(num_qubits=2, num_layers=1, gate_pool=())


class TestSkeletonBuild:
    """Skeleton-cached builds equal ordinary append-built circuits."""

    def test_build_matches_append_path(self):
        from repro.ansatz.entanglement import apply_entanglement
        from repro.backend.circuit import QuantumCircuit

        pqc = RandomPQC(num_qubits=3, num_layers=4, seed=5)
        built = pqc.build()
        reference = QuantumCircuit(3)
        for layer in pqc.structure:
            for qubit, gate_name in enumerate(layer):
                reference.append(gate_name, [qubit])
            apply_entanglement(reference, pqc.entanglement, pqc.entangler)
        assert built.num_parameters == reference.num_parameters
        assert built.operations == reference.operations

    def test_repeated_builds_independent(self):
        pqc = RandomPQC(num_qubits=2, num_layers=2, seed=1)
        a, b = pqc.build(), pqc.build()
        assert a is not b
        assert a.operations == b.operations
        a.rx(0)  # mutating one copy must not leak into the other
        assert len(a.operations) == len(b.operations) + 1

    def test_fixed_operations_shared_across_structures(self):
        a = RandomPQC(num_qubits=3, num_layers=2, seed=1).build()
        b = RandomPQC(num_qubits=3, num_layers=2, seed=2).build()
        for op_a, op_b in zip(a.operations, b.operations):
            if not op_a.is_trainable:
                assert op_a is op_b

    def test_shape_key_shared_across_draws(self):
        keys = {RandomPQC(3, 4, seed=s).shape_key for s in range(6)}
        assert len(keys) == 1

    def test_shape_key_distinguishes_configs(self):
        base = RandomPQC(3, 4, seed=0).shape_key
        assert RandomPQC(3, 4, entanglement="ring", seed=0).shape_key != base
        assert RandomPQC(3, 4, entangler="CX", seed=0).shape_key != base

    def test_first_build_does_not_alias_cache(self):
        """Mutating the very first build of a configuration must not
        poison the skeleton cache for later builds."""
        from repro.ansatz import random_pqc as module

        config = dict(num_qubits=2, num_layers=3, entanglement="ring")
        key = (2, 3, "ring", "CZ")
        module._SKELETON_CACHE.pop(key, None)
        first = RandomPQC(seed=1, **config).build()
        first.rx(0)  # caller mutation of the cache-miss build
        later = RandomPQC(seed=2, **config).build()
        pqc = RandomPQC(seed=2, **config)
        from repro.ansatz.entanglement import apply_entanglement
        from repro.backend.circuit import QuantumCircuit

        reference = QuantumCircuit(2)
        for layer in pqc.structure:
            for qubit, gate_name in enumerate(layer):
                reference.append(gate_name, [qubit])
            apply_entanglement(reference, pqc.entanglement, pqc.entangler)
        assert later.operations == reference.operations
        assert later.num_parameters == reference.num_parameters
