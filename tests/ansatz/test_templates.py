"""Unit tests for the extra ansatz templates."""

import numpy as np
import pytest

from repro.ansatz import BasicEntanglerAnsatz, StronglyEntanglingAnsatz


class TestBasicEntangler:
    def test_counts(self):
        ansatz = BasicEntanglerAnsatz(num_qubits=4, num_layers=3)
        circuit = ansatz.build()
        assert circuit.num_parameters == 12
        assert circuit.gate_counts() == {"RY": 12, "CX": 12}  # ring of 4

    def test_custom_rotation(self):
        circuit = BasicEntanglerAnsatz(3, 1, rotation_gate="RX").build()
        assert "RX" in circuit.gate_counts()

    def test_single_qubit_no_entanglers(self):
        circuit = BasicEntanglerAnsatz(1, 2).build()
        assert circuit.gate_counts() == {"RY": 2}

    def test_zero_angles_identity(self, simulator):
        circuit = BasicEntanglerAnsatz(3, 2).build()
        state = simulator.run(circuit, np.zeros(circuit.num_parameters))
        # CX ring with all-zero rotations still maps |000> to |000>.
        assert state.probability_of("000") == pytest.approx(1.0)


class TestStronglyEntangling:
    def test_counts(self):
        ansatz = StronglyEntanglingAnsatz(num_qubits=3, num_layers=2)
        circuit = ansatz.build()
        assert ansatz.params_per_qubit == 3
        assert circuit.num_parameters == 18
        assert circuit.gate_counts() == {"RZ": 12, "RY": 6, "CX": 6}

    def test_parameter_shape(self):
        shape = StronglyEntanglingAnsatz(4, 5).parameter_shape
        assert shape.num_parameters == 60

    def test_euler_order(self):
        circuit = StronglyEntanglingAnsatz(1, 1).build()
        names = [op.gate.name for op in circuit.operations]
        assert names == ["RZ", "RY", "RZ"]
