"""Unit tests for the hardware-efficient ansatz (paper Eq. 3)."""

import numpy as np
import pytest

from repro.ansatz import HardwareEfficientAnsatz
from repro.backend import StatevectorSimulator


class TestPaperConfiguration:
    def test_paper_counts(self):
        """Section IV-D: 10 qubits, 5 layers -> 145 gates, 100 parameters."""
        ansatz = HardwareEfficientAnsatz(num_qubits=10, num_layers=5)
        circuit = ansatz.build()
        assert circuit.num_operations == 145
        assert circuit.num_parameters == 100
        assert ansatz.num_parameters == 100

    def test_gate_composition(self):
        circuit = HardwareEfficientAnsatz(num_qubits=10, num_layers=5).build()
        counts = circuit.gate_counts()
        assert counts == {"RX": 50, "RY": 50, "CZ": 45}

    def test_parameter_shape(self):
        ansatz = HardwareEfficientAnsatz(num_qubits=10, num_layers=5)
        shape = ansatz.parameter_shape
        assert shape.num_layers == 5
        assert shape.num_qubits == 10
        assert shape.params_per_qubit == 2


class TestStructure:
    def test_rotation_order_rx_then_ry(self):
        circuit = HardwareEfficientAnsatz(num_qubits=2, num_layers=1).build()
        names = [op.gate.name for op in circuit.operations]
        assert names == ["RX", "RY", "RX", "RY", "CZ"]

    def test_parameter_ordering_layer_major(self):
        """Param index order: layer, then qubit, then gate within qubit."""
        circuit = HardwareEfficientAnsatz(num_qubits=2, num_layers=2).build()
        trainable = circuit.trainable_operations()
        observed = [
            (op.param_index, op.gate.name, op.qubits[0]) for _, op in trainable
        ]
        assert observed == [
            (0, "RX", 0), (1, "RY", 0), (2, "RX", 1), (3, "RY", 1),
            (4, "RX", 0), (5, "RY", 0), (6, "RX", 1), (7, "RY", 1),
        ]

    def test_custom_rotations(self):
        ansatz = HardwareEfficientAnsatz(
            num_qubits=3, num_layers=1, rotation_gates=("RY",)
        )
        assert ansatz.params_per_qubit == 1
        assert ansatz.build().gate_counts() == {"RY": 3, "CZ": 2}

    def test_ring_entanglement(self):
        circuit = HardwareEfficientAnsatz(
            num_qubits=4, num_layers=1, entanglement="ring"
        ).build()
        assert circuit.gate_counts()["CZ"] == 4

    def test_custom_entangler(self):
        circuit = HardwareEfficientAnsatz(
            num_qubits=3, num_layers=1, entangler="CX"
        ).build()
        assert "CX" in circuit.gate_counts()

    def test_final_rotation_layer(self):
        ansatz = HardwareEfficientAnsatz(
            num_qubits=2, num_layers=2, final_rotation_layer=True
        )
        circuit = ansatz.build()
        assert circuit.num_parameters == 12  # (2 layers + final) * 2 * 2
        assert ansatz.num_parameters == 12
        assert circuit.operations[-1].gate.name == "RY"

    def test_build_is_deterministic(self):
        ansatz = HardwareEfficientAnsatz(num_qubits=3, num_layers=2)
        a, b = ansatz.build(), ansatz.build()
        assert [op.gate.name for op in a.operations] == [
            op.gate.name for op in b.operations
        ]


class TestValidation:
    def test_rejects_empty_rotations(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, rotation_gates=())

    def test_rejects_fixed_rotation_gate(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, rotation_gates=("H",))

    def test_rejects_two_qubit_rotation_gate(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, rotation_gates=("RXX",))

    def test_rejects_parametric_entangler(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, entangler="CRZ")

    def test_rejects_single_qubit_entangler(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, entangler="H")

    def test_rejects_bad_pattern(self):
        with pytest.raises(ValueError):
            HardwareEfficientAnsatz(2, 1, entanglement="hexagonal")


class TestSemantics:
    def test_zero_angles_give_identity(self, simulator):
        ansatz = HardwareEfficientAnsatz(num_qubits=4, num_layers=3)
        circuit = ansatz.build()
        state = simulator.run(circuit, np.zeros(circuit.num_parameters))
        assert state.probability_of("0000") == pytest.approx(1.0)

    def test_angles_change_state(self, simulator):
        circuit = HardwareEfficientAnsatz(num_qubits=2, num_layers=1).build()
        state = simulator.run(circuit, np.full(circuit.num_parameters, 0.7))
        assert state.probability_of("00") < 1.0
