"""Unit tests for entanglement patterns."""

import pytest

from repro.ansatz import apply_entanglement, entanglement_pairs
from repro.backend import QuantumCircuit


class TestPatterns:
    def test_chain(self):
        assert entanglement_pairs("chain", 4) == [(0, 1), (1, 2), (2, 3)]

    def test_chain_single_qubit(self):
        assert entanglement_pairs("chain", 1) == []

    def test_ring(self):
        assert entanglement_pairs("ring", 4) == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_ring_two_qubits_no_duplicate(self):
        # The closing pair would duplicate (0,1); it is skipped.
        assert entanglement_pairs("ring", 2) == [(0, 1)]

    def test_full(self):
        assert entanglement_pairs("full", 3) == [(0, 1), (0, 2), (1, 2)]

    def test_full_count(self):
        assert len(entanglement_pairs("full", 6)) == 15

    def test_none(self):
        assert entanglement_pairs("none", 5) == []

    def test_unknown_pattern(self):
        with pytest.raises(ValueError):
            entanglement_pairs("star", 4)

    def test_invalid_qubits(self):
        with pytest.raises(ValueError):
            entanglement_pairs("chain", 0)


class TestApplyEntanglement:
    def test_appends_cz_chain(self):
        circuit = QuantumCircuit(4)
        apply_entanglement(circuit, "chain")
        assert circuit.gate_counts() == {"CZ": 3}

    def test_custom_gate(self):
        circuit = QuantumCircuit(3)
        apply_entanglement(circuit, "ring", gate="CX")
        assert circuit.gate_counts() == {"CX": 3}

    def test_explicit_pairs_override_pattern(self):
        circuit = QuantumCircuit(4)
        apply_entanglement(circuit, "full", pairs=[(0, 3)])
        assert circuit.num_operations == 1
        assert circuit.operations[0].qubits == (0, 3)

    def test_returns_circuit(self):
        circuit = QuantumCircuit(2)
        assert apply_entanglement(circuit) is circuit
