"""Cross-subsystem consistency tests.

Each test ties two independent implementations of the same physics
together — statevector vs density matrix, exact vs sampled, library vs
CLI — so a regression in either one breaks an equality instead of
drifting silently.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz import HardwareEfficientAnsatz, RandomPQC
from repro.backend import (
    NoiseModel,
    PauliString,
    QuantumCircuit,
    StatevectorSimulator,
    bit_flip,
    total_z,
    zero_projector,
)
from repro.backend.density import DensityMatrix, DensityMatrixSimulator
from repro.cli import main as cli_main
from repro.core import (
    Trainer,
    TrainingConfig,
    VarianceConfig,
    run_variance_experiment,
)
from repro.io import load_result, save_result

_SIM = StatevectorSimulator()


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), num_qubits=st.integers(2, 4))
def test_density_matrix_agrees_with_statevector_noiselessly(seed, num_qubits):
    """Pure-state evolution must agree between the two simulators."""
    pqc = RandomPQC(num_qubits, num_layers=3, seed=seed)
    circuit = pqc.build()
    rng = np.random.default_rng(seed)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    state = _SIM.run(circuit, params)
    rho = DensityMatrixSimulator().run(circuit, params)
    assert rho.fidelity_with_pure(state) == pytest.approx(1.0, abs=1e-10)
    for observable in (zero_projector(num_qubits), total_z(num_qubits)):
        assert rho.expectation(observable) == pytest.approx(
            observable.expectation(state), abs=1e-10
        )


def test_noisy_expectations_agree_between_dm_and_probabilistic_mixture():
    """bit_flip(p) after one X equals the analytic two-outcome mixture."""
    p = 0.3
    circuit = QuantumCircuit(1).x(0)
    noisy = DensityMatrixSimulator(NoiseModel(default=bit_flip(p)))
    z_value = noisy.expectation(circuit, PauliString(1, "Z"))
    # With prob 1-p the state is |1> (<Z> = -1), with prob p it is |0>.
    assert z_value == pytest.approx(-(1 - p) + p)


def test_purity_never_increases_under_noise():
    circuit = QuantumCircuit(2).h(0).cx(0, 1).rx(0, value=0.3).cz(0, 1)
    simulator = DensityMatrixSimulator(NoiseModel(default=bit_flip(0.05)))
    rho = DensityMatrix.zero_state(2)
    purities = [rho.purity()]
    for op in circuit.operations:
        rho = rho.apply_unitary(op.matrix(None), op.qubits)
        channel = simulator.noise_model.channel_for(op.gate.name)
        for qubit in op.qubits:
            rho = rho.apply_channel(channel, [qubit])
        purities.append(rho.purity())
    assert all(b <= a + 1e-10 for a, b in zip(purities, purities[1:]))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_shot_expectation_is_unbiased(seed):
    """Mean of many small-shot estimates converges to the exact value."""
    circuit = QuantumCircuit(2).h(0).cry(0, 1, value=0.9)
    obs = zero_projector(2)
    exact = _SIM.expectation(circuit, obs)
    rng = np.random.default_rng(seed)
    estimates = [
        _SIM.expectation(circuit, obs, shots=200, seed=rng) for _ in range(50)
    ]
    standard_error = np.std(estimates) / np.sqrt(len(estimates))
    assert abs(np.mean(estimates) - exact) < 5 * standard_error + 1e-3


def test_cli_variance_matches_library_run(capsys, tmp_path):
    """The CLI is a thin shell: same seed => byte-identical outcome."""
    target = tmp_path / "cli.json"
    cli_main(
        [
            "variance",
            "--qubits", "2", "3",
            "--circuits", "5",
            "--layers", "4",
            "--methods", "random",
            "--seed", "17",
            "--output", str(target),
        ]
    )
    capsys.readouterr()
    via_cli = load_result(target)
    via_lib = run_variance_experiment(
        VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=5,
            num_layers=4,
            methods=("random",),
        ),
        seed=17,
    )
    assert np.allclose(
        via_cli.result.samples[(2, "random")].gradients,
        via_lib.result.samples[(2, "random")].gradients,
    )


def test_training_history_roundtrips_through_disk(tmp_path):
    config = TrainingConfig(num_qubits=2, num_layers=1, iterations=3)
    history = Trainer(config).run("xavier_normal", seed=9)
    restored = load_result(save_result(history, tmp_path / "h.json"))
    assert restored.losses == history.losses
    assert np.allclose(restored.final_params, history.final_params)


def test_paper_ansatz_drawing_has_all_wires():
    circuit = HardwareEfficientAnsatz(num_qubits=4, num_layers=1).build()
    drawing = circuit.draw(max_width=200)
    lines = drawing.splitlines()
    assert len(lines) == 4
    assert all(line.startswith(f"q{i}:") for i, line in enumerate(lines))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_inverse_composition_is_identity_for_random_pqcs(seed):
    pqc = RandomPQC(3, num_layers=2, seed=seed)
    circuit = pqc.build()
    rng = np.random.default_rng(seed)
    params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
    roundtrip = circuit.bind(params).compose(circuit.inverse(params))
    state = _SIM.run(roundtrip)
    assert state.probability_of("000") == pytest.approx(1.0, abs=1e-10)
