"""Unit tests for statevector representation and gate-application kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.gates import FIXED_GATES, PARAMETRIC_GATES, pauli_word_matrix
from repro.backend.statevector import Statevector, apply_diagonal, apply_matrix


class TestConstructors:
    def test_zero_state(self):
        state = Statevector.zero_state(3)
        assert state.num_qubits == 3
        assert state.data[0] == 1.0
        assert np.allclose(state.data[1:], 0.0)

    def test_basis_state_bitstring(self):
        state = Statevector.basis_state("10")
        assert state.num_qubits == 2
        assert state.data[2] == 1.0  # qubit 0 is the MSB

    def test_basis_state_list(self):
        state = Statevector.basis_state([0, 1, 1])
        assert state.data[3] == 1.0

    def test_basis_state_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            Statevector.basis_state("102")
        with pytest.raises(ValueError):
            Statevector.basis_state("")

    def test_uniform_superposition(self):
        state = Statevector.uniform_superposition(2)
        assert np.allclose(state.data, 0.5)

    def test_random_state_normalized_and_reproducible(self):
        a = Statevector.random_state(4, seed=7)
        b = Statevector.random_state(4, seed=7)
        assert a.norm() == pytest.approx(1.0)
        assert a.allclose(b)

    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            Statevector([1.0, 1.0])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            Statevector([1.0, 0.0, 0.0])

    def test_validate_false_skips_norm_check(self):
        state = Statevector([2.0, 0.0], validate=False)
        assert state.norm() == pytest.approx(2.0)


class TestQueries:
    def test_dim(self):
        assert Statevector.zero_state(5).dim == 32

    def test_amplitude_by_bits_and_index(self):
        state = Statevector.basis_state("01")
        assert state.amplitude("01") == pytest.approx(1.0)
        assert state.amplitude(1) == pytest.approx(1.0)
        assert state.amplitude("11") == pytest.approx(0.0)

    def test_probabilities_sum_to_one(self):
        state = Statevector.random_state(3, seed=1)
        assert state.probabilities().sum() == pytest.approx(1.0)

    def test_probability_of(self):
        state = Statevector.uniform_superposition(2)
        assert state.probability_of("00") == pytest.approx(0.25)

    def test_marginal_probabilities_bell(self):
        # (|00> + |11>)/sqrt(2): each qubit is uniformly random.
        data = np.zeros(4, dtype=complex)
        data[0] = data[3] = 1 / np.sqrt(2)
        state = Statevector(data)
        assert np.allclose(state.marginal_probabilities([0]), [0.5, 0.5])
        assert np.allclose(state.marginal_probabilities([1]), [0.5, 0.5])
        assert np.allclose(
            state.marginal_probabilities([0, 1]), [0.5, 0.0, 0.0, 0.5]
        )

    def test_marginal_order_matters(self):
        state = Statevector.basis_state("01")
        # qubit order [0, 1] -> |01>; order [1, 0] -> |10>.
        assert np.allclose(state.marginal_probabilities([0, 1]), [0, 1, 0, 0])
        assert np.allclose(state.marginal_probabilities([1, 0]), [0, 0, 1, 0])

    def test_marginal_rejects_duplicates(self):
        with pytest.raises(ValueError):
            Statevector.zero_state(2).marginal_probabilities([0, 0])


class TestLinearAlgebra:
    def test_inner_and_fidelity(self):
        zero = Statevector.basis_state("0")
        one = Statevector.basis_state("1")
        assert zero.inner(one) == pytest.approx(0.0)
        assert zero.fidelity(zero) == pytest.approx(1.0)

    def test_inner_conjugates_left(self):
        plus_i = Statevector(np.array([1.0, 1j]) / np.sqrt(2))
        zero = Statevector.basis_state("0")
        assert zero.inner(plus_i) == pytest.approx(1 / np.sqrt(2))

    def test_tensor(self):
        zero = Statevector.basis_state("0")
        one = Statevector.basis_state("1")
        combined = zero.tensor(one)
        assert combined.num_qubits == 2
        assert combined.amplitude("01") == pytest.approx(1.0)

    def test_incompatible_sizes_raise(self):
        with pytest.raises(ValueError):
            Statevector.zero_state(2).inner(Statevector.zero_state(3))

    def test_equiv_global_phase(self):
        state = Statevector.random_state(2, seed=3)
        phased = Statevector(np.exp(1j * 0.7) * state.data, validate=False)
        assert state.equiv(phased)
        assert not state.allclose(phased)

    def test_apply_gate_method(self):
        state = Statevector.zero_state(2)
        flipped = state.apply_gate(pauli_word_matrix("X"), [1])
        assert flipped.amplitude("01") == pytest.approx(1.0)


class TestApplyMatrixKernel:
    def _dense_apply(self, state, matrix, qubits, num_qubits):
        """Reference implementation: embed the gate with explicit krons."""
        ops = [np.eye(2, dtype=complex)] * num_qubits
        full = None
        if len(qubits) == 1:
            ops[qubits[0]] = matrix
            full = ops[0]
            for op in ops[1:]:
                full = np.kron(full, op)
        else:
            # Build via permutation: move target qubits to the front.
            perm = list(qubits) + [q for q in range(num_qubits) if q not in qubits]
            tensor = state.reshape((2,) * num_qubits)
            permuted = np.transpose(tensor, perm).reshape(-1)
            k = len(qubits)
            dim_rest = 2 ** (num_qubits - k)
            big = np.kron(matrix, np.eye(dim_rest))
            out = big @ permuted
            tensor_out = out.reshape((2,) * num_qubits)
            inverse = np.argsort(perm)
            return np.transpose(tensor_out, inverse).reshape(-1)
        return full @ state

    def test_single_qubit_on_each_wire(self):
        rng = np.random.default_rng(0)
        for num_qubits in (1, 2, 3, 4):
            raw = rng.normal(size=2**num_qubits) + 1j * rng.normal(size=2**num_qubits)
            state = raw / np.linalg.norm(raw)
            gate = PARAMETRIC_GATES["RY"].matrix(0.8)
            for q in range(num_qubits):
                fast = apply_matrix(state, gate, [q], num_qubits)
                slow = self._dense_apply(state, gate, [q], num_qubits)
                assert np.allclose(fast, slow)

    def test_two_qubit_all_pairs(self):
        rng = np.random.default_rng(1)
        num_qubits = 4
        raw = rng.normal(size=16) + 1j * rng.normal(size=16)
        state = raw / np.linalg.norm(raw)
        gate = FIXED_GATES["CX"].matrix()
        for a in range(num_qubits):
            for b in range(num_qubits):
                if a == b:
                    continue
                fast = apply_matrix(state, gate, [a, b], num_qubits)
                slow = self._dense_apply(state, gate, [a, b], num_qubits)
                assert np.allclose(fast, slow), (a, b)

    def test_three_qubit_gate(self):
        rng = np.random.default_rng(2)
        raw = rng.normal(size=16) + 1j * rng.normal(size=16)
        state = raw / np.linalg.norm(raw)
        gate = FIXED_GATES["CCX"].matrix()
        fast = apply_matrix(state, gate, [2, 0, 3], 4)
        slow = self._dense_apply(state, gate, [2, 0, 3], 4)
        assert np.allclose(fast, slow)

    def test_rejects_duplicate_targets(self):
        state = Statevector.zero_state(2).data
        with pytest.raises(ValueError):
            apply_matrix(state, FIXED_GATES["CX"].matrix(), [1, 1], 2)

    def test_apply_diagonal_matches_apply_matrix(self):
        rng = np.random.default_rng(3)
        raw = rng.normal(size=8) + 1j * rng.normal(size=8)
        state = raw / np.linalg.norm(raw)
        cz = FIXED_GATES["CZ"].matrix()
        diag = np.diagonal(cz)
        for pair in ([0, 1], [1, 2], [2, 0]):
            fast = apply_diagonal(state, diag, pair, 3)
            slow = apply_matrix(state, cz, pair, 3)
            assert np.allclose(fast, slow)


class TestBatchedKernels:
    """The leading batch axis of apply_matrix / apply_diagonal."""

    @staticmethod
    def _random_batch(rng, batch, dim):
        raw = rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))
        return raw / np.linalg.norm(raw, axis=1, keepdims=True)

    def test_batched_matrix_matches_per_row(self):
        """Shared matrix over (B, 2**n) rows == row-by-row sequential."""
        rng = np.random.default_rng(10)
        states = self._random_batch(rng, 5, 8)
        gate = FIXED_GATES["CX"].matrix()
        for pair in ([0, 1], [1, 2], [2, 0]):
            out = apply_matrix(states, gate, pair, 3)
            assert out.shape == (5, 8)
            for b in range(5):
                row = apply_matrix(states[b], gate, pair, 3)
                assert np.array_equal(out[b], row)

    def test_per_element_matrices(self):
        """A (B, d, d) stack applies matrix b to row b, bit-identically."""
        rng = np.random.default_rng(11)
        states = self._random_batch(rng, 4, 16)
        rx = PARAMETRIC_GATES["RX"]
        thetas = rng.uniform(0, 2 * np.pi, 4)
        stack = rx.matrix_batch(thetas)
        out = apply_matrix(states, stack, [2], 4)
        for b in range(4):
            row = apply_matrix(states[b], rx.matrix(thetas[b]), [2], 4)
            assert np.array_equal(out[b], row)

    def test_matrix_batch_matches_scalar_matrices(self):
        for name in ("RX", "RY", "RZ", "PHASE", "CRX", "CRY", "CRZ", "RZZ"):
            gate = PARAMETRIC_GATES[name]
            thetas = np.linspace(-np.pi, np.pi, 7)
            stack = gate.matrix_batch(thetas)
            for theta, matrix in zip(thetas, stack):
                assert np.array_equal(matrix, gate.matrix(theta)), name

    def test_shared_state_batched_matrices(self):
        """1-D state + (B, d, d) matrices broadcasts the state."""
        rng = np.random.default_rng(12)
        state = self._random_batch(rng, 1, 8)[0]
        ry = PARAMETRIC_GATES["RY"]
        thetas = rng.uniform(0, 2 * np.pi, 3)
        out = apply_matrix(state, ry.matrix_batch(thetas), [1], 3)
        for b in range(3):
            assert np.array_equal(
                out[b], apply_matrix(state, ry.matrix(thetas[b]), [1], 3)
            )

    def test_batched_diagonal_matches_per_row(self):
        rng = np.random.default_rng(13)
        states = self._random_batch(rng, 6, 8)
        rz = PARAMETRIC_GATES["RZ"]
        thetas = rng.uniform(0, 2 * np.pi, 6)
        diagonals = np.diagonal(rz.matrix_batch(thetas), axis1=-2, axis2=-1)
        for qubit in (0, 1, 2):
            out = apply_diagonal(states, diagonals, [qubit], 3)
            for b in range(6):
                row = apply_diagonal(
                    states[b], np.diagonal(rz.matrix(thetas[b])), [qubit], 3
                )
                assert np.array_equal(out[b], row)

    def test_batched_diagonal_unsorted_two_qubit_targets(self):
        rng = np.random.default_rng(14)
        states = self._random_batch(rng, 3, 16)
        cz_diag = np.diagonal(FIXED_GATES["CZ"].matrix())
        for pair in ([0, 1], [3, 1], [2, 0]):
            out = apply_diagonal(states, cz_diag, pair, 4)
            for b in range(3):
                assert np.array_equal(
                    out[b], apply_diagonal(states[b], cz_diag, pair, 4)
                )

    def test_batch_size_mismatch_raises(self):
        rng = np.random.default_rng(15)
        states = self._random_batch(rng, 3, 4)
        rx = PARAMETRIC_GATES["RX"]
        stack = rx.matrix_batch(np.zeros(4))  # 4 matrices vs 3 states
        with pytest.raises(ValueError, match="batch-size mismatch"):
            apply_matrix(states, stack, [0], 2)
        diagonals = np.ones((4, 2), dtype=complex)
        with pytest.raises(ValueError, match="batch-size mismatch"):
            apply_diagonal(states, diagonals, [0], 2)


class TestSampling:
    def test_sample_shape_and_values(self):
        state = Statevector.uniform_superposition(3)
        bits = state.sample(100, seed=0)
        assert bits.shape == (100, 3)
        assert set(np.unique(bits)) <= {0, 1}

    def test_sample_deterministic_state(self):
        state = Statevector.basis_state("101")
        bits = state.sample(50, seed=1)
        assert np.all(bits == [1, 0, 1])

    def test_sample_statistics(self):
        state = Statevector(np.array([np.sqrt(0.9), np.sqrt(0.1)]))
        bits = state.sample(20000, seed=2)
        assert np.mean(bits) == pytest.approx(0.1, abs=0.01)

    def test_sample_subset_of_qubits(self):
        state = Statevector.basis_state("10")
        bits = state.sample(10, seed=3, qubits=[0])
        assert np.all(bits == 1)

    def test_sample_counts(self):
        counts = Statevector.basis_state("11").sample_counts(25, seed=4)
        assert counts == {"11": 25}

    def test_sample_counts_qubit_subset(self):
        """Regression: sample_counts forwards ``qubits`` to sample."""
        state = Statevector.basis_state("101")
        counts = state.sample_counts(30, seed=5, qubits=[0, 2])
        assert counts == {"11": 30}

    def test_sample_counts_marginal_statistics(self):
        """Counts over a 2-qubit marginal follow the marginal distribution."""
        state = Statevector.uniform_superposition(1).tensor(
            Statevector.basis_state("01")
        )
        counts = state.sample_counts(4000, seed=6, qubits=[1, 2])
        assert set(counts) == {"01"}  # qubits 1,2 are deterministic
        counts = state.sample_counts(4000, seed=7, qubits=[0, 2])
        assert set(counts) == {"01", "11"}
        assert counts["01"] + counts["11"] == 4000
        assert counts["01"] == pytest.approx(2000, abs=150)

    def test_sample_rejects_bad_shots(self):
        with pytest.raises(ValueError):
            Statevector.zero_state(1).sample(0)

    def test_sample_zero_probability_raises_clear_error(self):
        """Regression: a zero-norm buffer raises ValueError, not NaN chaos."""
        state = Statevector.zero_state(2)
        state.data[:] = 0.0  # projector-style manipulation
        with pytest.raises(ValueError, match="zero total"):
            state.sample(10, seed=0)

    def test_sample_zero_probability_marginal_raises(self):
        state = Statevector.basis_state("00")
        state.data[:] = 0.0  # kill all amplitude, then ask for a marginal
        with pytest.raises(ValueError, match="zero total"):
            state.sample(5, qubits=[1])
        with pytest.raises(ValueError, match="zero total"):
            state.sample_counts(5, qubits=[1])


@settings(max_examples=30, deadline=None)
@given(
    num_qubits=st.integers(1, 5),
    seed=st.integers(0, 10_000),
    gate_name=st.sampled_from(["H", "X", "S", "T"]),
    qubit_seed=st.integers(0, 100),
)
def test_unitary_application_preserves_norm(num_qubits, seed, gate_name, qubit_seed):
    """Applying any unitary keeps the state normalized."""
    state = Statevector.random_state(num_qubits, seed=seed)
    qubit = qubit_seed % num_qubits
    gate = FIXED_GATES[gate_name].matrix()
    out = state.apply_gate(gate, [qubit])
    assert out.norm() == pytest.approx(1.0, abs=1e-10)


@settings(max_examples=30, deadline=None)
@given(num_qubits=st.integers(1, 5), seed=st.integers(0, 10_000))
def test_marginal_distributions_are_normalized(num_qubits, seed):
    state = Statevector.random_state(num_qubits, seed=seed)
    for q in range(num_qubits):
        marginal = state.marginal_probabilities([q])
        assert marginal.sum() == pytest.approx(1.0, abs=1e-10)
        assert np.all(marginal >= -1e-12)
