"""Batched measurement sampling: bit-identity, edge cases, statistics.

Covers the tentpole contract of the sampled path — ``Statevector.sample_batch``
/ ``sample_counts_batch`` and ``StatevectorSimulator.expectation_batch(shots=)``
are bit-identical, row by row, to the sequential sampling calls given the
same spawned child seeds — plus the edge cases of the scalar samplers
(marginal subsets, single-shot draws, zero-probability marginals,
Generator-vs-int seeds) and multi-term sampled expectations.
"""

import numpy as np
import pytest

from repro.backend import QuantumCircuit, Statevector, StatevectorSimulator
from repro.backend.observables import (
    PauliString,
    PauliSum,
    StateProjector,
    total_z,
    zero_projector,
)
from repro.backend.statevector import marginal_probabilities_batch
from repro.utils.rng import ensure_rng, resolve_rngs, spawn_seeds


def _random_states(batch, num_qubits, seed=0):
    rng = np.random.default_rng(seed)
    raw = rng.normal(size=(batch, 2**num_qubits)) + 1j * rng.normal(
        size=(batch, 2**num_qubits)
    )
    return raw / np.linalg.norm(raw, axis=1, keepdims=True)


class TestSampleBatchBitIdentity:
    @pytest.mark.parametrize("qubits", [None, [2, 0], [3], [1, 3, 0]])
    def test_rows_match_sequential_sample(self, qubits):
        states = _random_states(6, 4, seed=11)
        seeds = spawn_seeds(77, 6)
        batch_bits = Statevector.sample_batch(
            states, 40, seeds=seeds, qubits=qubits
        )
        for b in range(6):
            reference = Statevector(states[b], validate=False).sample(
                40, seed=ensure_rng(seeds[b]), qubits=qubits
            )
            assert np.array_equal(batch_bits[b], reference)

    def test_single_seed_spawns_children(self):
        states = _random_states(4, 3, seed=2)
        children = spawn_seeds(5, 4)
        from_int = Statevector.sample_batch(states, 25, seeds=5)
        from_children = Statevector.sample_batch(states, 25, seeds=children)
        assert np.array_equal(from_int, from_children)

    def test_counts_match_sequential(self):
        states = _random_states(3, 3, seed=4)
        seeds = spawn_seeds(9, 3)
        batch_counts = Statevector.sample_counts_batch(states, 30, seeds=seeds)
        for b in range(3):
            reference = Statevector(states[b], validate=False).sample_counts(
                30, seed=ensure_rng(seeds[b])
            )
            assert batch_counts[b] == reference

    def test_counts_marginal_subset_keys(self):
        states = _random_states(2, 3, seed=6)
        counts = Statevector.sample_counts_batch(
            states, 20, seeds=spawn_seeds(1, 2), qubits=[2, 0]
        )
        assert all(len(key) == 2 for row in counts for key in row)
        assert all(sum(row.values()) == 20 for row in counts)

    def test_marginal_probability_matrix_matches_scalar(self):
        states = _random_states(5, 4, seed=8)
        for qubits in ([0, 1, 2, 3], [3, 1], [2]):
            matrix = marginal_probabilities_batch(states, qubits, 4)
            for b in range(5):
                reference = Statevector(
                    states[b], validate=False
                ).marginal_probabilities(qubits)
                assert np.array_equal(matrix[b], reference)


class TestSampleEdgeCases:
    def test_single_shot_draw_shapes(self):
        state = Statevector.uniform_superposition(3)
        bits = state.sample(1, seed=0)
        assert bits.shape == (1, 3)
        batch_bits = Statevector.sample_batch(
            np.stack([state.data, state.data]), 1, seeds=3
        )
        assert batch_bits.shape == (2, 1, 3)
        assert set(batch_bits.reshape(-1)) <= {0, 1}

    def test_generator_vs_int_seed_equivalence(self):
        state = Statevector.random_state(3, seed=1)
        from_int = state.sample(50, seed=123)
        from_generator = state.sample(50, seed=np.random.default_rng(123))
        assert np.array_equal(from_int, from_generator)

    def test_zero_probability_marginal_error_message(self):
        state = Statevector.zero_state(2)
        state.data[0] = 0.0  # projector-style manipulation
        with pytest.raises(ValueError, match="zero total probability"):
            state.sample(10, seed=0)

    def test_batched_zero_probability_names_the_row(self):
        good = Statevector.uniform_superposition(2).data
        bad = np.zeros(4, dtype=complex)
        with pytest.raises(ValueError, match="batch row 1.*zero total"):
            Statevector.sample_batch(np.stack([good, bad]), 5, seeds=0)

    def test_rejects_bad_shapes_and_seed_counts(self):
        states = _random_states(3, 2)
        with pytest.raises(ValueError, match="2-D"):
            Statevector.sample_batch(states[0], 5, seeds=0)
        with pytest.raises(ValueError, match="power of 2"):
            Statevector.sample_batch(np.ones((2, 3), dtype=complex), 5)
        with pytest.raises(ValueError, match="per-row seeds"):
            Statevector.sample_batch(states, 5, seeds=spawn_seeds(0, 2))
        with pytest.raises(ValueError, match="shots"):
            Statevector.sample_batch(states, 0, seeds=0)

    def test_duplicate_marginal_qubits_rejected(self):
        states = _random_states(2, 3)
        with pytest.raises(ValueError, match="distinct"):
            Statevector.sample_batch(states, 5, seeds=0, qubits=[1, 1])


class TestResolveRngs:
    def test_generators_pass_through_unchanged(self):
        rng = np.random.default_rng(0)
        resolved = resolve_rngs([rng, rng], 2)
        assert resolved[0] is rng and resolved[1] is rng

    def test_single_seed_matches_spawn_seeds(self):
        children = spawn_seeds(42, 3)
        resolved = resolve_rngs(42, 3)
        for child, rng in zip(children, resolved):
            assert np.array_equal(
                np.random.default_rng(child).integers(0, 100, 5),
                rng.integers(0, 100, 5),
            )

    def test_count_mismatch_raises(self):
        with pytest.raises(ValueError, match="per-row seeds"):
            resolve_rngs([1, 2, 3], 2)


class TestSampledExpectationBatch:
    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(3)
        for q in range(3):
            circuit.rx(q).ry(q)
        circuit.cz(0, 1).cz(1, 2)
        return circuit

    @pytest.fixture
    def params_batch(self, circuit):
        rng = np.random.default_rng(21)
        return rng.uniform(0, 2 * np.pi, (5, circuit.num_parameters))

    @pytest.mark.parametrize(
        "observable",
        [
            zero_projector(3),
            total_z(3),
            PauliString(3, "XYZ", coefficient=0.5),
            PauliSum(
                [
                    PauliString(3, "III", coefficient=2.0),
                    PauliString(3, "ZXI", coefficient=-1.5),
                    PauliString(3, "IYZ", coefficient=0.25),
                ]
            ),
        ],
        ids=["projector", "total_z", "pauli_string", "multi_term_sum"],
    )
    def test_rows_match_sequential_expectation(
        self, simulator, circuit, params_batch, observable
    ):
        children = spawn_seeds(31, params_batch.shape[0])
        estimates = simulator.expectation_batch(
            circuit, observable, params_batch, shots=120, seed=31
        )
        for b in range(params_batch.shape[0]):
            reference = simulator.expectation(
                circuit,
                observable,
                params_batch[b],
                shots=120,
                seed=ensure_rng(children[b]),
            )
            assert estimates[b] == reference

    def test_identity_term_consumes_no_randomness(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        identity = PauliString(2, "II", coefficient=3.5)
        params = np.array([[0.3, 0.7]])
        rng = np.random.default_rng(0)
        before = rng.bit_generator.state["state"]["state"]
        estimates = simulator.expectation_batch(
            circuit, identity, params, shots=10, seed=[rng]
        )
        assert estimates[0] == 3.5
        assert rng.bit_generator.state["state"]["state"] == before

    def test_state_projector_rejected_like_sequential(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        target = Statevector.random_state(2, seed=0)
        with pytest.raises(TypeError, match="StateProjector"):
            simulator.expectation_batch(
                circuit,
                StateProjector(target),
                np.zeros((2, 2)),
                shots=10,
                seed=0,
            )

    def test_multi_term_estimate_is_unbiased(
        self, simulator, circuit, params_batch, assert_unbiased_estimator
    ):
        observable = total_z(3)
        exact = simulator.expectation(circuit, observable, params_batch[0])
        estimates = [
            simulator.expectation(
                circuit, observable, params_batch[0], shots=64, seed=seed
            )
            for seed in range(200)
        ]
        assert_unbiased_estimator(estimates, exact)

    def test_variance_scales_inverse_shots(
        self, simulator, circuit, params_batch,
        assert_variance_scales_inverse_shots,
    ):
        observable = PauliString(3, "ZXI")
        assert_variance_scales_inverse_shots(
            lambda shots, seed: simulator.expectation(
                circuit, observable, params_batch[1], shots=shots, seed=seed
            )
        )
