"""Unit tests for the exact statevector simulator."""

import numpy as np
import pytest

from repro.backend import (
    PauliString,
    PauliSum,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    zero_projector,
)


class TestRun:
    def test_bell_state(self, simulator, bell_circuit):
        state = simulator.run(bell_circuit)
        expected = np.zeros(4, dtype=complex)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(state.data, expected)

    def test_ghz_state(self, simulator):
        circuit = QuantumCircuit(4).h(0).cx(0, 1).cx(1, 2).cx(2, 3)
        state = simulator.run(circuit)
        assert state.probability_of("0000") == pytest.approx(0.5)
        assert state.probability_of("1111") == pytest.approx(0.5)

    def test_x_prepares_one(self, simulator):
        state = simulator.run(QuantumCircuit(1).x(0))
        assert state.probability_of("1") == pytest.approx(1.0)

    def test_trainable_circuit_needs_params(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError):
            simulator.run(circuit)

    def test_param_count_mismatch(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError):
            simulator.run(circuit, [0.1, 0.2])

    def test_rx_rotation_angle(self, simulator):
        theta = 1.1
        state = simulator.run(QuantumCircuit(1).rx(0), [theta])
        assert state.probability_of("1") == pytest.approx(np.sin(theta / 2) ** 2)

    def test_initial_state(self, simulator):
        circuit = QuantumCircuit(2).cx(0, 1)
        initial = Statevector.basis_state("10")
        state = simulator.run(circuit, initial_state=initial)
        assert state.probability_of("11") == pytest.approx(1.0)

    def test_initial_state_qubit_mismatch(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(
                QuantumCircuit(2).h(0), initial_state=Statevector.zero_state(3)
            )

    def test_initial_state_not_mutated(self, simulator):
        initial = Statevector.zero_state(1)
        before = initial.data.copy()
        simulator.run(QuantumCircuit(1).x(0), initial_state=initial)
        assert np.allclose(initial.data, before)


class TestExpectation:
    def test_z_expectation_zero_state(self, simulator):
        circuit = QuantumCircuit(1).h(0).h(0)  # identity
        z = PauliString(1, "Z")
        assert simulator.expectation(circuit, z) == pytest.approx(1.0)

    def test_zz_on_bell(self, simulator, bell_circuit):
        assert simulator.expectation(
            bell_circuit, PauliString(2, "ZZ")
        ) == pytest.approx(1.0)
        assert simulator.expectation(
            bell_circuit, PauliString(2, "XX")
        ) == pytest.approx(1.0)
        assert simulator.expectation(
            bell_circuit, PauliString(2, {0: "Z"})
        ) == pytest.approx(0.0)

    def test_projector_expectation(self, simulator, bell_circuit):
        assert simulator.expectation(
            bell_circuit, zero_projector(2)
        ) == pytest.approx(0.5)

    def test_ry_z_expectation(self, simulator):
        theta = 0.6
        value = simulator.expectation(
            QuantumCircuit(1).ry(0), PauliString(1, "Z"), [theta]
        )
        assert value == pytest.approx(np.cos(theta))


class TestShotBasedExpectation:
    def test_projector_sampling_converges(self, simulator, bell_circuit):
        estimate = simulator.expectation(
            bell_circuit, zero_projector(2), shots=20000, seed=0
        )
        assert estimate == pytest.approx(0.5, abs=0.02)

    def test_diagonal_pauli_sampling(self, simulator):
        theta = 0.9
        exact = np.cos(theta)
        estimate = simulator.expectation(
            QuantumCircuit(1).ry(0), PauliString(1, "Z"), [theta],
            shots=40000, seed=1,
        )
        assert estimate == pytest.approx(exact, abs=0.02)

    def test_x_pauli_sampling_uses_rotation(self, simulator):
        # <X> on |+> is 1; sampling must rotate to the Z basis to see it.
        circuit = QuantumCircuit(1).h(0)
        estimate = simulator.expectation(
            circuit, PauliString(1, "X"), shots=5000, seed=2
        )
        assert estimate == pytest.approx(1.0)

    def test_y_pauli_sampling(self, simulator):
        # S|+> = (|0> + i|1>)/sqrt(2) has <Y> = 1.
        circuit = QuantumCircuit(1).h(0).s(0)
        estimate = simulator.expectation(
            circuit, PauliString(1, "Y"), shots=5000, seed=3
        )
        assert estimate == pytest.approx(1.0)

    def test_pauli_sum_sampling(self, simulator, bell_circuit):
        observable = PauliSum(
            [PauliString(2, "ZZ"), PauliString(2, "XX", coefficient=2.0)]
        )
        estimate = simulator.expectation(
            bell_circuit, observable, shots=20000, seed=4
        )
        assert estimate == pytest.approx(3.0, abs=0.05)

    def test_identity_term_sampling(self, simulator):
        observable = PauliString(1, "I", coefficient=1.5)
        estimate = simulator.expectation(
            QuantumCircuit(1).h(0), observable, shots=10, seed=5
        )
        assert estimate == pytest.approx(1.5)

    def test_invalid_shots(self, simulator, bell_circuit):
        with pytest.raises(ValueError):
            simulator.expectation(
                bell_circuit, zero_projector(2), shots=0, seed=0
            )


class TestProbabilitiesAndSampling:
    def test_probabilities(self, simulator, bell_circuit):
        probs = simulator.probabilities(bell_circuit)
        assert np.allclose(probs, [0.5, 0.0, 0.0, 0.5])

    def test_sample_shape(self, simulator, bell_circuit):
        bits = simulator.sample(bell_circuit, shots=64, seed=0)
        assert bits.shape == (64, 2)
        # Bell correlations: both bits always equal.
        assert np.all(bits[:, 0] == bits[:, 1])


class TestUnitary:
    def test_unitary_of_h(self, simulator):
        unitary = simulator.unitary(QuantumCircuit(1).h(0))
        expected = np.array([[1, 1], [1, -1]]) / np.sqrt(2)
        assert np.allclose(unitary, expected)

    def test_unitary_is_unitary(self, simulator, small_trainable_circuit):
        params = np.linspace(0.1, 1.2, small_trainable_circuit.num_parameters)
        unitary = simulator.unitary(small_trainable_circuit, params)
        dim = 2**small_trainable_circuit.num_qubits
        assert np.allclose(unitary @ unitary.conj().T, np.eye(dim), atol=1e-10)

    def test_unitary_consistent_with_run(self, simulator, bell_circuit):
        unitary = simulator.unitary(bell_circuit)
        state = simulator.run(bell_circuit)
        assert np.allclose(unitary[:, 0], state.data)
