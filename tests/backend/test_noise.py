"""Unit tests for noise channels and the trajectory simulator."""

import numpy as np
import pytest

from repro.backend import (
    KrausChannel,
    NoiseModel,
    PauliString,
    QuantumCircuit,
    TrajectorySimulator,
    amplitude_damping,
    bit_flip,
    channel_from_dict,
    depolarizing,
    phase_damping,
    phase_flip,
    resolve_noise_model,
)


class TestChannels:
    @pytest.mark.parametrize(
        "factory,arg",
        [
            (bit_flip, 0.1),
            (phase_flip, 0.25),
            (depolarizing, 0.3),
            (amplitude_damping, 0.4),
            (phase_damping, 0.2),
        ],
    )
    def test_trace_preserving(self, factory, arg):
        channel = factory(arg)
        dim = 2**channel.num_qubits
        total = sum(
            k.conj().T @ k for k in channel.kraus_operators
        )
        assert np.allclose(total, np.eye(dim))

    def test_rejects_non_tp(self):
        with pytest.raises(ValueError):
            KrausChannel("bad", [np.eye(2) * 0.5])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            KrausChannel("empty", [])

    def test_rejects_invalid_probability(self):
        with pytest.raises(ValueError):
            bit_flip(1.5)
        with pytest.raises(ValueError):
            depolarizing(-0.1)

    def test_zero_probability_bit_flip_first_kraus_is_identity(self):
        channel = bit_flip(0.0)
        assert np.allclose(channel.kraus_operators[0], np.eye(2))

    def test_is_trivial(self):
        identity = KrausChannel("id", [np.eye(2)])
        assert identity.is_trivial
        assert not bit_flip(0.2).is_trivial

    def test_zero_probability_factory_channels_are_trivial(self):
        # depolarizing(0.0) carries extra all-zero Kraus operators; the
        # channel is still exactly the identity map.
        assert depolarizing(0.0).is_trivial
        assert bit_flip(0.0).is_trivial
        assert amplitude_damping(0.0).is_trivial

    def test_rejects_non_power_of_two_dimension(self):
        # A 3x3 "qutrit" map has no qubit count; it must fail at
        # construction, not produce num_qubits = log2(3).
        with pytest.raises(ValueError, match="power of two"):
            KrausChannel("qutrit", [np.eye(3)])
        with pytest.raises(ValueError, match="power of two"):
            KrausChannel("six", [np.eye(6)])

    def test_rejects_one_by_one(self):
        with pytest.raises(ValueError, match="power of two"):
            KrausChannel("scalar", [np.eye(1)])

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            KrausChannel("rect", [np.ones((2, 4))])

    def test_num_qubits_from_dimension(self):
        assert bit_flip(0.1).num_qubits == 1
        cx_noise = KrausChannel("id4", [np.eye(4)])
        assert cx_noise.num_qubits == 2
        assert KrausChannel("id8", [np.eye(8)]).num_qubits == 3


class TestChannelSerialization:
    @pytest.mark.parametrize(
        "factory,key,value",
        [
            (bit_flip, "probability", 0.1),
            (phase_flip, "probability", 0.25),
            (depolarizing, "probability", 0.3),
            (amplitude_damping, "gamma", 0.4),
            (phase_damping, "gamma", 0.2),
        ],
    )
    def test_factory_round_trip(self, factory, key, value):
        channel = factory(value)
        payload = channel.to_dict()
        assert payload[key] == value
        rebuilt = channel_from_dict(payload)
        assert rebuilt.name == channel.name
        for a, b in zip(rebuilt.kraus_operators, channel.kraus_operators):
            assert np.allclose(a, b)

    def test_custom_kraus_has_no_spec(self):
        channel = KrausChannel("custom", [np.eye(2)])
        with pytest.raises(ValueError, match="custom"):
            channel.to_dict()

    def test_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown"):
            channel_from_dict({"name": "cosmic_ray", "probability": 0.1})

    def test_rejects_bad_keys(self):
        with pytest.raises(ValueError):
            channel_from_dict({"name": "bit_flip", "gamma": 0.1})
        with pytest.raises(ValueError):
            channel_from_dict({"name": "bit_flip"})
        with pytest.raises(ValueError):
            channel_from_dict("bit_flip")


class TestNoiseModel:
    def test_default_applies_everywhere(self):
        model = NoiseModel(default=bit_flip(0.1))
        assert model.channel_for("H") is model.default
        assert model.channel_for("CZ") is model.default

    def test_per_gate_override(self):
        special = phase_flip(0.3)
        model = NoiseModel(default=bit_flip(0.1), per_gate={"cz": special})
        assert model.channel_for("CZ") is special
        assert model.channel_for("H") is model.default

    def test_explicit_none_disables(self):
        model = NoiseModel(default=bit_flip(0.1), per_gate={"H": None})
        assert model.channel_for("H") is None

    def test_is_trivial(self):
        assert NoiseModel().is_trivial
        assert not NoiseModel(default=bit_flip(0.5)).is_trivial

    def test_readout_error_alone_is_not_trivial(self):
        model = NoiseModel(readout_error=0.05)
        assert not model.is_trivial
        assert model.to_dict() == {"readout_error": 0.05}

    def test_rejects_invalid_readout_error(self):
        with pytest.raises(ValueError):
            NoiseModel(readout_error=1.5)
        with pytest.raises(ValueError):
            NoiseModel(readout_error=-0.1)

    def test_to_dict_round_trip(self):
        model = NoiseModel(
            default=depolarizing(0.02),
            per_gate={"CX": amplitude_damping(0.1), "H": None},
            readout_error=0.03,
        )
        payload = model.to_dict()
        rebuilt = NoiseModel.from_dict(payload)
        assert rebuilt.to_dict() == payload
        assert rebuilt.readout_error == 0.03
        assert rebuilt.channel_for("H") is None
        assert rebuilt.channel_for("CX").name == "amplitude_damping"
        assert rebuilt.channel_for("RX").name == "depolarizing"

    def test_trivial_model_serializes_empty(self):
        assert NoiseModel().to_dict() == {}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown"):
            NoiseModel.from_dict({"channels": {}})

    def test_resolve_noise_model(self):
        assert resolve_noise_model(None) is None
        assert resolve_noise_model({}) is None
        assert (
            resolve_noise_model(
                {"default": {"name": "depolarizing", "probability": 0.0}}
            )
            is None
        )
        model = resolve_noise_model(
            {"default": {"name": "bit_flip", "probability": 0.1}}
        )
        assert isinstance(model, NoiseModel)
        existing = NoiseModel(default=bit_flip(0.1))
        assert resolve_noise_model(existing) is existing
        assert resolve_noise_model(NoiseModel()) is None


class TestTrajectorySimulator:
    def test_noiseless_model_matches_exact(self, simulator, bell_circuit):
        trajectory = TrajectorySimulator(NoiseModel())
        state = trajectory.run_trajectory(bell_circuit, seed=0)
        exact = simulator.run(bell_circuit)
        assert state.allclose(exact)

    def test_certain_bit_flip(self):
        trajectory = TrajectorySimulator(NoiseModel(default=bit_flip(1.0)))
        circuit = QuantumCircuit(1).h(0).h(0)  # identity up to noise
        state = trajectory.run_trajectory(circuit, seed=1)
        # Two H gates, each followed by a certain X: X H X H |0> = |1>... the
        # net effect must be a deterministic basis state.
        assert state.norm() == pytest.approx(1.0)

    def test_amplitude_damping_full_decay(self):
        trajectory = TrajectorySimulator(
            NoiseModel(default=amplitude_damping(1.0))
        )
        circuit = QuantumCircuit(1).x(0)
        state = trajectory.run_trajectory(circuit, seed=2)
        # gamma=1 relaxes |1> straight back to |0>.
        assert state.probability_of("0") == pytest.approx(1.0)

    def test_depolarizing_shrinks_z_expectation(self):
        p = 0.2
        trajectory = TrajectorySimulator(NoiseModel(default=depolarizing(p)))
        circuit = QuantumCircuit(1).x(0)  # <Z> = -1 noiseless
        estimate = trajectory.expectation(
            circuit, PauliString(1, "Z"), trajectories=3000, seed=3
        )
        expected = -(1.0 - 4.0 * p / 3.0)
        assert estimate == pytest.approx(expected, abs=0.05)

    def test_expectation_reproducible(self, bell_circuit):
        trajectory = TrajectorySimulator(NoiseModel(default=bit_flip(0.05)))
        obs = PauliString(2, "ZZ")
        a = trajectory.expectation(bell_circuit, obs, trajectories=50, seed=7)
        b = trajectory.expectation(bell_circuit, obs, trajectories=50, seed=7)
        assert a == pytest.approx(b)

    def test_trainable_circuit_needs_params(self):
        trajectory = TrajectorySimulator(NoiseModel())
        with pytest.raises(ValueError):
            trajectory.run_trajectory(QuantumCircuit(1).rx(0), seed=0)

    def test_missing_params_error_matches_statevector_wording(self):
        trajectory = TrajectorySimulator(NoiseModel())
        circuit = QuantumCircuit(2).rx(0).ry(1)
        with pytest.raises(
            ValueError, match="2 trainable parameters but none were supplied"
        ):
            trajectory.run_trajectory(circuit, seed=0)

    def test_wrong_param_count_rejected(self):
        trajectory = TrajectorySimulator(NoiseModel())
        circuit = QuantumCircuit(2).rx(0).ry(1)
        with pytest.raises(ValueError, match="expected 2 parameters, got 3"):
            trajectory.run_trajectory(circuit, params=[0.1, 0.2, 0.3], seed=0)
        with pytest.raises(ValueError, match="expected 2 parameters, got 1"):
            trajectory.expectation(
                circuit, PauliString(2, "ZZ"), params=[0.1], trajectories=2
            )

    def test_parameterized_noisy_run(self):
        trajectory = TrajectorySimulator(NoiseModel(default=phase_damping(0.1)))
        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1)
        state = trajectory.run_trajectory(circuit, params=[0.3, 0.8], seed=4)
        assert state.norm() == pytest.approx(1.0)

    def test_invalid_trajectories(self, bell_circuit):
        trajectory = TrajectorySimulator(NoiseModel())
        with pytest.raises(ValueError):
            trajectory.expectation(
                bell_circuit, PauliString(2, "ZZ"), trajectories=0
            )
