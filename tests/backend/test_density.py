"""Unit tests for exact density-matrix simulation."""

import numpy as np
import pytest

from repro.backend import (
    NoiseModel,
    PauliString,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    TrajectorySimulator,
    amplitude_damping,
    bit_flip,
    depolarizing,
    zero_projector,
)
from repro.backend.density import DensityMatrix, DensityMatrixSimulator


class TestDensityMatrix:
    def test_zero_state(self):
        rho = DensityMatrix.zero_state(2)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.data[0, 0] == pytest.approx(1.0)

    def test_from_statevector(self):
        state = Statevector.random_state(3, seed=0)
        rho = DensityMatrix.from_statevector(state)
        assert rho.purity() == pytest.approx(1.0)
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)

    def test_maximally_mixed(self):
        rho = DensityMatrix.maximally_mixed(3)
        assert rho.trace() == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0 / 8.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(4))  # trace 4
        with pytest.raises(ValueError):
            DensityMatrix(np.array([[0.5, 0.5j], [0.5j, 0.5]]))  # not Hermitian
        with pytest.raises(ValueError):
            DensityMatrix(np.eye(3) / 3.0)  # not power of 2

    def test_rejects_one_by_one(self):
        # A 1x1 "density matrix" has zero qubits: np.log2(1) == 0 slipped
        # through the old power-of-two check.
        with pytest.raises(ValueError):
            DensityMatrix(np.array([[1.0]]))

    def test_rejects_non_square_and_non_matrix(self):
        with pytest.raises(ValueError):
            DensityMatrix(np.ones((2, 4)) / 4.0)
        with pytest.raises(ValueError):
            DensityMatrix(np.array([0.5, 0.5]))

    def test_two_by_two_boundary_accepted(self):
        rho = DensityMatrix(np.eye(2) / 2.0)
        assert rho.num_qubits == 1

    def test_expectation_matches_statevector(self):
        state = Statevector.random_state(3, seed=1)
        rho = DensityMatrix.from_statevector(state)
        obs = PauliString(3, "ZXY", coefficient=0.7)
        assert rho.expectation(obs) == pytest.approx(obs.expectation(state))

    def test_probabilities_match_statevector(self):
        state = Statevector.random_state(2, seed=2)
        rho = DensityMatrix.from_statevector(state)
        assert np.allclose(rho.probabilities(), state.probabilities())

    def test_apply_unitary_arbitrary_qubit(self):
        from repro.backend.gates import get_gate

        sim = StatevectorSimulator()
        circuit = QuantumCircuit(3).h(1)
        state = sim.run(circuit)
        rho = DensityMatrix.zero_state(3).apply_unitary(
            get_gate("H").matrix(), [1]
        )
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)

    def test_apply_two_qubit_unitary_out_of_order(self):
        from repro.backend.gates import get_gate

        sim = StatevectorSimulator()
        circuit = QuantumCircuit(3).x(2).cx(2, 0)
        state = sim.run(circuit)
        rho = DensityMatrix.zero_state(3)
        rho = rho.apply_unitary(get_gate("X").matrix(), [2])
        rho = rho.apply_unitary(get_gate("CX").matrix(), [2, 0])
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)

    def test_full_depolarizing_gives_maximally_mixed_qubit(self):
        rho = DensityMatrix.zero_state(1).apply_channel(depolarizing(0.75), [0])
        # p=3/4 depolarizing is the fully-depolarizing channel.
        assert np.allclose(rho.data, np.eye(2) / 2.0, atol=1e-12)


class TestDensityMatrixSimulator:
    def test_noiseless_matches_statevector(self, simulator, bell_circuit):
        rho = DensityMatrixSimulator().run(bell_circuit)
        state = simulator.run(bell_circuit)
        assert rho.fidelity_with_pure(state) == pytest.approx(1.0)
        assert rho.purity() == pytest.approx(1.0)

    def test_noise_reduces_purity(self, bell_circuit):
        noisy = DensityMatrixSimulator(NoiseModel(default=bit_flip(0.1)))
        rho = noisy.run(bell_circuit)
        assert rho.purity() < 1.0
        assert rho.trace() == pytest.approx(1.0)

    def test_depolarizing_z_expectation_analytic(self):
        """One X gate then depolarizing(p): <Z> = -(1 - 4p/3)."""
        p = 0.15
        noisy = DensityMatrixSimulator(NoiseModel(default=depolarizing(p)))
        value = noisy.expectation(QuantumCircuit(1).x(0), PauliString(1, "Z"))
        assert value == pytest.approx(-(1.0 - 4.0 * p / 3.0))

    def test_amplitude_damping_analytic(self):
        """|1> after damping(g): <Z> = 1 - 2(1-g)."""
        g = 0.3
        noisy = DensityMatrixSimulator(
            NoiseModel(default=amplitude_damping(g))
        )
        value = noisy.expectation(QuantumCircuit(1).x(0), PauliString(1, "Z"))
        assert value == pytest.approx(1.0 - 2.0 * (1.0 - g))

    def test_trajectory_simulator_converges_to_density_matrix(self):
        """The MC sampler's mean must approach the exact DM value."""
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rx(0, value=0.4)
        model = NoiseModel(default=depolarizing(0.05))
        obs = PauliString(2, "ZZ")
        exact = DensityMatrixSimulator(model).expectation(circuit, obs)
        sampled = TrajectorySimulator(model).expectation(
            circuit, obs, trajectories=4000, seed=3
        )
        assert sampled == pytest.approx(exact, abs=0.05)

    def test_parameterized_circuit(self):
        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1)
        noisy = DensityMatrixSimulator(NoiseModel(default=bit_flip(0.02)))
        value = noisy.expectation(circuit, zero_projector(2), [0.3, 0.7])
        assert 0.0 <= value <= 1.0

    def test_trainable_circuit_needs_params(self):
        with pytest.raises(ValueError):
            DensityMatrixSimulator().run(QuantumCircuit(1).rx(0))

    def test_missing_params_error_matches_statevector_wording(self):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        with pytest.raises(
            ValueError, match="2 trainable parameters but none were supplied"
        ):
            DensityMatrixSimulator().run(circuit)

    def test_wrong_param_count_rejected(self):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        with pytest.raises(ValueError, match="expected 2 parameters, got 1"):
            DensityMatrixSimulator().run(circuit, params=[0.1])
        with pytest.raises(ValueError, match="expected 2 parameters, got 3"):
            DensityMatrixSimulator().run(circuit, params=[0.1, 0.2, 0.3])

    def test_initial_state_override(self):
        rho0 = DensityMatrix.maximally_mixed(1)
        out = DensityMatrixSimulator().run(QuantumCircuit(1).h(0), initial_state=rho0)
        # H on the maximally mixed state leaves it maximally mixed.
        assert np.allclose(out.data, np.eye(2) / 2.0, atol=1e-12)
