"""Unit tests for shot-based (stochastic) parameter-shift gradients and
non-finite parameter validation."""

import numpy as np
import pytest

from repro.backend import (
    PauliString,
    QuantumCircuit,
    StatevectorSimulator,
    parameter_shift,
    zero_projector,
)


class TestShotBasedParameterShift:
    def test_converges_to_exact(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        theta = 0.8
        exact = parameter_shift(circuit, obs, [theta], simulator)
        noisy = parameter_shift(
            circuit, obs, [theta], simulator, shots=40000, seed=0
        )
        assert noisy[0] == pytest.approx(exact[0], abs=0.02)

    def test_stochastic_across_seeds(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        a = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=1)
        b = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=2)
        assert a[0] != b[0]

    def test_reproducible_with_seed(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        a = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=5)
        b = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=5)
        assert a[0] == pytest.approx(b[0])

    def test_multi_parameter_shot_gradient(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1)
        obs = zero_projector(2)
        params = np.array([0.4, 1.2])
        exact = parameter_shift(circuit, obs, params, simulator)
        noisy = parameter_shift(
            circuit, obs, params, simulator, shots=30000, seed=3
        )
        assert np.allclose(noisy, exact, atol=0.03)


class TestNonFiniteParameterValidation:
    def test_nan_rejected(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError, match="NaN or infinity"):
            simulator.run(circuit, [float("nan")])

    def test_inf_rejected(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError, match="NaN or infinity"):
            simulator.expectation(circuit, zero_projector(1), [float("inf")])

    def test_finite_accepted(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        state = simulator.run(circuit, [1e300 % (2 * np.pi)])
        assert state.norm() == pytest.approx(1.0)
