"""Unit tests for shot-based (stochastic) parameter-shift gradients —
sequential and batched — and non-finite parameter validation."""

import numpy as np
import pytest

from repro.backend import (
    PauliString,
    QuantumCircuit,
    StatevectorSimulator,
    parameter_shift,
    zero_projector,
)
from repro.backend.gradients import (
    batch_parameter_shift,
    batch_parameter_shift_value_and_gradient,
)
from repro.backend.observables import total_z
from repro.utils.rng import ensure_rng, spawn_seeds


class TestShotBasedParameterShift:
    def test_converges_to_exact(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        theta = 0.8
        exact = parameter_shift(circuit, obs, [theta], simulator)
        noisy = parameter_shift(
            circuit, obs, [theta], simulator, shots=40000, seed=0
        )
        assert noisy[0] == pytest.approx(exact[0], abs=0.02)

    def test_stochastic_across_seeds(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        a = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=1)
        b = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=2)
        assert a[0] != b[0]

    def test_reproducible_with_seed(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        a = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=5)
        b = parameter_shift(circuit, obs, [0.8], simulator, shots=100, seed=5)
        assert a[0] == pytest.approx(b[0])

    def test_multi_parameter_shot_gradient(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1)
        obs = zero_projector(2)
        params = np.array([0.4, 1.2])
        exact = parameter_shift(circuit, obs, params, simulator)
        noisy = parameter_shift(
            circuit, obs, params, simulator, shots=30000, seed=3
        )
        assert np.allclose(noisy, exact, atol=0.03)


class TestBatchedShotParameterShift:
    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(2)
        circuit.rx(0).ry(1).cz(0, 1).ry(0).rx(1)
        return circuit

    @pytest.fixture
    def params_batch(self, circuit):
        rng = np.random.default_rng(17)
        return rng.uniform(0, 2 * np.pi, (4, circuit.num_parameters))

    @pytest.mark.parametrize(
        "observable", [zero_projector(2), total_z(2)], ids=["projector", "sum"]
    )
    def test_rows_match_sequential_with_spawned_children(
        self, simulator, circuit, params_batch, observable
    ):
        children = spawn_seeds(41, params_batch.shape[0])
        grads = batch_parameter_shift(
            circuit, observable, params_batch, simulator, shots=90, seed=41
        )
        for b in range(params_batch.shape[0]):
            reference = parameter_shift(
                circuit,
                observable,
                params_batch[b],
                simulator,
                shots=90,
                seed=ensure_rng(children[b]),
            )
            assert np.array_equal(grads[b], reference)

    def test_param_subset_and_single_row(self, simulator, circuit, params_batch):
        observable = zero_projector(2)
        (child,) = spawn_seeds(3, 1)
        grad = batch_parameter_shift(
            circuit,
            observable,
            params_batch[0],
            simulator,
            param_indices=[2],
            shots=60,
            seed=3,
        )
        reference = parameter_shift(
            circuit,
            observable,
            params_batch[0],
            simulator,
            param_indices=[2],
            shots=60,
            seed=ensure_rng(child),
        )
        assert grad.shape == (1,)
        assert np.array_equal(grad, reference)

    def test_fused_value_and_gradient_matches_sequential_stream(
        self, simulator, circuit, params_batch
    ):
        """Row b consumes its child value-first then shifts — the same
        order the sequential expectation + parameter_shift pair uses."""
        observable = total_z(2)
        children = spawn_seeds(13, params_batch.shape[0])
        values, grads = batch_parameter_shift_value_and_gradient(
            circuit, observable, params_batch, simulator, shots=70, seed=13
        )
        for b in range(params_batch.shape[0]):
            rng = ensure_rng(children[b])
            value = simulator.expectation(
                circuit, observable, params_batch[b], shots=70, seed=rng
            )
            reference = parameter_shift(
                circuit, observable, params_batch[b], simulator,
                shots=70, seed=rng,
            )
            assert values[b] == value
            assert np.array_equal(grads[b], reference)

    def test_sampled_gradient_is_unbiased(
        self, simulator, circuit, params_batch, assert_unbiased_estimator
    ):
        observable = zero_projector(2)
        exact = parameter_shift(circuit, observable, params_batch[0], simulator)
        estimates = [
            parameter_shift(
                circuit,
                observable,
                params_batch[0],
                simulator,
                shots=48,
                seed=seed,
            )[0]
            for seed in range(200)
        ]
        assert_unbiased_estimator(estimates, exact[0])

    def test_sampled_gradient_variance_scales(
        self, simulator, circuit, params_batch,
        assert_variance_scales_inverse_shots,
    ):
        observable = zero_projector(2)
        assert_variance_scales_inverse_shots(
            lambda shots, seed: parameter_shift(
                circuit,
                observable,
                params_batch[1],
                simulator,
                param_indices=[0],
                shots=shots,
                seed=seed,
            )[0]
        )


class TestNonFiniteParameterValidation:
    def test_nan_rejected(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError, match="NaN or infinity"):
            simulator.run(circuit, [float("nan")])

    def test_inf_rejected(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError, match="NaN or infinity"):
            simulator.expectation(circuit, zero_projector(1), [float("inf")])

    def test_finite_accepted(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        state = simulator.run(circuit, [1e300 % (2 * np.pi)])
        assert state.norm() == pytest.approx(1.0)
