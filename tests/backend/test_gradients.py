"""Unit tests for the gradient engines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import (
    PauliString,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    adjoint_gradient,
    finite_difference,
    get_gradient_fn,
    parameter_shift,
    zero_projector,
)
from repro.backend.gradients import GRADIENT_ENGINES

from tests.conftest import random_angles


class TestAnalyticCases:
    def test_ry_z_gradient(self, simulator):
        """d<Z>/dtheta for RY|0> is -sin(theta)."""
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        for theta in (0.0, 0.5, 1.7, -2.3):
            grad = parameter_shift(circuit, obs, [theta], simulator)
            assert grad[0] == pytest.approx(-np.sin(theta), abs=1e-10)

    def test_rx_projector_gradient(self, simulator):
        """d p0 / dtheta for RX|0> is -sin(theta)/2."""
        circuit = QuantumCircuit(1).rx(0)
        obs = zero_projector(1)
        theta = 0.8
        grad = adjoint_gradient(circuit, obs, [theta], simulator)
        assert grad[0] == pytest.approx(-np.sin(theta) / 2.0, abs=1e-10)

    def test_rz_on_zero_state_has_zero_gradient(self, simulator):
        """RZ only adds phase to |0>, so every engine must return 0."""
        circuit = QuantumCircuit(1).rz(0)
        obs = zero_projector(1)
        for engine in ("parameter_shift", "adjoint"):
            grad = get_gradient_fn(engine)(circuit, obs, [0.7], simulator)
            assert grad[0] == pytest.approx(0.0, abs=1e-12)


class TestEngineAgreement:
    def test_three_engines_agree(self, simulator, small_trainable_circuit):
        params = random_angles(small_trainable_circuit, seed=5)
        obs = zero_projector(3)
        ps = parameter_shift(small_trainable_circuit, obs, params, simulator)
        adj = adjoint_gradient(small_trainable_circuit, obs, params, simulator)
        fd = finite_difference(small_trainable_circuit, obs, params, simulator)
        assert np.allclose(ps, adj, atol=1e-10)
        assert np.allclose(ps, fd, atol=1e-5)

    def test_agreement_with_pauli_sum_observable(self, simulator):
        from repro.backend import total_z

        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1).ry(0)
        params = np.array([0.3, -0.9, 1.4])
        obs = total_z(2)
        ps = parameter_shift(circuit, obs, params, simulator)
        adj = adjoint_gradient(circuit, obs, params, simulator)
        assert np.allclose(ps, adj, atol=1e-10)

    def test_agreement_with_initial_state(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        params = np.array([0.4, 1.1])
        initial = Statevector.basis_state("10")
        obs = zero_projector(2)
        ps = parameter_shift(
            circuit, obs, params, simulator, initial_state=initial
        )
        adj = adjoint_gradient(
            circuit, obs, params, simulator, initial_state=initial
        )
        fd = finite_difference(
            circuit, obs, params, simulator, initial_state=initial
        )
        assert np.allclose(ps, adj, atol=1e-10)
        assert np.allclose(ps, fd, atol=1e-5)

    def test_adjoint_handles_controlled_rotation(self, simulator):
        circuit = QuantumCircuit(2).h(0).crx(0, 1)
        params = np.array([0.9])
        obs = PauliString(2, {1: "Z"})
        adj = adjoint_gradient(circuit, obs, params, simulator)
        fd = finite_difference(circuit, obs, params, simulator)
        assert np.allclose(adj, fd, atol=1e-5)

    @pytest.mark.parametrize("gate", ["crx", "cry", "crz"])
    def test_four_term_rule_for_controlled_rotations(self, simulator, gate):
        """Controlled rotations use the exact 4-term shift rule."""
        circuit = QuantumCircuit(2).h(0).ry(1, value=0.3)
        getattr(circuit, gate)(0, 1)
        for theta in (0.0, 0.7, -1.9, 2.4):
            ps = parameter_shift(circuit, zero_projector(2), [theta], simulator)
            adj = adjoint_gradient(circuit, zero_projector(2), [theta], simulator)
            assert ps[0] == pytest.approx(adj[0], abs=1e-10)


class TestParamSubsets:
    def test_subset_indices(self, simulator, small_trainable_circuit):
        params = random_angles(small_trainable_circuit, seed=6)
        obs = zero_projector(3)
        full = adjoint_gradient(small_trainable_circuit, obs, params, simulator)
        subset = adjoint_gradient(
            small_trainable_circuit, obs, params, simulator,
            param_indices=[0, 5, 11],
        )
        assert np.allclose(subset, full[[0, 5, 11]], atol=1e-12)

    def test_last_parameter_only(self, simulator, small_trainable_circuit):
        params = random_angles(small_trainable_circuit, seed=7)
        obs = zero_projector(3)
        last = small_trainable_circuit.num_parameters - 1
        ps = parameter_shift(
            small_trainable_circuit, obs, params, simulator, param_indices=[last]
        )
        full = parameter_shift(small_trainable_circuit, obs, params, simulator)
        assert ps.shape == (1,)
        assert ps[0] == pytest.approx(full[last])

    def test_subset_preserves_requested_order(self, simulator):
        circuit = QuantumCircuit(1).rx(0).ry(0)
        params = np.array([0.3, 0.8])
        obs = zero_projector(1)
        forward = parameter_shift(
            circuit, obs, params, simulator, param_indices=[0, 1]
        )
        reversed_ = parameter_shift(
            circuit, obs, params, simulator, param_indices=[1, 0]
        )
        assert np.allclose(forward, reversed_[::-1])

    def test_out_of_range_index(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(IndexError):
            parameter_shift(
                circuit, zero_projector(1), [0.1], simulator, param_indices=[3]
            )


class TestFiniteDifference:
    def test_forward_scheme(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        obs = PauliString(1, "Z")
        theta = 0.4
        grad = finite_difference(
            circuit, obs, [theta], simulator, scheme="forward", step=1e-7
        )
        assert grad[0] == pytest.approx(-np.sin(theta), abs=1e-5)

    def test_invalid_scheme(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        with pytest.raises(ValueError):
            finite_difference(
                circuit, PauliString(1, "Z"), [0.1], simulator, scheme="bogus"
            )


class TestEngineRegistry:
    def test_known_engines(self):
        assert set(GRADIENT_ENGINES) == {
            "parameter_shift",
            "batch_parameter_shift",
            "adjoint",
            "batch_adjoint",
            "finite_difference",
        }

    def test_get_gradient_fn(self):
        assert get_gradient_fn("adjoint") is adjoint_gradient

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            get_gradient_fn("autograd")


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), num_qubits=st.integers(1, 4))
def test_engines_agree_on_random_circuits(seed, num_qubits):
    """Property: parameter-shift == adjoint on random HEA circuits."""
    gen = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    for _ in range(2):
        for q in range(num_qubits):
            gate = ["rx", "ry", "rz"][gen.integers(3)]
            getattr(circuit, gate)(q)
        for q in range(num_qubits - 1):
            circuit.cz(q, q + 1)
    params = gen.uniform(0, 2 * np.pi, circuit.num_parameters)
    obs = zero_projector(num_qubits)
    simulator = StatevectorSimulator()
    ps = parameter_shift(circuit, obs, params, simulator)
    adj = adjoint_gradient(circuit, obs, params, simulator)
    assert np.allclose(ps, adj, atol=1e-9)
