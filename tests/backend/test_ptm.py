"""Batched Pauli-transfer simulator: unit + cross-simulator agreement.

The PTM engine is the batched noisy path, so its oracle coverage is the
point of this module:

* exact agreement (per-row tolerance) with the per-circuit
  :class:`DensityMatrixSimulator` on the same noise model;
* statistical agreement (z-test) with the Monte-Carlo
  :class:`TrajectorySimulator`;
* noiseless agreement with the statevector kernels, and trivial-noise
  *routing* identity (``resolve_noise_model`` sends trivial models to
  the noiseless path, so results are bit-identical by construction);
* the shift-rule gradient engines running unchanged on the PTM
  duck-type surface.
"""

import numpy as np
import pytest

from repro.backend import (
    NoiseModel,
    PauliString,
    PauliSum,
    PauliTransferSimulator,
    QuantumCircuit,
    StatevectorSimulator,
    TrajectorySimulator,
    amplitude_damping,
    bit_flip,
    depolarizing,
    density_from_pauli_vector,
    parameter_shift,
    batch_parameter_shift,
    pauli_basis,
    pauli_vector_from_density,
    phase_damping,
    ptm_of_channel,
    ptm_of_unitary,
    ptm_of_unitary_batch,
    zero_projector,
)
from repro.backend.density import DensityMatrix, DensityMatrixSimulator
from repro.backend.gates import get_gate

from tests.conftest import random_angles


def _noisy_model() -> NoiseModel:
    return NoiseModel(
        default=depolarizing(0.03),
        per_gate={"CX": amplitude_damping(0.08), "CZ": phase_damping(0.05)},
    )


class TestPtmPrimitives:
    def test_pauli_basis_orthogonality(self):
        for n in (1, 2):
            basis = pauli_basis(n)
            dim = 2**n
            gram = np.einsum("iab,jba->ij", basis, basis)
            assert np.allclose(gram, dim * np.eye(4**n))

    def test_ptm_of_hadamard(self):
        # H swaps X<->Z and negates Y in the Heisenberg picture.
        ptm = ptm_of_unitary(get_gate("H").matrix())
        expected = np.zeros((4, 4))
        expected[0, 0] = 1.0  # I -> I
        expected[1, 3] = 1.0  # Z -> X
        expected[3, 1] = 1.0  # X -> Z
        expected[2, 2] = -1.0  # Y -> -Y
        assert np.allclose(ptm, expected)

    def test_ptm_is_real(self):
        for name in ("H", "S", "T", "CX", "CZ"):
            ptm = ptm_of_unitary(get_gate(name).matrix())
            assert np.allclose(ptm.imag, 0.0)

    def test_batch_ptm_matches_single(self):
        gate = get_gate("RY")
        thetas = np.array([0.1, 0.7, 2.9])
        stacked = ptm_of_unitary_batch(gate.matrix_batch(thetas))
        for b, theta in enumerate(thetas):
            assert np.allclose(stacked[b], ptm_of_unitary(gate.matrix(theta)))

    def test_channel_ptm_trace_preservation(self):
        # Row 0 of a TP channel's PTM is [1, 0, 0, ...]: identity maps to
        # identity and nothing leaks into it.
        for channel in (bit_flip(0.2), depolarizing(0.3), amplitude_damping(0.4)):
            ptm = ptm_of_channel(channel)
            assert np.allclose(ptm[0], np.eye(4**channel.num_qubits)[0])

    def test_pauli_vector_density_round_trip(self):
        rho = DensityMatrixSimulator(_noisy_model()).run(
            QuantumCircuit(2).h(0).cx(0, 1)
        )
        vector = pauli_vector_from_density(rho)
        assert np.allclose(vector.imag, 0.0)
        back = density_from_pauli_vector(vector, 2)
        assert np.allclose(back.data, rho.data)


class TestAgreementWithDensityMatrix:
    """The batched engine must match exact per-circuit evolution row-wise."""

    def test_single_row_density_match(self, small_trainable_circuit):
        model = _noisy_model()
        params = random_angles(small_trainable_circuit, seed=3)
        exact = DensityMatrixSimulator(model).run(
            small_trainable_circuit, params
        )
        ptm = PauliTransferSimulator(model).density_matrix(
            small_trainable_circuit, params
        )
        assert np.allclose(ptm.data, exact.data, atol=1e-10)

    def test_batch_rows_match_per_circuit_runs(self, small_trainable_circuit):
        model = _noisy_model()
        rows = np.stack(
            [random_angles(small_trainable_circuit, seed=s) for s in range(5)]
        )
        states = PauliTransferSimulator(model).run_batch(
            small_trainable_circuit, rows
        )
        dm = DensityMatrixSimulator(model)
        for b in range(rows.shape[0]):
            exact = pauli_vector_from_density(
                dm.run(small_trainable_circuit, rows[b])
            )
            assert np.allclose(states[b], exact, atol=1e-10)

    def test_expectation_agreement(self, small_trainable_circuit):
        model = _noisy_model()
        params = random_angles(small_trainable_circuit, seed=5)
        obs = PauliSum(
            [
                PauliString(3, "ZZI", coefficient=0.7),
                PauliString(3, "XIY", coefficient=-0.4),
            ]
        )
        assert PauliTransferSimulator(model).expectation(
            small_trainable_circuit, obs, params
        ) == pytest.approx(
            DensityMatrixSimulator(model).expectation(
                small_trainable_circuit, obs, params
            ),
            abs=1e-10,
        )

    def test_probabilities_agreement(self, small_trainable_circuit):
        model = _noisy_model()
        params = random_angles(small_trainable_circuit, seed=7)
        assert np.allclose(
            PauliTransferSimulator(model).probabilities(
                small_trainable_circuit, params
            ),
            DensityMatrixSimulator(model)
            .run(small_trainable_circuit, params)
            .probabilities(),
            atol=1e-10,
        )

    def test_projector_expectation_agreement(self, small_trainable_circuit):
        model = _noisy_model()
        params = random_angles(small_trainable_circuit, seed=9)
        assert PauliTransferSimulator(model).expectation(
            small_trainable_circuit, zero_projector(3), params
        ) == pytest.approx(
            DensityMatrixSimulator(model).expectation(
                small_trainable_circuit, zero_projector(3), params
            ),
            abs=1e-10,
        )

    def test_density_matrix_initial_state(self, bell_circuit):
        model = NoiseModel(default=bit_flip(0.05))
        rho0 = DensityMatrix.maximally_mixed(2)
        exact = DensityMatrixSimulator(model).run(
            bell_circuit, initial_state=rho0
        )
        out = PauliTransferSimulator(model).run(
            bell_circuit, initial_state=rho0
        )
        assert np.allclose(
            density_from_pauli_vector(out, 2).data, exact.data, atol=1e-10
        )


class TestAgreementWithTrajectories:
    def test_trajectory_mean_converges_to_ptm(
        self, assert_unbiased_estimator
    ):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rx(0, value=0.4)
        model = NoiseModel(default=depolarizing(0.05))
        obs = PauliString(2, "ZZ")
        exact = PauliTransferSimulator(model).expectation(circuit, obs)
        sampler = TrajectorySimulator(model)
        estimates = [
            sampler.expectation(circuit, obs, trajectories=200, seed=s)
            for s in range(30)
        ]
        assert_unbiased_estimator(estimates, exact)


class TestNoiselessIdentity:
    def test_noiseless_matches_statevector(
        self, simulator, small_trainable_circuit
    ):
        params = random_angles(small_trainable_circuit, seed=11)
        state = simulator.run(small_trainable_circuit, params)
        ptm = PauliTransferSimulator()
        assert np.allclose(
            ptm.probabilities(small_trainable_circuit, params),
            state.probabilities(),
            atol=1e-10,
        )
        obs = PauliString(3, "ZXZ", coefficient=0.9)
        assert ptm.expectation(
            small_trainable_circuit, obs, params
        ) == pytest.approx(obs.expectation(state), abs=1e-10)

    def test_trivial_noise_routes_to_noiseless_kernels(self):
        # The seam contract: trivial payloads resolve to None, so config
        # consumers build the statevector path — bit-identity with the
        # noiseless engine holds by routing, not by tolerance.
        from repro.core.variance import VarianceConfig, run_variance_shard
        from repro.core.variance import plan_variance_shards

        base = dict(qubit_counts=(2,), num_circuits=3, num_layers=2)
        noiseless = VarianceConfig(**base)
        trivial = VarianceConfig(
            **base,
            noise={"default": {"name": "depolarizing", "probability": 0.0}},
        )
        assert trivial.noise is None  # canonicalized at construction
        shard_a = plan_variance_shards(noiseless, seed=0)[0]
        shard_b = plan_variance_shards(trivial, seed=0)[0]
        out_a = run_variance_shard(noiseless, shard_a)
        out_b = run_variance_shard(trivial, shard_b)
        for method in noiseless.methods:
            assert np.array_equal(
                out_a["gradients"][method], out_b["gradients"][method]
            )


class TestSampledPath:
    def test_sampled_matches_analytic_in_expectation(
        self, assert_unbiased_estimator, small_trainable_circuit
    ):
        model = _noisy_model()
        sim = PauliTransferSimulator(model)
        params = random_angles(small_trainable_circuit, seed=13)
        obs = PauliString(3, "ZZZ")
        exact = sim.expectation(small_trainable_circuit, obs, params)
        estimates = [
            sim.expectation(
                small_trainable_circuit, obs, params, shots=256, seed=s
            )
            for s in range(40)
        ]
        assert_unbiased_estimator(estimates, exact)

    def test_certain_readout_flip(self):
        # readout_error=1.0 flips every recorded bit: the |00...0> state
        # samples as |11...1> deterministically.
        model = NoiseModel(readout_error=1.0)
        sim = PauliTransferSimulator(model)
        circuit = QuantumCircuit(2)
        value = sim.expectation(
            circuit, zero_projector(2), shots=64, seed=0
        )
        assert value == 0.0
        ideal = PauliTransferSimulator().expectation(
            circuit, zero_projector(2), shots=64, seed=0
        )
        assert ideal == 1.0

    def test_readout_error_biases_pauli_estimate(
        self, assert_unbiased_estimator
    ):
        # Bit-flip readout with rate e shrinks <Z> by (1 - 2e).
        e = 0.1
        sim = PauliTransferSimulator(NoiseModel(readout_error=e))
        circuit = QuantumCircuit(1)  # |0>, <Z> = +1 ideally
        obs = PauliString(1, "Z")
        estimates = [
            sim.expectation(circuit, obs, shots=512, seed=s)
            for s in range(40)
        ]
        assert_unbiased_estimator(estimates, 1.0 - 2.0 * e)

    def test_readout_none_and_zero_consume_same_stream(self):
        # readout_error=0.0 must not touch the generator: the noiseless
        # sampled path stays bit-identical whether the model is absent
        # or explicitly trivial.
        sim_none = PauliTransferSimulator()
        sim_zero = PauliTransferSimulator(NoiseModel(readout_error=0.0))
        circuit = QuantumCircuit(2).h(0).cx(0, 1)
        obs = PauliString(2, "ZZ")
        a = sim_none.expectation(circuit, obs, shots=128, seed=42)
        b = sim_zero.expectation(circuit, obs, shots=128, seed=42)
        assert a == b

    def test_expectation_batch_sampled_rows(self, small_trainable_circuit):
        sim = PauliTransferSimulator(_noisy_model())
        rows = np.stack(
            [random_angles(small_trainable_circuit, seed=s) for s in range(3)]
        )
        obs = PauliString(3, "ZIZ")
        values = sim.expectation_batch(
            small_trainable_circuit, obs, rows, shots=128, seed=7
        )
        assert values.shape == (3,)
        again = sim.expectation_batch(
            small_trainable_circuit, obs, rows, shots=128, seed=7
        )
        assert np.array_equal(values, again)


class TestGradientEngines:
    """Shift-rule engines run unchanged on the PTM duck-type surface."""

    def test_parameter_shift_matches_finite_difference(
        self, small_trainable_circuit
    ):
        model = _noisy_model()
        sim = PauliTransferSimulator(model)
        params = random_angles(small_trainable_circuit, seed=17)
        obs = PauliString(3, "ZZZ")
        grad = parameter_shift(
            small_trainable_circuit, obs, params, simulator=sim
        )
        eps = 1e-6
        for k in (0, 5, 11):
            up = params.copy()
            up[k] += eps
            down = params.copy()
            down[k] -= eps
            fd = (
                sim.expectation(small_trainable_circuit, obs, up)
                - sim.expectation(small_trainable_circuit, obs, down)
            ) / (2 * eps)
            assert grad[k] == pytest.approx(fd, abs=1e-5)

    def test_batch_parameter_shift_matches_sequential(
        self, small_trainable_circuit
    ):
        sim = PauliTransferSimulator(_noisy_model())
        params = random_angles(small_trainable_circuit, seed=19)
        obs = PauliString(3, "ZZZ")
        sequential = parameter_shift(
            small_trainable_circuit, obs, params, simulator=sim
        )
        batched = batch_parameter_shift(
            small_trainable_circuit, obs, params, simulator=sim
        )
        assert np.allclose(sequential, batched, atol=1e-12)


class TestValidation:
    def test_wrong_param_count_rejected(self, small_trainable_circuit):
        sim = PauliTransferSimulator()
        with pytest.raises(ValueError, match="expected 12 parameters"):
            sim.run(small_trainable_circuit, [0.1, 0.2])

    def test_missing_params_rejected(self, small_trainable_circuit):
        sim = PauliTransferSimulator()
        with pytest.raises(
            ValueError, match="trainable parameters but none were supplied"
        ):
            sim.run(small_trainable_circuit)

    def test_unsupported_observable_type(self, bell_circuit):
        from repro.backend import StateProjector, Statevector

        sim = PauliTransferSimulator()
        target = StateProjector(Statevector.zero_state(2))
        with pytest.raises(TypeError, match="PTM expectation"):
            sim.expectation(bell_circuit, target)

    def test_noise_payload_constructor(self):
        sim = PauliTransferSimulator(
            {"default": {"name": "bit_flip", "probability": 0.1}}
        )
        assert sim.noise_model.channel_for("H").name == "bit_flip"
