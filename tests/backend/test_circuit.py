"""Unit tests for the circuit IR."""

import numpy as np
import pytest

from repro.backend import QuantumCircuit, StatevectorSimulator
from repro.backend.circuit import Operation
from repro.backend.gates import get_gate


class TestAppend:
    def test_builder_chaining(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).rz(1, value=0.3)
        assert circuit.num_operations == 3
        assert circuit.num_parameters == 0

    def test_trainable_parameter_allocation(self):
        circuit = QuantumCircuit(2)
        circuit.rx(0)
        circuit.ry(1)
        circuit.rx(0, value=1.0)  # bound, no new slot
        assert circuit.num_parameters == 2
        indices = [
            op.param_index for op in circuit.operations if op.is_trainable
        ]
        assert indices == [0, 1]

    def test_rejects_wrong_qubit_count(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).append("CX", [0])

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).append("H", [2])

    def test_rejects_duplicate_qubits(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).append("CX", [1, 1])

    def test_rejects_parameter_on_fixed_gate(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).append("H", [0], value=0.5)

    def test_rejects_bound_and_trainable(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).append("RX", [0], value=0.5, trainable=True)

    def test_rejects_nontrainable_without_value(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).append("RX", [0], trainable=False)

    def test_rejects_zero_qubit_circuit(self):
        with pytest.raises(ValueError):
            QuantumCircuit(0)


class TestOperation:
    def test_parameter_resolution_trainable(self):
        circuit = QuantumCircuit(1).rx(0)
        op = circuit.operations[0]
        assert op.parameter(np.array([0.7])) == pytest.approx(0.7)

    def test_parameter_resolution_bound(self):
        circuit = QuantumCircuit(1).rx(0, value=0.4)
        op = circuit.operations[0]
        assert op.parameter(None) == pytest.approx(0.4)

    def test_trainable_without_params_raises(self):
        circuit = QuantumCircuit(1).rx(0)
        with pytest.raises(ValueError):
            circuit.operations[0].parameter(None)

    def test_fixed_gate_parameter_is_none(self):
        circuit = QuantumCircuit(1).h(0)
        assert circuit.operations[0].parameter(None) is None

    def test_matrix_resolution(self):
        circuit = QuantumCircuit(1).ry(0)
        op = circuit.operations[0]
        expected = get_gate("RY").matrix(1.2)
        assert np.allclose(op.matrix(np.array([1.2])), expected)


class TestTransformations:
    def test_copy_is_independent(self):
        circuit = QuantumCircuit(2).h(0)
        clone = circuit.copy()
        clone.x(1)
        assert circuit.num_operations == 1
        assert clone.num_operations == 2

    def test_bind_freezes_parameters(self):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        bound = circuit.bind([0.1, 0.2])
        assert bound.num_parameters == 0
        assert bound.operations[0].value == pytest.approx(0.1)
        assert bound.operations[1].value == pytest.approx(0.2)

    def test_bind_wrong_length(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).rx(0).bind([0.1, 0.2])

    def test_inverse_undoes_circuit(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).t(2).rx(1, value=0.7).cz(1, 2).s(0)
        inverse = circuit.inverse()
        roundtrip = circuit.compose(inverse)
        state = simulator.run(roundtrip)
        assert state.probability_of("000") == pytest.approx(1.0)

    def test_inverse_with_params(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1).cz(0, 1)
        params = np.array([0.5, -1.1])
        inverse = circuit.inverse(params)
        state = simulator.run(circuit.bind(params).compose(inverse))
        assert state.probability_of("00") == pytest.approx(1.0)

    def test_inverse_of_trainable_requires_params(self):
        with pytest.raises(ValueError):
            QuantumCircuit(1).rx(0).inverse()

    def test_compose_renumbers_parameters(self):
        a = QuantumCircuit(2).rx(0).ry(1)
        b = QuantumCircuit(2).rz(0)
        combined = a.compose(b)
        assert combined.num_parameters == 3
        assert combined.operations[-1].param_index == 2

    def test_compose_qubit_mismatch(self):
        with pytest.raises(ValueError):
            QuantumCircuit(2).compose(QuantumCircuit(3))


class TestInspection:
    def test_gate_counts(self):
        circuit = QuantumCircuit(3).h(0).h(1).cx(0, 1).cz(1, 2)
        assert circuit.gate_counts() == {"H": 2, "CX": 1, "CZ": 1}

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(3).h(0).h(1).h(2)
        assert circuit.depth() == 1

    def test_depth_serial_dependency(self):
        circuit = QuantumCircuit(2).h(0).cx(0, 1).h(1)
        assert circuit.depth() == 3

    def test_depth_empty(self):
        assert QuantumCircuit(2).depth() == 0

    def test_trainable_operations(self):
        circuit = QuantumCircuit(2).h(0).rx(0).cz(0, 1).ry(1)
        trainables = circuit.trainable_operations()
        assert [pos for pos, _ in trainables] == [1, 3]

    def test_parameter_map(self):
        circuit = QuantumCircuit(2).rx(0).h(1).ry(0)
        assert circuit.parameter_map() == {0: 0, 1: 2}

    def test_draw_trainable_and_bound(self):
        circuit = QuantumCircuit(2).h(0).rx(1).ry(0, value=0.5)
        text = circuit.draw()
        assert "q0:" in text and "q1:" in text
        assert "RX(t0)" in text
        assert "RY(+0.50)" in text

    def test_draw_with_params(self):
        circuit = QuantumCircuit(1).rx(0)
        text = circuit.draw(params=np.array([1.0]))
        assert "RX(+1.00)" in text


class TestPaperConfiguration:
    def test_paper_gate_and_parameter_counts(self):
        """10 qubits x 5 layers of (RX, RY) + CZ chain = 145 gates, 100 params."""
        circuit = QuantumCircuit(10)
        for _ in range(5):
            for q in range(10):
                circuit.rx(q)
                circuit.ry(q)
            for q in range(9):
                circuit.cz(q, q + 1)
        assert circuit.num_operations == 145
        assert circuit.num_parameters == 100
