"""Batched statevector execution: run_batch / expectation_batch /
batch_parameter_shift.

Two families of guarantees:

* **bit-identity** — every batched entry equals its sequential
  counterpart exactly (``np.array_equal``, no tolerance), which is what
  lets the variance experiment flip ``batched`` on without perturbing
  seeded results;
* **engine agreement** — the batched shift rule matches the adjoint and
  finite-difference engines within their analytic tolerances on random
  PQCs of 2-5 qubits (the property test the ISSUE asks for).
"""

import numpy as np
import pytest

from repro.ansatz.random_pqc import RandomPQC
from repro.backend import (
    QuantumCircuit,
    StatevectorSimulator,
    Statevector,
    adjoint_gradient,
    batch_parameter_shift,
    finite_difference,
    get_gradient_fn,
    parameter_shift,
    total_z,
    zero_projector,
)


def _random_pqc(num_qubits, num_layers, seed):
    return RandomPQC(num_qubits=num_qubits, num_layers=num_layers, seed=seed).build()


class TestRunBatch:
    def test_rows_bit_identical_to_sequential(self, simulator):
        rng = np.random.default_rng(21)
        for num_qubits in (2, 3, 4):
            circuit = _random_pqc(num_qubits, 4, seed=num_qubits)
            params = rng.uniform(0, 2 * np.pi, (6, circuit.num_parameters))
            states = simulator.run_batch(circuit, params)
            assert states.shape == (6, 2**num_qubits)
            for b in range(6):
                assert np.array_equal(
                    states[b], simulator.run(circuit, params[b]).data
                )

    def test_rows_normalized(self, simulator):
        circuit = _random_pqc(3, 5, seed=9)
        rng = np.random.default_rng(22)
        params = rng.uniform(0, 2 * np.pi, (4, circuit.num_parameters))
        norms = np.linalg.norm(simulator.run_batch(circuit, params), axis=1)
        assert np.allclose(norms, 1.0, atol=1e-10)

    def test_custom_initial_state(self, simulator):
        circuit = QuantumCircuit(2).rx(0).ry(1)
        initial = Statevector.uniform_superposition(2)
        params = np.array([[0.3, 1.1], [2.2, -0.4]])
        states = simulator.run_batch(circuit, params, initial_state=initial)
        for b in range(2):
            assert np.array_equal(
                states[b],
                simulator.run(circuit, params[b], initial_state=initial).data,
            )

    def test_bound_and_fixed_gates_shared_across_rows(self, simulator):
        circuit = QuantumCircuit(2).h(0).rx(0, value=0.7).cx(0, 1).ry(1)
        params = np.array([[0.1], [1.9], [-2.5]])
        states = simulator.run_batch(circuit, params)
        for b in range(3):
            assert np.array_equal(states[b], simulator.run(circuit, params[b]).data)

    def test_rejects_wrong_width(self, simulator):
        circuit = QuantumCircuit(2).rx(0)
        with pytest.raises(ValueError, match="parameters per row"):
            simulator.run_batch(circuit, np.zeros((3, 2)))

    def test_rejects_1d_params(self, simulator):
        circuit = QuantumCircuit(2).rx(0)
        with pytest.raises(ValueError, match="2-D"):
            simulator.run_batch(circuit, np.zeros(1))

    def test_rejects_empty_batch(self, simulator):
        circuit = QuantumCircuit(2).rx(0)
        with pytest.raises(ValueError, match="at least one row"):
            simulator.run_batch(circuit, np.zeros((0, 1)))

    def test_rejects_nonfinite(self, simulator):
        circuit = QuantumCircuit(2).rx(0)
        with pytest.raises(ValueError, match="NaN"):
            simulator.run_batch(circuit, np.array([[np.nan]]))

    def test_rejects_mismatched_initial_state(self, simulator):
        circuit = QuantumCircuit(2).rx(0)
        with pytest.raises(ValueError, match="initial state"):
            simulator.run_batch(
                circuit, np.zeros((1, 1)), initial_state=Statevector.zero_state(3)
            )


class TestExpectationBatch:
    @pytest.mark.parametrize("observable_fn", [zero_projector, total_z])
    def test_bit_identical_to_sequential(self, simulator, observable_fn):
        rng = np.random.default_rng(23)
        for num_qubits in (2, 3):
            circuit = _random_pqc(num_qubits, 4, seed=17 + num_qubits)
            observable = observable_fn(num_qubits)
            params = rng.uniform(0, 2 * np.pi, (5, circuit.num_parameters))
            batched = simulator.expectation_batch(circuit, observable, params)
            sequential = np.array(
                [
                    simulator.expectation(circuit, observable, row)
                    for row in params
                ]
            )
            assert np.array_equal(batched, sequential)

    def test_observable_rejects_flat_buffer(self):
        with pytest.raises(ValueError, match=r"\(batch"):
            zero_projector(2).expectation_batch(np.zeros(4, dtype=complex))


class TestBatchParameterShift:
    def test_matches_sequential_engine_exactly(self, simulator):
        rng = np.random.default_rng(24)
        circuit = _random_pqc(3, 5, seed=31)
        observable = zero_projector(3)
        params = rng.uniform(0, 2 * np.pi, (4, circuit.num_parameters))
        indices = [0, circuit.num_parameters // 2, circuit.num_parameters - 1]
        batched = batch_parameter_shift(
            circuit, observable, params, simulator=simulator, param_indices=indices
        )
        assert batched.shape == (4, 3)
        for b in range(4):
            sequential = parameter_shift(
                circuit,
                observable,
                params[b],
                simulator=simulator,
                param_indices=indices,
            )
            assert np.array_equal(batched[b], sequential)

    def test_single_vector_returns_flat_gradient(self, simulator):
        circuit = _random_pqc(2, 3, seed=5)
        observable = zero_projector(2)
        params = np.linspace(0.1, 1.0, circuit.num_parameters)
        flat = batch_parameter_shift(circuit, observable, params, simulator=simulator)
        assert flat.shape == (circuit.num_parameters,)
        assert np.array_equal(
            flat, parameter_shift(circuit, observable, params, simulator=simulator)
        )

    def test_four_term_rule_controlled_rotation(self, simulator):
        circuit = QuantumCircuit(2).h(0).crx(0, 1).ry(0)
        observable = total_z(2)
        params = np.array([[0.4, 1.3], [2.0, -0.7]])
        batched = batch_parameter_shift(circuit, observable, params, simulator=simulator)
        for b in range(2):
            assert np.array_equal(
                batched[b],
                parameter_shift(circuit, observable, params[b], simulator=simulator),
            )

    def test_registered_as_gradient_engine(self, simulator):
        engine = get_gradient_fn("batch_parameter_shift")
        assert engine is batch_parameter_shift
        circuit = _random_pqc(2, 2, seed=3)
        observable = zero_projector(2)
        params = np.linspace(0.0, 1.0, circuit.num_parameters)
        assert np.array_equal(
            engine(circuit, observable, params, simulator=simulator),
            parameter_shift(circuit, observable, params, simulator=simulator),
        )

    def test_empty_param_indices_matches_sequential(self, simulator):
        """Zero differentiated parameters returns an empty gradient, like
        parameter_shift, instead of crashing."""
        circuit = _random_pqc(2, 2, seed=8)
        observable = zero_projector(2)
        params = np.zeros((3, circuit.num_parameters))
        batched = batch_parameter_shift(
            circuit, observable, params, simulator=simulator, param_indices=[]
        )
        assert batched.shape == (3, 0)
        flat = batch_parameter_shift(
            circuit, observable, params[0], simulator=simulator, param_indices=[]
        )
        sequential = parameter_shift(
            circuit, observable, params[0], simulator=simulator, param_indices=[]
        )
        assert flat.shape == sequential.shape == (0,)

    def test_rejects_3d_params(self, simulator):
        circuit = _random_pqc(2, 2, seed=3)
        with pytest.raises(ValueError, match="1-D or 2-D"):
            batch_parameter_shift(
                circuit,
                zero_projector(2),
                np.zeros((2, 2, circuit.num_parameters)),
                simulator=simulator,
            )

    def test_rejects_gate_without_shift_rule(self, simulator):
        circuit = QuantumCircuit(1).rx(0)
        gate = circuit.operations[0].gate
        original = gate.shift_terms
        try:
            gate.shift_terms = None
            with pytest.raises(ValueError, match="no exact parameter-shift"):
                batch_parameter_shift(
                    circuit, zero_projector(1), np.array([[0.5]]), simulator=simulator
                )
        finally:
            gate.shift_terms = original


@pytest.mark.slow
class TestEngineAgreementProperty:
    """All four gradient engines agree on random PQCs of 2-5 qubits."""

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    @pytest.mark.parametrize("cost", ["global", "local"])
    def test_engines_agree(self, simulator, num_qubits, cost):
        rng = np.random.default_rng(1000 + num_qubits)
        observable = (
            zero_projector(num_qubits) if cost == "global" else total_z(num_qubits)
        )
        for trial in range(3):
            circuit = _random_pqc(
                num_qubits, 4, seed=int(rng.integers(2**31))
            )
            params = rng.uniform(0, 2 * np.pi, (3, circuit.num_parameters))
            indices = [0, circuit.num_parameters - 1]
            batched = batch_parameter_shift(
                circuit,
                observable,
                params,
                simulator=simulator,
                param_indices=indices,
            )
            for b in range(3):
                shift = parameter_shift(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                adjoint = adjoint_gradient(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                fd = finite_difference(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                assert np.array_equal(batched[b], shift)
                assert np.allclose(batched[b], adjoint, atol=1e-8)
                assert np.allclose(batched[b], fd, atol=1e-4)


class TestChunkBoundaries:
    """run_batch / sampled_expectation_rows around the row-chunk boundary.

    The chunk size is memory-derived (huge for small registers), so the
    tests shrink it via the module constant and exercise B exactly at,
    one below, and one above the boundary, plus the B=1 degenerate batch.
    Chunking must be invisible: per-row results equal the unchunked (and
    sequential) paths bit for bit, and sampled draws consume per-row
    generators in the same order.
    """

    CHUNK_ROWS = 4
    NUM_QUBITS = 3

    def _shrink(self, monkeypatch):
        import repro.backend.simulator as simulator_module

        monkeypatch.setattr(
            simulator_module,
            "_RUN_BATCH_CHUNK_BYTES",
            16 * 2**self.NUM_QUBITS * self.CHUNK_ROWS,
        )

    @pytest.mark.parametrize("batch", [1, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1])
    def test_run_batch_rows_unaffected_by_chunking(
        self, simulator, monkeypatch, batch
    ):
        circuit = _random_pqc(self.NUM_QUBITS, 3, seed=5)
        rng = np.random.default_rng(11)
        params = rng.normal(size=(batch, circuit.num_parameters))
        unchunked = simulator.run_batch(circuit, params)
        self._shrink(monkeypatch)
        chunked = simulator.run_batch(circuit, params)
        assert np.array_equal(chunked, unchunked)
        for b in range(batch):
            assert np.array_equal(
                chunked[b], simulator.run(circuit, params[b]).data
            )

    @pytest.mark.parametrize("batch", [1, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1])
    def test_sampled_rows_unaffected_by_blocking(
        self, simulator, monkeypatch, batch
    ):
        from repro.utils.rng import spawn_seeds

        circuit = _random_pqc(self.NUM_QUBITS, 3, seed=6)
        rng = np.random.default_rng(13)
        params = rng.normal(size=(batch, circuit.num_parameters))
        observable = total_z(self.NUM_QUBITS)
        states = simulator.run_batch(circuit, params)
        seeds = spawn_seeds(77, batch)
        unblocked = simulator.sampled_expectation_rows(
            states, observable, 32, [np.random.default_rng(s) for s in seeds]
        )
        self._shrink(monkeypatch)
        blocked = simulator.sampled_expectation_rows(
            states, observable, 32, [np.random.default_rng(s) for s in seeds]
        )
        assert np.array_equal(blocked, unblocked)
        for b in range(batch):
            expected = simulator._sampled_expectation(
                Statevector(states[b], validate=False),
                observable,
                32,
                np.random.default_rng(seeds[b]),
            )
            assert blocked[b] == expected

    def test_shared_generator_straddles_block_boundary(
        self, simulator, monkeypatch
    ):
        """One generator shared by consecutive rows across the boundary is
        consumed exactly as in a single unblocked pass."""
        circuit = _random_pqc(self.NUM_QUBITS, 2, seed=8)
        rng = np.random.default_rng(17)
        batch = self.CHUNK_ROWS + 2
        params = rng.normal(size=(batch, circuit.num_parameters))
        observable = zero_projector(self.NUM_QUBITS)
        states = simulator.run_batch(circuit, params)
        unblocked = simulator.sampled_expectation_rows(
            states, observable, 16, [np.random.default_rng(3)] * batch
        )
        self._shrink(monkeypatch)
        blocked = simulator.sampled_expectation_rows(
            states, observable, 16, [np.random.default_rng(3)] * batch
        )
        assert np.array_equal(blocked, unblocked)
