"""Dtype discipline: the numerical core is complex128/float64, always.

The library's policy (:data:`repro.utils.array_api.COMPLEX_DTYPE` /
:data:`FLOAT_DTYPE`): amplitudes and gate operators are ``complex128``;
parameters, probabilities, expectations, and gradients are ``float64``.
Kernels must never silently promote (e.g. object arrays sneaking in) or
downcast (e.g. a ``float32`` parameter table dragging amplitudes down to
``complex64``) — low-precision inputs are coerced up at the boundary and
the canonical dtypes flow through every downstream result.
"""

import numpy as np
import pytest

from repro.ansatz.random_pqc import RandomPQC
from repro.backend.gates import get_gate
from repro.backend.gradients import (
    adjoint_gradient,
    batch_adjoint_gradient,
    batch_parameter_shift,
    parameter_shift,
)
from repro.backend.observables import total_z, zero_projector
from repro.backend.simulator import MegaBatchPlan, StatevectorSimulator
from repro.backend.statevector import (
    Statevector,
    apply_matrix,
    marginal_probabilities_batch,
)
from repro.utils.array_api import COMPLEX_DTYPE, FLOAT_DTYPE, get_array_backend

_SIM = StatevectorSimulator()
_CIRCUIT = RandomPQC(3, 3, seed=0).build()
_RNG = np.random.default_rng(0)
_PARAMS = _RNG.normal(size=(4, _CIRCUIT.num_parameters))


#: Input dtypes that must be coerced *up*, never echoed through.
LOW_PRECISION = [np.float32, np.float16]


class TestStateDtypes:
    def test_run_is_complex128(self):
        state = _SIM.run(_CIRCUIT, _PARAMS[0])
        assert state.data.dtype == COMPLEX_DTYPE

    @pytest.mark.parametrize("dtype", LOW_PRECISION)
    def test_run_batch_ignores_parameter_precision(self, dtype):
        states = _SIM.run_batch(_CIRCUIT, _PARAMS.astype(dtype))
        assert states.dtype == COMPLEX_DTYPE

    def test_run_megabatch_is_complex128(self):
        circuits = [RandomPQC(3, 3, seed=s).build() for s in (1, 2)]
        plan = MegaBatchPlan(circuits)
        params = np.concatenate([_PARAMS[:2], _PARAMS[2:]]).astype(np.float32)
        states = _SIM.run_megabatch(plan, params, [0, 0, 1, 1])
        assert states.dtype == COMPLEX_DTYPE

    def test_low_precision_initial_state_upcast(self):
        initial = Statevector(
            np.array([1, 0, 0, 0, 0, 0, 0, 0], dtype=np.complex64)
        )
        assert initial.data.dtype == COMPLEX_DTYPE
        states = _SIM.run_batch(_CIRCUIT, _PARAMS, initial_state=initial)
        assert states.dtype == COMPLEX_DTYPE

    def test_per_row_initial_stack_upcast(self):
        circuits = [RandomPQC(3, 3, seed=s).build() for s in (1, 2)]
        plan = MegaBatchPlan(circuits)
        stack = np.zeros((4, 8), dtype=np.complex64)
        stack[:, 0] = 1.0
        states = _SIM.run_megabatch(plan, _PARAMS, [0, 0, 1, 1], stack)
        assert states.dtype == COMPLEX_DTYPE


class TestGateDtypes:
    @pytest.mark.parametrize("name", ["RX", "RY", "RZ", "PHASE", "CRZ"])
    def test_matrices_complex128(self, name):
        gate = get_gate(name)
        assert gate.matrix(0.3).dtype == COMPLEX_DTYPE
        assert gate.derivative(0.3).dtype == COMPLEX_DTYPE

    @pytest.mark.parametrize("name", ["RX", "RZ", "CRZ"])
    @pytest.mark.parametrize("dtype", LOW_PRECISION)
    def test_batched_matrices_ignore_theta_precision(self, name, dtype):
        gate = get_gate(name)
        thetas = np.linspace(0.1, 1.0, 5).astype(dtype)
        assert gate.matrix_batch(thetas).dtype == COMPLEX_DTYPE
        assert gate.derivative_batch(thetas).dtype == COMPLEX_DTYPE

    def test_fixed_gate_matrices(self):
        for name in ("H", "X", "CZ", "CX"):
            assert get_gate(name).matrix().dtype == COMPLEX_DTYPE


class TestObservableAndProbabilityDtypes:
    def test_expectation_batch_float64(self):
        for observable in (total_z(3), zero_projector(3)):
            values = _SIM.expectation_batch(_CIRCUIT, observable, _PARAMS)
            assert values.dtype == FLOAT_DTYPE

    def test_sampled_expectation_float64(self):
        values = _SIM.expectation_batch(
            _CIRCUIT, total_z(3), _PARAMS, shots=16, seed=0
        )
        assert values.dtype == FLOAT_DTYPE

    def test_marginals_float64(self):
        states = _SIM.run_batch(_CIRCUIT, _PARAMS)
        probs = marginal_probabilities_batch(states, [0, 2], 3)
        assert probs.dtype == FLOAT_DTYPE

    def test_statevector_probabilities_float64(self):
        state = _SIM.run(_CIRCUIT, _PARAMS[0])
        assert state.probabilities().dtype == FLOAT_DTYPE


class TestGradientDtypes:
    @pytest.mark.parametrize(
        "engine", [parameter_shift, adjoint_gradient]
    )
    def test_sequential_engines_float64(self, engine):
        grad = engine(_CIRCUIT, zero_projector(3), _PARAMS[0], _SIM)
        assert grad.dtype == FLOAT_DTYPE

    @pytest.mark.parametrize(
        "engine", [batch_parameter_shift, batch_adjoint_gradient]
    )
    @pytest.mark.parametrize("dtype", LOW_PRECISION)
    def test_batched_engines_float64(self, engine, dtype):
        grads = engine(
            _CIRCUIT,
            zero_projector(3),
            _PARAMS.astype(dtype),
            simulator=_SIM,
        )
        assert grads.dtype == FLOAT_DTYPE


class TestNoSilentPromotion:
    """Amplitudes must stay complex128 through a whole sweep — a single
    implicit ``dtype=complex``/``dtype=float`` default (or an object-array
    operand) upstream would surface here."""

    def test_apply_matrix_preserves_dtype(self):
        state = np.zeros(8, dtype=COMPLEX_DTYPE)
        state[0] = 1.0
        matrix = get_gate("H").matrix()
        out = apply_matrix(state, matrix, [1], 3)
        assert out.dtype == COMPLEX_DTYPE

    @pytest.mark.parametrize("name", ["numpy", "loopback"])
    def test_backend_dtype_policy_flows_through(self, name):
        backend = get_array_backend(name)
        simulator = StatevectorSimulator(backend=backend)
        states = simulator.run_batch(_CIRCUIT, _PARAMS.astype(np.float32))
        assert states.dtype == COMPLEX_DTYPE
        grads = batch_adjoint_gradient(
            _CIRCUIT, zero_projector(3), _PARAMS, simulator=simulator
        )
        assert grads.dtype == FLOAT_DTYPE

    def test_object_parameter_table_coerced(self):
        table = _PARAMS.astype(object)
        states = _SIM.run_batch(_CIRCUIT, table)
        assert states.dtype == COMPLEX_DTYPE
        assert np.array_equal(states, _SIM.run_batch(_CIRCUIT, _PARAMS))
