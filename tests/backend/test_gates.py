"""Unit tests for the gate library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.gates import (
    FIXED_GATES,
    PARAMETRIC_GATES,
    PAULI_MATRICES,
    FixedGate,
    ParametricGate,
    controlled_matrix,
    get_gate,
    is_parametric,
    pauli_word_matrix,
)


def _is_unitary(matrix: np.ndarray, atol: float = 1e-10) -> bool:
    dim = matrix.shape[0]
    return np.allclose(matrix @ matrix.conj().T, np.eye(dim), atol=atol)


class TestFixedGates:
    @pytest.mark.parametrize("name", sorted(FIXED_GATES))
    def test_all_fixed_gates_are_unitary(self, name):
        assert _is_unitary(FIXED_GATES[name].matrix())

    def test_pauli_algebra(self):
        x, y, z = (PAULI_MATRICES[k] for k in "XYZ")
        assert np.allclose(x @ y, 1j * z)
        assert np.allclose(y @ z, 1j * x)
        assert np.allclose(z @ x, 1j * y)

    def test_hadamard_conjugates_x_to_z(self):
        h = FIXED_GATES["H"].matrix()
        x, z = PAULI_MATRICES["X"], PAULI_MATRICES["Z"]
        assert np.allclose(h @ x @ h, z)

    def test_s_squared_is_z(self):
        s = FIXED_GATES["S"].matrix()
        assert np.allclose(s @ s, PAULI_MATRICES["Z"])

    def test_t_squared_is_s(self):
        t = FIXED_GATES["T"].matrix()
        assert np.allclose(t @ t, FIXED_GATES["S"].matrix())

    def test_sx_squared_is_x(self):
        sx = FIXED_GATES["SX"].matrix()
        assert np.allclose(sx @ sx, PAULI_MATRICES["X"])

    def test_sdg_is_s_adjoint(self):
        assert np.allclose(
            FIXED_GATES["SDG"].matrix(), FIXED_GATES["S"].adjoint_matrix()
        )

    def test_cx_matrix_convention(self):
        # Control = most significant qubit: |10> -> |11>.
        cx = FIXED_GATES["CX"].matrix()
        state = np.zeros(4)
        state[2] = 1.0  # |10>
        assert np.allclose(cx @ state, [0, 0, 0, 1])

    def test_cz_is_diagonal(self):
        assert FIXED_GATES["CZ"].is_diagonal
        assert np.allclose(
            np.diagonal(FIXED_GATES["CZ"].matrix()), [1, 1, 1, -1]
        )

    def test_swap_swaps(self):
        swap = FIXED_GATES["SWAP"].matrix()
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, [0, 0, 1, 0])  # |10>

    def test_ccx_flips_only_on_both_controls(self):
        ccx = FIXED_GATES["CCX"].matrix()
        state = np.zeros(8)
        state[6] = 1.0  # |110>
        assert np.allclose(ccx @ state, np.eye(8)[7])  # |111>
        state = np.zeros(8)
        state[4] = 1.0  # |100>
        assert np.allclose(ccx @ state, np.eye(8)[4])

    def test_matrices_are_read_only(self):
        with pytest.raises(ValueError):
            FIXED_GATES["X"].matrix()[0, 0] = 5.0

    def test_gate_dim(self):
        assert FIXED_GATES["H"].dim == 2
        assert FIXED_GATES["CZ"].dim == 4
        assert FIXED_GATES["CCX"].dim == 8

    def test_non_power_of_two_matrix_rejected(self):
        with pytest.raises(ValueError):
            FixedGate("BAD", np.eye(3))


class TestParametricGates:
    @pytest.mark.parametrize("name", sorted(PARAMETRIC_GATES))
    @pytest.mark.parametrize("theta", [0.0, 0.3, -1.7, np.pi, 2 * np.pi])
    def test_all_parametric_gates_are_unitary(self, name, theta):
        assert _is_unitary(PARAMETRIC_GATES[name].matrix(theta))

    @pytest.mark.parametrize("name", ["RX", "RY", "RZ", "RXX", "RZZ"])
    def test_rotation_at_zero_is_identity(self, name):
        gate = PARAMETRIC_GATES[name]
        assert np.allclose(gate.matrix(0.0), np.eye(gate.dim))

    @pytest.mark.parametrize("name", ["RX", "RY", "RZ"])
    def test_rotation_at_two_pi_is_minus_identity(self, name):
        gate = PARAMETRIC_GATES[name]
        assert np.allclose(gate.matrix(2 * np.pi), -np.eye(2))

    @pytest.mark.parametrize("name", ["RX", "RY", "RZ", "RYY"])
    def test_rotation_composition(self, name):
        gate = PARAMETRIC_GATES[name]
        a, b = 0.7, -1.2
        assert np.allclose(gate.matrix(a) @ gate.matrix(b), gate.matrix(a + b))

    @pytest.mark.parametrize("name", sorted(PARAMETRIC_GATES))
    @pytest.mark.parametrize("theta", [0.0, 0.4, -2.2, 3.9])
    def test_derivative_matches_numerical(self, name, theta):
        gate = PARAMETRIC_GATES[name]
        eps = 1e-7
        numerical = (gate.matrix(theta + eps) - gate.matrix(theta - eps)) / (2 * eps)
        assert np.allclose(gate.derivative(theta), numerical, atol=1e-6)

    def test_rx_explicit_matrix(self):
        theta = 0.9
        expected = np.array(
            [
                [np.cos(theta / 2), -1j * np.sin(theta / 2)],
                [-1j * np.sin(theta / 2), np.cos(theta / 2)],
            ]
        )
        assert np.allclose(PARAMETRIC_GATES["RX"].matrix(theta), expected)

    def test_rz_is_diagonal_phase(self):
        theta = 1.1
        matrix = PARAMETRIC_GATES["RZ"].matrix(theta)
        expected = np.diag([np.exp(-1j * theta / 2), np.exp(1j * theta / 2)])
        assert np.allclose(matrix, expected)

    def test_phase_gate(self):
        theta = 0.5
        matrix = PARAMETRIC_GATES["PHASE"].matrix(theta)
        assert np.allclose(matrix, np.diag([1.0, np.exp(1j * theta)]))

    def test_pauli_rotations_have_shift_rule(self):
        for name in ("RX", "RY", "RZ", "RXX", "RYY", "RZZ", "PHASE"):
            coeff, shift = PARAMETRIC_GATES[name].shift_rule
            assert coeff == pytest.approx(0.5)
            assert shift == pytest.approx(np.pi / 2)

    def test_controlled_rotations_have_four_term_rule(self):
        for name in ("CRX", "CRY", "CRZ"):
            gate = PARAMETRIC_GATES[name]
            assert gate.shift_rule is None
            assert len(gate.shift_terms) == 4
            # Coefficients must sum to zero (rule kills constants).
            assert sum(c for c, _ in gate.shift_terms) == pytest.approx(0.0)

    def test_two_term_gates_expose_shift_terms(self):
        gate = PARAMETRIC_GATES["RX"]
        assert gate.shift_terms == (
            (0.5, np.pi / 2),
            (-0.5, -np.pi / 2),
        )

    def test_shift_terms_exact_on_trig_polynomials(self):
        """The 4-term rule differentiates freq-{1/2, 1} functions exactly."""
        terms = PARAMETRIC_GATES["CRX"].shift_terms

        def apply_rule(fn, theta):
            return sum(c * fn(theta + s) for c, s in terms)

        for theta in (0.0, 0.9, -2.2):
            assert apply_rule(lambda t: np.sin(t / 2), theta) == pytest.approx(
                0.5 * np.cos(theta / 2)
            )
            assert apply_rule(np.sin, theta) == pytest.approx(np.cos(theta))
            assert apply_rule(lambda t: 3.0, theta) == pytest.approx(0.0)

    def test_crx_controls_on_first_qubit(self):
        crx = PARAMETRIC_GATES["CRX"].matrix(np.pi)
        # |0x> subspace untouched.
        assert np.allclose(crx[:2, :2], np.eye(2))
        # |1x> subspace gets RX(pi) = -iX.
        assert np.allclose(crx[2:, 2:], -1j * PAULI_MATRICES["X"])

    def test_adjoint_matrix(self):
        gate = PARAMETRIC_GATES["RY"]
        theta = 0.8
        assert np.allclose(
            gate.adjoint_matrix(theta) @ gate.matrix(theta), np.eye(2)
        )


class TestPauliWordsAndHelpers:
    def test_pauli_word_matrix_kron_order(self):
        xz = pauli_word_matrix("XZ")
        assert np.allclose(xz, np.kron(PAULI_MATRICES["X"], PAULI_MATRICES["Z"]))

    def test_pauli_word_identity(self):
        assert np.allclose(pauli_word_matrix("II"), np.eye(4))

    def test_pauli_word_rejects_bad_letters(self):
        with pytest.raises(ValueError):
            pauli_word_matrix("XA")

    def test_pauli_word_rejects_empty(self):
        with pytest.raises(ValueError):
            pauli_word_matrix("")

    def test_controlled_matrix_structure(self):
        u = pauli_word_matrix("Y")
        cu = controlled_matrix(u)
        assert np.allclose(cu[:2, :2], np.eye(2))
        assert np.allclose(cu[2:, 2:], u)
        assert np.allclose(cu[:2, 2:], 0)


class TestRegistry:
    def test_lookup_case_insensitive(self):
        assert get_gate("rx") is get_gate("RX")

    def test_aliases(self):
        assert get_gate("CNOT") is get_gate("CX")
        assert get_gate("toffoli") is get_gate("CCX")
        assert get_gate("P") is get_gate("PHASE")

    def test_unknown_gate_raises(self):
        with pytest.raises(KeyError):
            get_gate("NOPE")

    def test_is_parametric(self):
        assert is_parametric("RX")
        assert not is_parametric("H")
        assert not is_parametric("UNKNOWN")


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(sorted(PARAMETRIC_GATES)),
    theta=st.floats(-10.0, 10.0, allow_nan=False),
)
def test_parametric_gates_unitary_property(name, theta):
    """Every parametric gate is unitary for any angle."""
    gate = PARAMETRIC_GATES[name]
    assert _is_unitary(gate.matrix(theta))


@settings(max_examples=50, deadline=None)
@given(
    name=st.sampled_from(["RX", "RY", "RZ", "RXX", "RYY", "RZZ"]),
    theta=st.floats(-6.0, 6.0, allow_nan=False),
)
def test_rotation_inverse_is_negated_angle(name, theta):
    """R(theta) R(-theta) = I for all Pauli rotations."""
    gate = PARAMETRIC_GATES[name]
    product = gate.matrix(theta) @ gate.matrix(-theta)
    assert np.allclose(product, np.eye(gate.dim), atol=1e-10)
