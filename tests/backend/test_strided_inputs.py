"""Property tests: kernels accept non-contiguous and broadcast-strided
inputs without changing a single bit.

The kernels advertise "any array-like of the right shape"; callers pass
transposed parameter tables, strided row slices of larger stacks, and
``broadcast_to`` views with zero strides.  Each case must produce output
bit-identical (numpy reference path) to the same call on a contiguous
copy — exotic strides are a representation detail, never a numerics one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ansatz.random_pqc import RandomPQC
from repro.backend.gradients import batch_adjoint_gradient, batch_parameter_shift
from repro.backend.observables import total_z, zero_projector
from repro.backend.simulator import StatevectorSimulator
from repro.backend.statevector import (
    apply_diagonal,
    apply_matrix,
    marginal_probabilities_batch,
)
from repro.utils.array_api import DEVICE_ATOL, DEVICE_RTOL, get_array_backend

_SIM = StatevectorSimulator()


def _random_stack(rng, batch, num_qubits):
    dim = 2**num_qubits
    return rng.normal(size=(batch, dim)) + 1j * rng.normal(size=(batch, dim))


def _strided_view(stack, mode):
    """A non-contiguous (or zero-stride) view carrying ``stack``'s rows."""
    if mode == "row_sliced":
        # Interleave with garbage rows, then slice every other row back out.
        doubled = np.repeat(stack, 2, axis=0)
        doubled[1::2] = -1.0
        view = doubled[::2]
    elif mode == "transposed":
        view = np.ascontiguousarray(stack.T).T
    elif mode == "reversed":
        # Negative-stride view; the contiguous twin is its compacted copy.
        view = stack[::-1]
        stack = np.ascontiguousarray(stack[::-1])
    elif mode == "broadcast":
        # Every row identical via a zero-stride broadcast view.
        view = np.broadcast_to(stack[0], stack.shape)
        stack = np.tile(stack[0], (stack.shape[0], 1))
    else:  # pragma: no cover - parametrization guard
        raise AssertionError(mode)
    if min(stack.shape) > 1:  # degenerate shapes are trivially contiguous
        assert not view.flags["C_CONTIGUOUS"]
    np.testing.assert_array_equal(view, stack)
    return view, stack


STRIDE_MODES = ["row_sliced", "transposed", "reversed", "broadcast"]


class TestPrimitivesBitIdentical:
    @settings(max_examples=20, deadline=None)
    @given(
        num_qubits=st.integers(2, 5),
        batch=st.integers(1, 6),
        qubit=st.integers(0, 4),
        mode=st.sampled_from(STRIDE_MODES),
        seed=st.integers(0, 10_000),
    )
    def test_apply_matrix(self, num_qubits, batch, qubit, mode, seed):
        qubit = qubit % num_qubits
        rng = np.random.default_rng(seed)
        stack = _random_stack(rng, batch, num_qubits)
        matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        view, contiguous = _strided_view(stack, mode)
        out_view = apply_matrix(view, matrix, [qubit], num_qubits)
        out_contig = apply_matrix(contiguous, matrix, [qubit], num_qubits)
        assert np.array_equal(out_view, out_contig)

    @settings(max_examples=20, deadline=None)
    @given(
        num_qubits=st.integers(2, 5),
        batch=st.integers(1, 6),
        qubit=st.integers(0, 4),
        mode=st.sampled_from(STRIDE_MODES),
        seed=st.integers(0, 10_000),
    )
    def test_apply_diagonal(self, num_qubits, batch, qubit, mode, seed):
        qubit = qubit % num_qubits
        rng = np.random.default_rng(seed)
        stack = _random_stack(rng, batch, num_qubits)
        diag = np.exp(1j * rng.normal(size=2))
        view, contiguous = _strided_view(stack, mode)
        out_view = apply_diagonal(view, diag, [qubit], num_qubits)
        out_contig = apply_diagonal(contiguous, diag, [qubit], num_qubits)
        assert np.array_equal(out_view, out_contig)

    @settings(max_examples=20, deadline=None)
    @given(
        num_qubits=st.integers(2, 5),
        batch=st.integers(1, 6),
        mode=st.sampled_from(STRIDE_MODES),
        seed=st.integers(0, 10_000),
    )
    def test_marginals(self, num_qubits, batch, mode, seed):
        rng = np.random.default_rng(seed)
        stack = _random_stack(rng, batch, num_qubits)
        qubits = [num_qubits - 1, 0]
        view, contiguous = _strided_view(stack, mode)
        out_view = marginal_probabilities_batch(view, qubits, num_qubits)
        out_contig = marginal_probabilities_batch(contiguous, qubits, num_qubits)
        assert np.array_equal(out_view, out_contig)

    def test_strided_operand_matrix(self):
        # The gate operand itself may be a strided view (e.g. a column of
        # a derivative table); bit-identity must hold on that side too.
        rng = np.random.default_rng(42)
        stack = _random_stack(rng, 4, 3)
        matrices = rng.normal(size=(8, 2, 2)) + 1j * rng.normal(size=(8, 2, 2))
        view = matrices[::2]
        assert not view.flags["C_CONTIGUOUS"]
        out_view = apply_matrix(stack, view, [1], 3)
        out_contig = apply_matrix(stack, view.copy(), [1], 3)
        assert np.array_equal(out_view, out_contig)


class TestParameterTablesBitIdentical:
    """run_batch / gradient engines over strided parameter tables."""

    @settings(max_examples=10, deadline=None)
    @given(
        mode=st.sampled_from(["row_sliced", "transposed", "reversed"]),
        seed=st.integers(0, 10_000),
    )
    def test_run_batch(self, mode, seed):
        circuit = RandomPQC(3, 3, seed=1).build()
        rng = np.random.default_rng(seed)
        params = rng.normal(size=(4, circuit.num_parameters))
        view, contiguous = _strided_view(params, mode)
        assert np.array_equal(
            _SIM.run_batch(circuit, view), _SIM.run_batch(circuit, contiguous)
        )

    @pytest.mark.parametrize("mode", ["row_sliced", "transposed", "reversed"])
    def test_gradient_engines(self, mode):
        circuit = RandomPQC(3, 3, seed=2).build()
        rng = np.random.default_rng(17)
        params = rng.normal(size=(4, circuit.num_parameters))
        view, contiguous = _strided_view(params, mode)
        for engine, observable in (
            (batch_adjoint_gradient, zero_projector(3)),
            (batch_parameter_shift, total_z(3)),
        ):
            out_view = engine(circuit, observable, view, simulator=_SIM)
            out_contig = engine(circuit, observable, contiguous, simulator=_SIM)
            assert np.array_equal(out_view, out_contig)


class TestStridedStagingOnDevice:
    """Device backends must accept exotic host strides at the staging
    boundary (torch in particular rejects some stride patterns unless the
    backend makes the input contiguous first)."""

    @pytest.mark.parametrize("mode", STRIDE_MODES)
    def test_asarray_accepts_any_strides(self, mode):
        backend = get_array_backend("loopback")
        rng = np.random.default_rng(23)
        stack = _random_stack(rng, 4, 3)
        view, contiguous = _strided_view(stack, mode)
        staged = backend.to_numpy(
            backend.asarray(view, dtype=backend.complex_dtype)
        )
        np.testing.assert_array_equal(staged, contiguous)

    @pytest.mark.parametrize("mode", ["row_sliced", "reversed", "broadcast"])
    def test_device_kernels_on_strided_states(self, mode):
        backend = get_array_backend("loopback")
        rng = np.random.default_rng(29)
        stack = _random_stack(rng, 4, 3)
        matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        view, contiguous = _strided_view(stack, mode)
        device = apply_matrix(
            backend.asarray(view, dtype=backend.complex_dtype),
            matrix,
            [1],
            3,
            backend=backend,
        )
        reference = apply_matrix(contiguous, matrix, [1], 3)
        np.testing.assert_allclose(
            backend.to_numpy(device),
            reference,
            rtol=DEVICE_RTOL,
            atol=DEVICE_ATOL,
        )
