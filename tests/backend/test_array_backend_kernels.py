"""Backend conformance suite for the array-API kernel refactor.

Two contracts under test (see :mod:`repro.utils.array_api`):

* the **numpy** backend is bit-identical (``np.array_equal``) to the
  default (no-backend) reference path for every kernel — states,
  expectations, and both gradient engines;
* every **non-numpy** backend matches the reference to device tolerance
  (``DEVICE_RTOL`` / ``DEVICE_ATOL``) and returns host ``np.ndarray``
  results at the public boundaries.

The ``loopback`` backend always runs (it is numpy wearing a device
costume); ``torch``/``cupy`` join the same parametrization when their
library is importable and skip cleanly otherwise.
"""

import importlib.util

import numpy as np
import pytest

from repro.ansatz.random_pqc import RandomPQC
from repro.backend.gradients import (
    batch_adjoint_gradient,
    batch_parameter_shift,
    megabatch_adjoint_gradient,
    megabatch_parameter_shift,
)
from repro.backend.observables import total_z, zero_projector
from repro.backend.simulator import (
    MegaBatchPlan,
    StatevectorSimulator,
    batch_chunk_rows,
)
from repro.backend.statevector import (
    Statevector,
    apply_diagonal,
    apply_matrix,
    marginal_probabilities_batch,
)
from repro.utils.array_api import (
    DEVICE_ATOL,
    DEVICE_RTOL,
    get_array_backend,
)


def _device_backend_params():
    params = [pytest.param("loopback", id="loopback")]
    for name in ("torch", "cupy"):
        marks = []
        if importlib.util.find_spec(name) is None:
            marks.append(
                pytest.mark.skip(reason=f"optional namespace {name!r} not installed")
            )
        params.append(pytest.param(name, id=name, marks=marks))
    return params


DEVICE_BACKENDS = _device_backend_params()
ALL_BACKENDS = [pytest.param("numpy", id="numpy")] + DEVICE_BACKENDS


def _bucket(num_circuits=4, num_qubits=3, num_layers=4, rows=3, seed=0):
    rng = np.random.default_rng(seed)
    circuits = [
        RandomPQC(num_qubits, num_layers, seed=int(rng.integers(2**31))).build()
        for _ in range(num_circuits)
    ]
    batches = [
        rng.normal(size=(rows, circuits[0].num_parameters)) for _ in circuits
    ]
    return circuits, batches


def _device_close(result, reference):
    np.testing.assert_allclose(
        result, reference, rtol=DEVICE_RTOL, atol=DEVICE_ATOL
    )


class TestPrimitiveConformance:
    """apply_matrix / apply_diagonal / marginals across namespaces."""

    @pytest.fixture()
    def stack(self):
        rng = np.random.default_rng(5)
        num_qubits = 4
        states = rng.normal(size=(6, 2**num_qubits)) + 1j * rng.normal(
            size=(6, 2**num_qubits)
        )
        return states, num_qubits

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    @pytest.mark.parametrize("qubits", [[0], [2], [3], [1, 3], [2, 0]])
    def test_apply_matrix_matches_reference(self, stack, name, qubits):
        states, num_qubits = stack
        backend = get_array_backend(name)
        rng = np.random.default_rng(7)
        dim = 2 ** len(qubits)
        matrix = rng.normal(size=(dim, dim)) + 1j * rng.normal(size=(dim, dim))
        reference = apply_matrix(states, matrix, qubits, num_qubits)
        device = apply_matrix(
            backend.asarray(states, dtype=backend.complex_dtype),
            matrix,
            qubits,
            num_qubits,
            backend=backend,
        )
        _device_close(backend.to_numpy(device), reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_apply_matrix_batched_operands(self, stack, name):
        states, num_qubits = stack
        backend = get_array_backend(name)
        rng = np.random.default_rng(9)
        matrices = rng.normal(size=(6, 2, 2)) + 1j * rng.normal(size=(6, 2, 2))
        reference = apply_matrix(states, matrices, [1], num_qubits)
        device = apply_matrix(
            backend.asarray(states, dtype=backend.complex_dtype),
            matrices,
            [1],
            num_qubits,
            backend=backend,
        )
        _device_close(backend.to_numpy(device), reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_apply_matrix_single_state(self, name):
        backend = get_array_backend(name)
        rng = np.random.default_rng(3)
        state = rng.normal(size=8) + 1j * rng.normal(size=8)
        matrix = rng.normal(size=(2, 2)) + 1j * rng.normal(size=(2, 2))
        reference = apply_matrix(state, matrix, [1], 3)
        device = apply_matrix(
            backend.asarray(state, dtype=backend.complex_dtype),
            matrix,
            [1],
            3,
            backend=backend,
        )
        _device_close(backend.to_numpy(device), reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    @pytest.mark.parametrize("qubits", [[0], [3], [1, 2]])
    def test_apply_diagonal_matches_reference(self, stack, name, qubits):
        states, num_qubits = stack
        backend = get_array_backend(name)
        rng = np.random.default_rng(13)
        diag = np.exp(1j * rng.normal(size=2 ** len(qubits)))
        reference = apply_diagonal(states, diag, qubits, num_qubits)
        device = apply_diagonal(
            backend.asarray(states, dtype=backend.complex_dtype),
            diag,
            qubits,
            num_qubits,
            backend=backend,
        )
        _device_close(backend.to_numpy(device), reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    @pytest.mark.parametrize("qubits", [[0], [2, 0], [1, 3]])
    def test_marginals_match_reference(self, stack, name, qubits):
        states, num_qubits = stack
        backend = get_array_backend(name)
        reference = marginal_probabilities_batch(states, qubits, num_qubits)
        device = marginal_probabilities_batch(
            backend.asarray(states, dtype=backend.complex_dtype),
            qubits,
            num_qubits,
            backend=backend,
        )
        _device_close(backend.to_numpy(device), reference)


class TestNumpyBitIdentity:
    """StatevectorSimulator(backend="numpy") must equal the default exactly."""

    def test_run_batch(self):
        circuits, batches = _bucket()
        reference = StatevectorSimulator().run_batch(circuits[0], batches[0])
        explicit = StatevectorSimulator(backend="numpy").run_batch(
            circuits[0], batches[0]
        )
        assert np.array_equal(reference, explicit)

    def test_run_megabatch(self):
        circuits, batches = _bucket()
        plan = MegaBatchPlan(circuits)
        params = np.concatenate(batches)
        rows = np.concatenate(
            [np.full(len(b), i) for i, b in enumerate(batches)]
        )
        reference = StatevectorSimulator().run_megabatch(plan, params, rows)
        explicit = StatevectorSimulator(backend="numpy").run_megabatch(
            plan, params, rows
        )
        assert np.array_equal(reference, explicit)

    def test_batch_adjoint_gradient(self):
        circuits, batches = _bucket()
        observable = zero_projector(3)
        reference = batch_adjoint_gradient(
            circuits[0], observable, batches[0], simulator=StatevectorSimulator()
        )
        explicit = batch_adjoint_gradient(
            circuits[0],
            observable,
            batches[0],
            simulator=StatevectorSimulator(backend="numpy"),
        )
        assert np.array_equal(reference, explicit)

    def test_batch_parameter_shift(self):
        circuits, batches = _bucket()
        observable = total_z(3)
        reference = batch_parameter_shift(
            circuits[0], observable, batches[0], simulator=StatevectorSimulator()
        )
        explicit = batch_parameter_shift(
            circuits[0],
            observable,
            batches[0],
            simulator=StatevectorSimulator(backend="numpy"),
        )
        assert np.array_equal(reference, explicit)

    def test_megabatch_gradients(self):
        circuits, batches = _bucket()
        observable = zero_projector(3)
        for engine in (megabatch_adjoint_gradient, megabatch_parameter_shift):
            reference = engine(
                circuits, observable, batches, simulator=StatevectorSimulator()
            )
            explicit = engine(
                circuits,
                observable,
                batches,
                simulator=StatevectorSimulator(backend="numpy"),
            )
            for ref, got in zip(reference, explicit):
                assert np.array_equal(ref, got)

    def test_sampled_expectations(self):
        circuits, batches = _bucket()
        observable = total_z(3)
        reference = StatevectorSimulator().expectation_batch(
            circuits[0], observable, batches[0], shots=64, seed=19
        )
        explicit = StatevectorSimulator(backend="numpy").expectation_batch(
            circuits[0], observable, batches[0], shots=64, seed=19
        )
        assert np.array_equal(reference, explicit)


class TestDeviceConformance:
    """Non-numpy backends: device tolerance, host results, residency."""

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_run_returns_statevector(self, name):
        circuits, batches = _bucket()
        simulator = StatevectorSimulator(backend=name)
        state = simulator.run(circuits[0], batches[0][0])
        reference = StatevectorSimulator().run(circuits[0], batches[0][0])
        assert isinstance(state, Statevector)
        assert type(state.data) is np.ndarray
        _device_close(state.data, reference.data)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_run_batch(self, name):
        circuits, batches = _bucket()
        simulator = StatevectorSimulator(backend=name)
        states = simulator.run_batch(circuits[0], batches[0])
        reference = StatevectorSimulator().run_batch(circuits[0], batches[0])
        assert type(states) is np.ndarray
        _device_close(states, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_run_batch_with_initial_state(self, name):
        circuits, batches = _bucket()
        initial = Statevector.random_state(3, seed=21)
        states = StatevectorSimulator(backend=name).run_batch(
            circuits[0], batches[0], initial_state=initial
        )
        reference = StatevectorSimulator().run_batch(
            circuits[0], batches[0], initial_state=initial
        )
        _device_close(states, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_run_batch_chunked(self, name):
        # More rows than one device chunk exercises the concatenate path.
        circuits, _ = _bucket(num_qubits=3)
        simulator = StatevectorSimulator(backend=name)
        rows = batch_chunk_rows(3, simulator.backend) + 5
        rng = np.random.default_rng(23)
        params = rng.normal(size=(rows, circuits[0].num_parameters))
        states = simulator.run_batch(circuits[0], params)
        reference = StatevectorSimulator().run_batch(circuits[0], params)
        assert states.shape == reference.shape
        _device_close(states, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_run_megabatch(self, name):
        circuits, batches = _bucket()
        plan = MegaBatchPlan(circuits)
        params = np.concatenate(batches)
        rows = np.concatenate(
            [np.full(len(b), i) for i, b in enumerate(batches)]
        )
        states = StatevectorSimulator(backend=name).run_megabatch(
            plan, params, rows
        )
        reference = StatevectorSimulator().run_megabatch(plan, params, rows)
        assert type(states) is np.ndarray
        _device_close(states, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_expectation_batch_analytic_and_sampled(self, name):
        circuits, batches = _bucket()
        observable = total_z(3)
        device = StatevectorSimulator(backend=name)
        reference = StatevectorSimulator()
        _device_close(
            device.expectation_batch(circuits[0], observable, batches[0]),
            reference.expectation_batch(circuits[0], observable, batches[0]),
        )
        # Sampling stays host-side: same seed => identical draws, because
        # the amplitudes the generator consumes agree to device tolerance
        # and the multinomial path runs on staged host arrays.
        sampled_device = device.expectation_batch(
            circuits[0], observable, batches[0], shots=32, seed=5
        )
        sampled_reference = reference.expectation_batch(
            circuits[0], observable, batches[0], shots=32, seed=5
        )
        _device_close(sampled_device, sampled_reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_batch_adjoint_gradient(self, name):
        circuits, batches = _bucket()
        observable = zero_projector(3)
        device = batch_adjoint_gradient(
            circuits[0],
            observable,
            batches[0],
            simulator=StatevectorSimulator(backend=name),
        )
        reference = batch_adjoint_gradient(
            circuits[0], observable, batches[0], simulator=StatevectorSimulator()
        )
        assert type(device) is np.ndarray
        _device_close(device, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_batch_parameter_shift(self, name):
        circuits, batches = _bucket()
        observable = total_z(3)
        device = batch_parameter_shift(
            circuits[0],
            observable,
            batches[0],
            simulator=StatevectorSimulator(backend=name),
        )
        reference = batch_parameter_shift(
            circuits[0], observable, batches[0], simulator=StatevectorSimulator()
        )
        _device_close(device, reference)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    @pytest.mark.parametrize(
        "engine", [megabatch_adjoint_gradient, megabatch_parameter_shift]
    )
    def test_megabatch_gradients(self, name, engine):
        circuits, batches = _bucket()
        observable = zero_projector(3)
        device = engine(
            circuits,
            observable,
            batches,
            simulator=StatevectorSimulator(backend=name),
        )
        reference = engine(
            circuits, observable, batches, simulator=StatevectorSimulator()
        )
        assert len(device) == len(reference)
        for ref, got in zip(reference, device):
            assert type(got) is np.ndarray
            _device_close(got, ref)

    @pytest.mark.parametrize("name", DEVICE_BACKENDS)
    def test_chunk_rows_scale_with_backend_budget(self, name):
        backend = get_array_backend(name)
        host_rows = batch_chunk_rows(8)
        device_rows = batch_chunk_rows(8, backend)
        assert device_rows == max(1, backend.chunk_bytes // (16 * 2**8))
        if backend.chunk_bytes > 8 * 2**20:
            assert device_rows > host_rows
