"""Tests for shape-keyed mega-batched execution and gradients.

The contract under test everywhere: folding many same-shape circuits into
one stacked execution is a pure throughput change — every row carries the
same values as running its own circuit through the per-circuit batched
(and sequential) paths.
"""

import numpy as np
import pytest

import repro.backend.simulator as simulator_module
from repro.ansatz.random_pqc import RandomPQC, circuit_shape_key
from repro.backend.circuit import QuantumCircuit
from repro.backend.gradients import (
    batch_adjoint_gradient,
    batch_parameter_shift,
    megabatch_adjoint_gradient,
    megabatch_parameter_shift,
    parameter_shift,
)
from repro.backend.observables import total_z, zero_projector
from repro.backend.simulator import MegaBatchPlan, StatevectorSimulator
from repro.utils.rng import spawn_seeds


def _random_bucket(num_circuits=5, num_qubits=3, num_layers=4, seed=0):
    """Same-shape RandomPQC circuits plus per-circuit parameter stacks."""
    rng = np.random.default_rng(seed)
    circuits = [
        RandomPQC(num_qubits, num_layers, seed=int(rng.integers(2**31))).build()
        for _ in range(num_circuits)
    ]
    batches = [
        rng.normal(size=(3, circuits[0].num_parameters)) for _ in circuits
    ]
    return circuits, batches


class TestShapeKey:
    def test_same_config_same_key(self):
        a = RandomPQC(3, 4, seed=0)
        b = RandomPQC(3, 4, seed=99)
        assert a.shape_key == b.shape_key
        assert circuit_shape_key(a.build()) == circuit_shape_key(b.build())

    def test_different_width_differs(self):
        assert RandomPQC(3, 4, seed=0).shape_key != RandomPQC(4, 4, seed=0).shape_key

    def test_different_depth_differs(self):
        key_a = circuit_shape_key(RandomPQC(3, 4, seed=0).build())
        key_b = circuit_shape_key(RandomPQC(3, 5, seed=0).build())
        assert key_a != key_b

    def test_gate_choice_does_not_enter_key(self):
        rx = RandomPQC(2, 2, structure=[["RX", "RX"], ["RX", "RX"]]).build()
        rz = RandomPQC(2, 2, structure=[["RZ", "RY"], ["RY", "RZ"]]).build()
        assert circuit_shape_key(rx) == circuit_shape_key(rz)

    def test_bound_value_enters_key(self):
        a = QuantumCircuit(2).rx(0, value=0.5).cz(0, 1)
        b = QuantumCircuit(2).rx(0, value=0.7).cz(0, 1)
        assert circuit_shape_key(a) != circuit_shape_key(b)


class TestMegaBatchPlan:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MegaBatchPlan([])

    def test_rejects_width_mismatch(self):
        with pytest.raises(ValueError, match="qubits"):
            MegaBatchPlan(
                [RandomPQC(2, 2, seed=0).build(), RandomPQC(3, 2, seed=0).build()]
            )

    def test_rejects_depth_mismatch(self):
        with pytest.raises(ValueError, match="operations"):
            MegaBatchPlan(
                [RandomPQC(2, 2, seed=0).build(), RandomPQC(2, 3, seed=0).build()]
            )

    def test_rejects_fixed_op_mismatch(self):
        a = QuantumCircuit(2).rx(0).cz(0, 1)
        b = QuantumCircuit(2).rx(0).cx(0, 1)
        with pytest.raises(ValueError, match="fixed operation"):
            MegaBatchPlan([a, b])

    def test_rejects_trainable_wire_mismatch(self):
        a = QuantumCircuit(2).rx(0)
        b = QuantumCircuit(2).rx(1)
        with pytest.raises(ValueError, match="trainable slot"):
            MegaBatchPlan([a, b])

    def test_slot_gate_tables(self):
        a = RandomPQC(2, 1, structure=[["RX", "RZ"]]).build()
        b = RandomPQC(2, 1, structure=[["RY", "RZ"]]).build()
        plan = MegaBatchPlan([a, b])
        gates, codes = plan.slot_gates[0]
        assert [g.name for g in gates] == ["RX", "RY"]
        assert codes.tolist() == [0, 1]
        gates, codes = plan.slot_gates[1]
        assert [g.name for g in gates] == ["RZ"]
        assert codes.tolist() == [0, 0]

    def test_entangler_chain_fuses(self):
        circuits = [RandomPQC(4, 3, seed=s).build() for s in (0, 1)]
        plan = MegaBatchPlan(circuits)
        fused = [step for step in plan.steps if step[0] == "fused_diag"]
        # One fused run per layer covering the whole CZ chain.
        assert len(fused) == 3
        for kind, lo, hi, diagonal in fused:
            assert hi - lo == 3  # 3 CZ pairs on 4 qubits
            assert diagonal.shape == (2**4,)
            assert np.all(np.isin(diagonal, [1.0 + 0j, -1.0 + 0j]))

    def test_non_unit_diagonal_not_fused(self):
        circuit = QuantumCircuit(1)
        circuit.rx(0)
        circuit.append("T", [0])  # diagonal but entries exp(i pi/4)
        plan = MegaBatchPlan([circuit, circuit.copy()])
        assert all(step[0] != "fused_diag" for step in plan.steps)


class TestRunMegabatch:
    def test_rows_match_run_batch(self):
        circuits, batches = _random_bucket()
        plan = MegaBatchPlan(circuits)
        simulator = StatevectorSimulator()
        params = np.concatenate(batches)
        rows = np.repeat(np.arange(len(circuits)), 3)
        states = simulator.run_megabatch(plan, params, rows)
        for s, batch in enumerate(batches):
            expected = simulator.run_batch(circuits[s], batch)
            assert np.array_equal(states[rows == s], expected), s

    def test_single_row_matches_run(self):
        circuits, batches = _random_bucket(num_circuits=2)
        plan = MegaBatchPlan(circuits)
        simulator = StatevectorSimulator()
        state = simulator.run_megabatch(plan, batches[1][:1], [1])
        expected = simulator.run(circuits[1], batches[1][0])
        assert np.array_equal(state[0], expected.data)

    def test_start_stop_composes(self):
        circuits, batches = _random_bucket(num_qubits=2, num_layers=3)
        plan = MegaBatchPlan(circuits)
        simulator = StatevectorSimulator()
        params = np.concatenate(batches)
        rows = np.repeat(np.arange(len(circuits)), 3)
        full = simulator.run_megabatch(plan, params, rows)
        # Split at a trainable position (never inside a fused run).
        split = max(
            pos for pos, op in enumerate(plan.template.operations)
            if op.is_trainable
        )
        prefix = simulator.run_megabatch(plan, params, rows, stop=split)
        resumed = simulator.run_megabatch(
            plan, params, rows, prefix, start=split
        )
        assert np.array_equal(full, resumed)

    def test_mid_fused_run_split_raises(self):
        circuits, _ = _random_bucket(num_qubits=4, num_layers=1)
        plan = MegaBatchPlan(circuits)
        fused = next(step for step in plan.steps if step[0] == "fused_diag")
        simulator = StatevectorSimulator()
        params = np.zeros((1, plan.num_parameters))
        with pytest.raises(ValueError, match="splits the fused"):
            simulator.run_megabatch(plan, params, [0], stop=fused[1] + 1)

    def test_rejects_bad_row_index(self):
        circuits, batches = _random_bucket(num_circuits=2)
        plan = MegaBatchPlan(circuits)
        with pytest.raises(ValueError, match="row_circuits"):
            StatevectorSimulator().run_megabatch(plan, batches[0], [0, 0, 2])

    def test_rejects_row_count_mismatch(self):
        circuits, batches = _random_bucket(num_circuits=2)
        plan = MegaBatchPlan(circuits)
        with pytest.raises(ValueError, match="row-circuit indices"):
            StatevectorSimulator().run_megabatch(plan, batches[0], [0])

    @pytest.mark.parametrize("delta", [-1, 0, 1])
    def test_chunk_boundaries(self, monkeypatch, delta):
        """Rows at/straddling the chunk boundary evolve identically."""
        circuits, _ = _random_bucket(num_circuits=3, num_qubits=3)
        plan = MegaBatchPlan(circuits)
        simulator = StatevectorSimulator()
        chunk_rows = 4
        monkeypatch.setattr(
            simulator_module,
            "_RUN_BATCH_CHUNK_BYTES",
            16 * 2**3 * chunk_rows,
        )
        batch = chunk_rows + delta
        rng = np.random.default_rng(7)
        params = rng.normal(size=(batch, plan.num_parameters))
        rows = rng.integers(3, size=batch)
        chunked = simulator.run_megabatch(plan, params, rows)
        monkeypatch.setattr(
            simulator_module, "_RUN_BATCH_CHUNK_BYTES", 8 * 2**20
        )
        unchunked = simulator.run_megabatch(plan, params, rows)
        assert np.array_equal(chunked, unchunked)


class TestMegabatchParameterShift:
    def test_matches_batch_parameter_shift(self):
        circuits, batches = _random_bucket()
        observable = zero_projector(3)
        simulator = StatevectorSimulator()
        outs = megabatch_parameter_shift(
            circuits, observable, batches, simulator=simulator
        )
        for circuit, batch, out in zip(circuits, batches, outs):
            expected = batch_parameter_shift(
                circuit, observable, batch, simulator=simulator
            )
            assert np.array_equal(out, expected)

    def test_matches_sequential_single_index(self):
        circuits, batches = _random_bucket(num_circuits=4)
        observable = total_z(3)
        simulator = StatevectorSimulator()
        index = circuits[0].num_parameters - 1
        outs = megabatch_parameter_shift(
            circuits, observable, batches, simulator=simulator,
            param_indices=[index],
        )
        for circuit, batch, out in zip(circuits, batches, outs):
            for m, row in enumerate(batch):
                expected = parameter_shift(
                    circuit, observable, row, simulator=simulator,
                    param_indices=[index],
                )
                assert np.array_equal(out[m], expected)

    def test_sampled_matches_per_circuit(self):
        circuits, batches = _random_bucket(num_circuits=3)
        observable = zero_projector(3)
        simulator = StatevectorSimulator()
        index = circuits[0].num_parameters - 1
        seeds = spawn_seeds(123, sum(b.shape[0] for b in batches))
        outs = megabatch_parameter_shift(
            circuits, observable, batches, simulator=simulator,
            param_indices=[index], shots=64, seed=list(seeds),
        )
        cursor = 0
        for circuit, batch, out in zip(circuits, batches, outs):
            row_seeds = seeds[cursor : cursor + batch.shape[0]]
            cursor += batch.shape[0]
            expected = batch_parameter_shift(
                circuit, observable, batch, simulator=simulator,
                param_indices=[index], shots=64, seed=list(row_seeds),
            )
            assert np.array_equal(out, expected)

    def test_empty_indices(self):
        circuits, batches = _random_bucket(num_circuits=2)
        outs = megabatch_parameter_shift(
            circuits, zero_projector(3), batches, param_indices=[]
        )
        assert [out.shape for out in outs] == [(3, 0), (3, 0)]

    def test_rejects_mismatched_stack_count(self):
        circuits, batches = _random_bucket(num_circuits=2)
        with pytest.raises(ValueError, match="parameter stacks"):
            megabatch_parameter_shift(circuits, zero_projector(3), batches[:1])


class TestMegabatchAdjoint:
    def test_matches_batch_adjoint(self):
        circuits, batches = _random_bucket()
        observable = total_z(3)
        simulator = StatevectorSimulator()
        outs = megabatch_adjoint_gradient(
            circuits, observable, batches, simulator=simulator
        )
        for circuit, batch, out in zip(circuits, batches, outs):
            expected = batch_adjoint_gradient(
                circuit, observable, batch, simulator=simulator
            )
            assert np.array_equal(out, expected), circuit

    def test_param_subset(self):
        circuits, batches = _random_bucket(num_circuits=3)
        observable = zero_projector(3)
        simulator = StatevectorSimulator()
        indices = [0, circuits[0].num_parameters - 1]
        outs = megabatch_adjoint_gradient(
            circuits, observable, batches, simulator=simulator,
            param_indices=indices,
        )
        for circuit, batch, out in zip(circuits, batches, outs):
            expected = batch_adjoint_gradient(
                circuit, observable, batch, simulator=simulator,
                param_indices=indices,
            )
            assert np.array_equal(out, expected)
