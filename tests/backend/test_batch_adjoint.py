"""Batched adjoint differentiation: batch_adjoint / value-and-gradient.

Same guarantee families as the batched-execution suite:

* **bit-identity** — every batched row equals its sequential adjoint
  counterpart exactly (``np.array_equal``, no tolerance), covering
  ``param_indices`` subsets, non-default initial states, the ``B=1``
  edge case and the 1-D convenience form;
* **engine agreement** — the batched adjoint matches the parameter-shift
  and finite-difference engines within their analytic tolerances on
  random PQCs (slow-marked property sweep).

Also covered here: the vectorized ``ParametricGate.derivative_batch``
stacks and the circuit-level static (matrix, adjoint) cache the adjoint
engines lean on.
"""

import numpy as np
import pytest

from repro.ansatz.random_pqc import RandomPQC
from repro.backend import (
    PARAMETRIC_GATES,
    QuantumCircuit,
    Statevector,
    StatevectorSimulator,
    adjoint_gradient,
    adjoint_value_and_gradient,
    batch_adjoint_gradient,
    batch_adjoint_value_and_gradient,
    finite_difference,
    get_gradient_fn,
    parameter_shift,
    total_z,
    zero_projector,
)


def _random_pqc(num_qubits, num_layers, seed):
    return RandomPQC(num_qubits=num_qubits, num_layers=num_layers, seed=seed).build()


class TestDerivativeBatch:
    @pytest.mark.parametrize("name", sorted(PARAMETRIC_GATES))
    def test_matches_scalar_derivative(self, name):
        gate = PARAMETRIC_GATES[name]
        thetas = np.array([0.0, 0.3, -1.9, np.pi, 2.4])
        stack = gate.derivative_batch(thetas)
        assert stack.shape == (thetas.size, gate.dim, gate.dim)
        for b, theta in enumerate(thetas):
            assert np.array_equal(stack[b], gate.derivative(float(theta))), name

    def test_fallback_without_vectorized_fn(self):
        gate = PARAMETRIC_GATES["RX"]
        from repro.backend.gates import ParametricGate

        plain = ParametricGate(
            "RX_PLAIN",
            num_qubits=1,
            matrix_fn=gate.matrix,
            derivative_fn=gate.derivative,
        )
        thetas = np.array([0.1, 1.2])
        assert np.array_equal(
            plain.derivative_batch(thetas), gate.derivative_batch(thetas)
        )


class TestStaticMatrixCache:
    def test_contains_exactly_the_non_trainable_ops(self):
        circuit = QuantumCircuit(2).h(0).rx(0).cz(0, 1).ry(1, value=0.4)
        cache = circuit.static_matrices()
        assert set(cache) == {0, 2, 3}
        for pos, (matrix, adjoint) in cache.items():
            op = circuit.operations[pos]
            assert np.array_equal(matrix, op.matrix(None))
            assert np.array_equal(adjoint, op.matrix(None).conj().T)

    def test_cache_reused_until_append(self):
        circuit = QuantumCircuit(1).h(0)
        first = circuit.static_matrices()
        assert circuit.static_matrices() is first
        circuit.x(0)
        second = circuit.static_matrices()
        assert second is not first
        assert set(second) == {0, 1}

    def test_in_place_operation_edit_invalidates_cache(self):
        from repro.backend.circuit import Operation
        from repro.backend.gates import get_gate

        circuit = QuantumCircuit(1).h(0)
        stale = circuit.static_matrices()
        circuit.operations[0] = Operation(get_gate("X"), (0,))
        fresh = circuit.static_matrices()
        assert fresh is not stale
        assert np.array_equal(fresh[0][0], get_gate("X").matrix())

    def test_copy_gets_its_own_cache(self):
        circuit = QuantumCircuit(1).h(0)
        cache = circuit.static_matrices()
        clone = circuit.copy()
        assert clone.static_matrices() is not cache
        assert set(clone.static_matrices()) == {0}


class TestBatchAdjointBitIdentity:
    def test_rows_match_sequential_engine_exactly(self, simulator):
        rng = np.random.default_rng(31)
        for num_qubits in (2, 3, 4):
            circuit = _random_pqc(num_qubits, 4, seed=40 + num_qubits)
            for observable in (zero_projector(num_qubits), total_z(num_qubits)):
                params = rng.uniform(0, 2 * np.pi, (6, circuit.num_parameters))
                batched = batch_adjoint_gradient(
                    circuit, observable, params, simulator=simulator
                )
                assert batched.shape == (6, circuit.num_parameters)
                for b in range(6):
                    assert np.array_equal(
                        batched[b],
                        adjoint_gradient(
                            circuit, observable, params[b], simulator=simulator
                        ),
                    )

    def test_param_indices_subset(self, simulator):
        circuit = _random_pqc(3, 5, seed=51)
        observable = zero_projector(3)
        rng = np.random.default_rng(32)
        params = rng.uniform(0, 2 * np.pi, (4, circuit.num_parameters))
        indices = [circuit.num_parameters - 1, 0, 7]
        batched = batch_adjoint_gradient(
            circuit, observable, params, simulator=simulator, param_indices=indices
        )
        assert batched.shape == (4, 3)
        for b in range(4):
            assert np.array_equal(
                batched[b],
                adjoint_gradient(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                ),
            )

    def test_non_default_initial_state(self, simulator):
        circuit = _random_pqc(3, 3, seed=52)
        observable = total_z(3)
        initial = Statevector.random_state(3, seed=8)
        rng = np.random.default_rng(33)
        params = rng.uniform(0, 2 * np.pi, (3, circuit.num_parameters))
        batched = batch_adjoint_gradient(
            circuit, observable, params, simulator=simulator, initial_state=initial
        )
        for b in range(3):
            assert np.array_equal(
                batched[b],
                adjoint_gradient(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    initial_state=initial,
                ),
            )

    def test_single_row_batch(self, simulator):
        circuit = _random_pqc(2, 3, seed=53)
        observable = zero_projector(2)
        params = np.linspace(0.1, 2.0, circuit.num_parameters)
        one = batch_adjoint_gradient(
            circuit, observable, params.reshape(1, -1), simulator=simulator
        )
        assert one.shape == (1, circuit.num_parameters)
        assert np.array_equal(
            one[0], adjoint_gradient(circuit, observable, params, simulator=simulator)
        )

    def test_1d_params_return_flat_gradient(self, simulator):
        circuit = _random_pqc(2, 3, seed=54)
        observable = zero_projector(2)
        params = np.linspace(-1.0, 1.0, circuit.num_parameters)
        flat = batch_adjoint_gradient(
            circuit, observable, params, simulator=simulator
        )
        assert flat.shape == (circuit.num_parameters,)
        assert np.array_equal(
            flat, adjoint_gradient(circuit, observable, params, simulator=simulator)
        )

    def test_controlled_rotations_and_bound_gates(self, simulator):
        circuit = QuantumCircuit(2).h(0).rx(1, value=0.7).crx(0, 1).cry(1, 0)
        observable = total_z(2)
        params = np.array([[0.4, 1.3], [2.0, -0.7], [0.0, 3.1]])
        batched = batch_adjoint_gradient(
            circuit, observable, params, simulator=simulator
        )
        for b in range(3):
            assert np.array_equal(
                batched[b],
                adjoint_gradient(
                    circuit, observable, params[b], simulator=simulator
                ),
            )

    def test_empty_param_indices(self, simulator):
        circuit = _random_pqc(2, 2, seed=55)
        batched = batch_adjoint_gradient(
            circuit,
            zero_projector(2),
            np.zeros((3, circuit.num_parameters)),
            simulator=simulator,
            param_indices=[],
        )
        assert batched.shape == (3, 0)

    def test_rejects_3d_params(self, simulator):
        circuit = _random_pqc(2, 2, seed=56)
        with pytest.raises(ValueError, match="1-D or 2-D"):
            batch_adjoint_gradient(
                circuit,
                zero_projector(2),
                np.zeros((2, 2, circuit.num_parameters)),
                simulator=simulator,
            )

    def test_registered_as_gradient_engine(self, simulator):
        engine = get_gradient_fn("batch_adjoint")
        assert engine is batch_adjoint_gradient
        circuit = _random_pqc(2, 2, seed=57)
        params = np.linspace(0.0, 1.0, circuit.num_parameters)
        assert np.array_equal(
            engine(circuit, zero_projector(2), params, simulator=simulator),
            adjoint_gradient(
                circuit, zero_projector(2), params, simulator=simulator
            ),
        )


class TestValueAndGradient:
    def test_sequential_value_matches_expectation(self, simulator):
        circuit = _random_pqc(3, 3, seed=61)
        observable = zero_projector(3)
        params = np.linspace(0.2, 1.8, circuit.num_parameters)
        value, grads = adjoint_value_and_gradient(
            circuit, observable, params, simulator=simulator
        )
        assert value == simulator.expectation(circuit, observable, params)
        assert np.array_equal(
            grads, adjoint_gradient(circuit, observable, params, simulator=simulator)
        )

    def test_batched_rows_match_sequential_pair(self, simulator):
        circuit = _random_pqc(3, 3, seed=62)
        observable = total_z(3)
        rng = np.random.default_rng(34)
        params = rng.uniform(0, 2 * np.pi, (5, circuit.num_parameters))
        values, grads = batch_adjoint_value_and_gradient(
            circuit, observable, params, simulator=simulator
        )
        assert values.shape == (5,) and grads.shape == (5, circuit.num_parameters)
        for b in range(5):
            value, grad = adjoint_value_and_gradient(
                circuit, observable, params[b], simulator=simulator
            )
            assert values[b] == value
            assert np.array_equal(grads[b], grad)

    def test_1d_params_return_scalar_value(self, simulator):
        circuit = _random_pqc(2, 2, seed=63)
        observable = zero_projector(2)
        params = np.linspace(0.1, 0.9, circuit.num_parameters)
        value, grad = batch_adjoint_value_and_gradient(
            circuit, observable, params, simulator=simulator
        )
        assert isinstance(value, float)
        sequential = adjoint_value_and_gradient(
            circuit, observable, params, simulator=simulator
        )
        assert value == sequential[0]
        assert np.array_equal(grad, sequential[1])


class TestObservableApplyBatch:
    @pytest.mark.parametrize(
        "observable_fn",
        [zero_projector, total_z, lambda n: total_z(n).terms[0]],
    )
    def test_rows_match_scalar_apply(self, observable_fn):
        rng = np.random.default_rng(35)
        observable = observable_fn(3)
        raw = rng.normal(size=(4, 8)) + 1j * rng.normal(size=(4, 8))
        states = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        batched = observable.apply_batch(states)
        for b in range(4):
            assert np.array_equal(batched[b], observable.apply(states[b]))

    def test_state_projector_rows(self):
        from repro.backend import StateProjector

        target = Statevector.random_state(2, seed=9)
        observable = StateProjector(target)
        rng = np.random.default_rng(36)
        raw = rng.normal(size=(3, 4)) + 1j * rng.normal(size=(3, 4))
        states = raw / np.linalg.norm(raw, axis=1, keepdims=True)
        batched = observable.apply_batch(states)
        for b in range(3):
            assert np.array_equal(batched[b], observable.apply(states[b]))

    def test_rejects_flat_buffer(self):
        with pytest.raises(ValueError, match=r"\(batch"):
            zero_projector(2).apply_batch(np.zeros(4, dtype=complex))


@pytest.mark.slow
class TestBatchAdjointAgreementProperty:
    """batch_adjoint == adjoint exactly, and both match the shift rule."""

    @pytest.mark.parametrize("num_qubits", [2, 3, 4, 5])
    @pytest.mark.parametrize("cost", ["global", "local"])
    def test_engines_agree(self, simulator, num_qubits, cost):
        rng = np.random.default_rng(2000 + num_qubits)
        observable = (
            zero_projector(num_qubits) if cost == "global" else total_z(num_qubits)
        )
        for trial in range(3):
            circuit = _random_pqc(num_qubits, 4, seed=int(rng.integers(2**31)))
            params = rng.uniform(0, 2 * np.pi, (3, circuit.num_parameters))
            indices = [0, circuit.num_parameters - 1]
            batched = batch_adjoint_gradient(
                circuit,
                observable,
                params,
                simulator=simulator,
                param_indices=indices,
            )
            for b in range(3):
                adjoint = adjoint_gradient(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                shift = parameter_shift(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                fd = finite_difference(
                    circuit,
                    observable,
                    params[b],
                    simulator=simulator,
                    param_indices=indices,
                )
                assert np.array_equal(batched[b], adjoint)
                assert np.allclose(batched[b], shift, atol=1e-8)
                assert np.allclose(batched[b], fd, atol=1e-4)
