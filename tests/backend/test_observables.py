"""Unit tests for observables."""

import numpy as np
import pytest

from repro.backend import Statevector
from repro.backend.gates import FIXED_GATES, pauli_word_matrix
from repro.backend.observables import (
    PauliString,
    PauliSum,
    Projector,
    single_z,
    total_z,
    zero_projector,
)


class TestPauliString:
    def test_word_and_mapping_equivalent(self):
        by_word = PauliString(3, "IZX")
        by_map = PauliString(3, {1: "Z", 2: "X"})
        assert by_word.word == by_map.word == "IZX"

    def test_matrix_matches_kron(self):
        obs = PauliString(2, "XZ", coefficient=2.0)
        assert np.allclose(obs.matrix(), 2.0 * pauli_word_matrix("XZ"))

    def test_apply_matches_matrix(self):
        state = Statevector.random_state(3, seed=0)
        obs = PauliString(3, "XYZ", coefficient=-1.5)
        assert np.allclose(obs.apply(state.data), obs.matrix() @ state.data)

    def test_expectation_matches_dense(self):
        state = Statevector.random_state(3, seed=1)
        obs = PauliString(3, {0: "X", 2: "Y"})
        dense = np.real(np.vdot(state.data, obs.matrix() @ state.data))
        assert obs.expectation(state) == pytest.approx(dense)

    def test_identity_string(self):
        obs = PauliString(2, "II", coefficient=3.0)
        assert obs.is_identity
        state = Statevector.random_state(2, seed=2)
        assert obs.expectation(state) == pytest.approx(3.0)

    def test_apply_does_not_alias_input(self):
        obs = PauliString(1, "I")
        data = Statevector.zero_state(1).data
        out = obs.apply(data)
        assert out is not data

    def test_is_diagonal(self):
        assert PauliString(2, "ZZ").is_diagonal
        assert PauliString(2, "IZ").is_diagonal
        assert not PauliString(2, "XZ").is_diagonal

    def test_weight(self):
        assert PauliString(4, "IXYI").weight == 2
        assert PauliString(4, "IIII").weight == 0

    def test_rejects_complex_coefficient(self):
        with pytest.raises(ValueError):
            PauliString(1, "Z", coefficient=1j)

    def test_rejects_bad_letter(self):
        with pytest.raises(ValueError):
            PauliString(1, "Q")

    def test_rejects_wrong_word_length(self):
        with pytest.raises(ValueError):
            PauliString(2, "XYZ")

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(ValueError):
            PauliString(2, {5: "Z"})

    def test_variance_of_eigenstate_is_zero(self):
        obs = PauliString(1, "Z")
        assert obs.variance(Statevector.basis_state("0")) == pytest.approx(0.0)

    def test_variance_of_superposition(self):
        obs = PauliString(1, "Z")
        plus = Statevector(np.array([1.0, 1.0]) / np.sqrt(2))
        assert obs.variance(plus) == pytest.approx(1.0)

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            PauliString(2, "ZZ").expectation(Statevector.zero_state(3))


class TestDiagonalizingRotations:
    @pytest.mark.parametrize("word", ["X", "Y", "Z", "XY", "YX", "XZ"])
    def test_rotations_map_to_z_basis(self, word):
        """R O R^dag must equal the same-support Z word."""
        obs = PauliString(len(word), word)
        rotation = np.eye(2 ** len(word), dtype=complex)
        for gate_name, qubit in obs.diagonalizing_rotations():
            gate = FIXED_GATES[gate_name].matrix()
            ops = [np.eye(2, dtype=complex)] * len(word)
            ops[qubit] = gate
            full = ops[0]
            for op in ops[1:]:
                full = np.kron(full, op)
            rotation = full @ rotation
        conjugated = rotation @ obs.matrix() @ rotation.conj().T
        z_word = "".join("Z" if c != "I" else "I" for c in word)
        assert np.allclose(conjugated, pauli_word_matrix(z_word))

    def test_z_needs_no_rotation(self):
        assert PauliString(2, "ZZ").diagonalizing_rotations() == []

    def test_eigenvalue_of_bits(self):
        obs = PauliString(3, "ZIZ", coefficient=2.0)
        assert obs.eigenvalue_of_bits([0, 1, 0]) == pytest.approx(2.0)
        assert obs.eigenvalue_of_bits([1, 0, 0]) == pytest.approx(-2.0)
        assert obs.eigenvalue_of_bits([1, 0, 1]) == pytest.approx(2.0)


class TestPauliSum:
    def test_expectation_is_sum_of_terms(self):
        state = Statevector.random_state(2, seed=3)
        a = PauliString(2, "ZI", coefficient=0.5)
        b = PauliString(2, "IX", coefficient=-1.0)
        total = PauliSum([a, b])
        assert total.expectation(state) == pytest.approx(
            a.expectation(state) + b.expectation(state)
        )

    def test_matrix(self):
        a = PauliString(2, "ZZ")
        b = PauliString(2, "XX")
        assert np.allclose(
            PauliSum([a, b]).matrix(), a.matrix() + b.matrix()
        )

    def test_len(self):
        assert len(total_z(4)) == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PauliSum([])

    def test_rejects_mixed_sizes(self):
        with pytest.raises(ValueError):
            PauliSum([PauliString(1, "Z"), PauliString(2, "ZZ")])


class TestProjector:
    def test_zero_projector_on_zero_state(self):
        obs = zero_projector(3)
        assert obs.expectation(Statevector.zero_state(3)) == pytest.approx(1.0)

    def test_projector_index(self):
        assert Projector("101").index == 5

    def test_expectation_is_probability(self):
        state = Statevector.random_state(2, seed=4)
        obs = Projector("10")
        assert obs.expectation(state) == pytest.approx(state.probability_of("10"))

    def test_apply(self):
        state = Statevector.uniform_superposition(2)
        out = Projector("11").apply(state.data)
        expected = np.zeros(4, dtype=complex)
        expected[3] = 0.5
        assert np.allclose(out, expected)

    def test_matrix_is_rank_one(self):
        matrix = Projector("01").matrix()
        assert np.linalg.matrix_rank(matrix) == 1
        assert matrix[1, 1] == pytest.approx(1.0)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            Projector("012")

    def test_qubit_count_mismatch(self):
        with pytest.raises(ValueError):
            Projector("00").expectation(Statevector.zero_state(3))


class TestConvenienceBuilders:
    def test_single_z(self):
        obs = single_z(1, 3)
        assert obs.word == "IZI"

    def test_total_z_expectation(self):
        state = Statevector.zero_state(3)
        assert total_z(3).expectation(state) == pytest.approx(3.0)

    def test_total_z_on_basis_state(self):
        state = Statevector.basis_state("101")
        assert total_z(3).expectation(state) == pytest.approx(-1.0)


class TestSamplingCaches:
    """Rotation matrices and parity sign tables are cached per observable."""

    def test_rotation_matrices_cached_and_correct(self):
        from repro.backend.gates import get_gate

        term = PauliString(3, "XYZ")
        first = term.rotation_matrices()
        assert first is term.rotation_matrices()  # built once
        expected = [
            (get_gate(name).matrix(), qubit)
            for name, qubit in term.diagonalizing_rotations()
        ]
        assert len(first) == len(expected)
        for (matrix, qubit), (want_matrix, want_qubit) in zip(first, expected):
            assert qubit == want_qubit
            assert np.array_equal(matrix, want_matrix)

    def test_identity_term_has_no_rotations(self):
        assert PauliString(2, "II").rotation_matrices() == ()

    def test_eigenvalues_cached_columns_match_scalar(self):
        term = PauliString(4, {1: "Z", 3: "X"}, coefficient=-2.0)
        rng = np.random.default_rng(0)
        bits = rng.integers(2, size=(32, 4)).astype(np.int8)
        vectorized = term.eigenvalues_of_bits(bits)
        # Second call exercises the cached column table.
        assert np.array_equal(vectorized, term.eigenvalues_of_bits(bits))
        scalar = np.array([term.eigenvalue_of_bits(row) for row in bits])
        assert np.array_equal(vectorized, scalar)

    def test_sampled_expectation_unchanged_by_caching(self):
        """Repeated sampled estimation gives the same draws per seed."""
        from repro.backend.circuit import QuantumCircuit
        from repro.backend.simulator import StatevectorSimulator

        circuit = QuantumCircuit(2).h(0).cx(0, 1).ry(0)
        observable = PauliSum(
            [PauliString(2, "XY"), PauliString(2, "ZZ", coefficient=0.5)]
        )
        simulator = StatevectorSimulator()
        first = simulator.expectation(
            circuit, observable, [0.3], shots=128, seed=5
        )
        again = simulator.expectation(
            circuit, observable, [0.3], shots=128, seed=5
        )
        assert first == again
