"""Shared fixtures and the statistical test harness.

Besides the usual circuit/simulator fixtures, this module hosts the
shared *statistical* assertions the sampled-path suites use instead of
ad-hoc tolerances:

* :func:`assert_unbiased_estimator` — a z-test that a finite-shot
  estimator's mean (over many fixed-seed replicas) is consistent with the
  analytic expectation;
* :func:`assert_variance_scales_inverse_shots` — checks the estimator's
  variance shrinks like ``~1/shots`` when the shot budget grows.

Both are exposed as same-named fixtures so test modules can take them as
arguments without importing from ``conftest``.  All replicas are drawn
from fixed seeds, so the checks are deterministic: thresholds are sized
for ~4-sigma slack, and a fixed-seed run that passes once passes always.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
import pytest

from repro.backend import QuantumCircuit, StatevectorSimulator


def assert_unbiased_estimator(
    estimates: Sequence[float],
    exact: float,
    z_max: float = 4.5,
) -> None:
    """Assert sampled ``estimates`` are consistent with the ``exact`` value.

    Given ``N`` independent fixed-seed replicas of a finite-shot
    estimator, checks the standardized deviation of their mean from the
    analytic expectation, ``z = (mean - exact) / (std / sqrt(N))``, stays
    within ``z_max`` — an unbiasedness z-test.  Degenerate estimators
    (zero spread) must match exactly.
    """
    estimates = np.asarray(estimates, dtype=float)
    if estimates.size < 2:
        raise ValueError("need at least 2 replicas for a z-test")
    mean = float(estimates.mean())
    spread = float(estimates.std(ddof=1))
    if spread == 0.0:
        assert mean == pytest.approx(exact, abs=1e-12), (
            f"degenerate estimator (zero spread) is biased: "
            f"mean={mean!r}, exact={exact!r}"
        )
        return
    z = (mean - exact) / (spread / np.sqrt(estimates.size))
    assert abs(z) <= z_max, (
        f"estimator looks biased: mean={mean:.6g} vs exact={exact:.6g} "
        f"(z={z:.2f} over {estimates.size} replicas, threshold {z_max})"
    )


def assert_variance_scales_inverse_shots(
    estimator: Callable[[int, int], float],
    base_shots: int = 32,
    factor: int = 16,
    replicas: int = 150,
    rtol: float = 0.45,
) -> None:
    """Assert an estimator's variance shrinks ``~1/shots``.

    ``estimator(shots, seed)`` must return one finite-shot estimate.
    The empirical variance over ``replicas`` fixed-seed replicas at
    ``base_shots`` is compared with the variance at ``factor * base_shots``
    (disjoint seeds); their ratio must match ``factor`` within ``rtol``
    — the defining scaling of shot noise.
    """
    small = np.array(
        [estimator(base_shots, seed) for seed in range(replicas)]
    )
    large = np.array(
        [
            estimator(base_shots * factor, seed)
            for seed in range(replicas, 2 * replicas)
        ]
    )
    var_small = float(small.var(ddof=1))
    var_large = float(large.var(ddof=1))
    assert var_large > 0.0, "high-shot estimator has zero variance"
    ratio = var_small / var_large
    assert factor * (1 - rtol) <= ratio <= factor * (1 + rtol), (
        f"variance ratio {ratio:.2f} not ~{factor} "
        f"(var[{base_shots} shots]={var_small:.3e}, "
        f"var[{base_shots * factor} shots]={var_large:.3e})"
    )


@pytest.fixture(name="assert_unbiased_estimator")
def assert_unbiased_estimator_fixture():
    """The shared unbiasedness z-test (see module docstring)."""
    return assert_unbiased_estimator


@pytest.fixture(name="assert_variance_scales_inverse_shots")
def assert_variance_scales_fixture():
    """The shared ``~1/shots`` variance-scaling check."""
    return assert_variance_scales_inverse_shots


@pytest.fixture
def simulator() -> StatevectorSimulator:
    """A shared exact simulator (stateless, safe to reuse)."""
    return StatevectorSimulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """H(0) + CNOT(0,1): prepares (|00> + |11>)/sqrt(2)."""
    return QuantumCircuit(2).h(0).cx(0, 1)


@pytest.fixture
def small_trainable_circuit() -> QuantumCircuit:
    """3-qubit, 2-layer HEA-style circuit with 12 trainable parameters."""
    circuit = QuantumCircuit(3)
    for _ in range(2):
        for q in range(3):
            circuit.rx(q)
            circuit.ry(q)
        circuit.cz(0, 1).cz(1, 2)
    return circuit


def random_angles(circuit: QuantumCircuit, seed: int = 0) -> np.ndarray:
    """Uniform angles in [0, 2*pi) for a circuit's parameters."""
    gen = np.random.default_rng(seed)
    return gen.uniform(0.0, 2.0 * np.pi, circuit.num_parameters)
