"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import QuantumCircuit, StatevectorSimulator


@pytest.fixture
def simulator() -> StatevectorSimulator:
    """A shared exact simulator (stateless, safe to reuse)."""
    return StatevectorSimulator()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def bell_circuit() -> QuantumCircuit:
    """H(0) + CNOT(0,1): prepares (|00> + |11>)/sqrt(2)."""
    return QuantumCircuit(2).h(0).cx(0, 1)


@pytest.fixture
def small_trainable_circuit() -> QuantumCircuit:
    """3-qubit, 2-layer HEA-style circuit with 12 trainable parameters."""
    circuit = QuantumCircuit(3)
    for _ in range(2):
        for q in range(3):
            circuit.rx(q)
            circuit.ry(q)
        circuit.cz(0, 1).cz(1, 2)
    return circuit


def random_angles(circuit: QuantumCircuit, seed: int = 0) -> np.ndarray:
    """Uniform angles in [0, 2*pi) for a circuit's parameters."""
    gen = np.random.default_rng(seed)
    return gen.uniform(0.0, 2.0 * np.pi, circuit.num_parameters)
