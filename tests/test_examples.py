"""Smoke tests: every example script runs end to end at tiny scale.

Examples are part of the public deliverable; these tests import each
script as a module and drive its ``main()`` with scaled-down CLI
arguments, so a refactor that breaks an example fails the suite.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, _EXAMPLES_DIR / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_main(module, argv, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["example"] + argv)
    module.main()


class TestExamplesRun:
    def test_quickstart(self, capsys):
        _load("quickstart").main()
        out = capsys.readouterr().out
        assert "initial cost" in out
        assert "trained" in out

    def test_variance_decay_analysis(self, capsys, monkeypatch, tmp_path):
        module = _load("variance_decay_analysis")
        target = tmp_path / "out.json"
        monkeypatch.setattr(
            sys,
            "argv",
            ["x", "--seed", "1", "--output", str(target)],
        )
        # Shrink the reduced config further by monkeypatching the default.
        from repro.core import VarianceConfig

        original = VarianceConfig

        def tiny(*args, **kwargs):
            kwargs.setdefault("qubit_counts", (2, 3))
            kwargs.setdefault("num_circuits", 4)
            kwargs.setdefault("num_layers", 3)
            return original(**kwargs)

        monkeypatch.setattr(module, "VarianceConfig", tiny)
        module.main()
        assert target.exists()
        assert "decay_rate" in capsys.readouterr().out

    def test_train_identity_qnn(self, capsys, monkeypatch):
        module = _load("train_identity_qnn")
        _run_main(
            module,
            [
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--optimizers", "gradient_descent",
            ],
            monkeypatch,
        )
        assert "final_loss" in capsys.readouterr().out

    def test_landscape_visualization(self, capsys, monkeypatch):
        module = _load("landscape_visualization")
        _run_main(
            module,
            ["--qubits", "2", "--layers", "3", "--resolution", "7"],
            monkeypatch,
        )
        assert "cost range" in capsys.readouterr().out

    def test_mitigation_comparison(self, capsys, monkeypatch):
        module = _load("mitigation_comparison")
        _run_main(
            module,
            ["--qubits", "3", "--layers", "2", "--iterations", "4"],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "identity_block" in out
        assert "layerwise" in out

    def test_qnn_classifier(self, capsys, monkeypatch):
        module = _load("qnn_classifier")
        _run_main(
            module,
            ["--qubits", "2", "--layers", "1", "--epochs", "2"],
            monkeypatch,
        )
        assert "test_acc" in capsys.readouterr().out

    def test_plateau_diagnostics(self, capsys, monkeypatch):
        module = _load("plateau_diagnostics")
        _run_main(
            module,
            [
                "--methods", "random", "zeros",
                "--qubits", "2", "3",
                "--layers", "4",
                "--circuits", "5",
            ],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "KL_from_Haar" in out

    def test_spec_driven_experiments(self, capsys, monkeypatch):
        module = _load("spec_driven_experiments")
        _run_main(
            module,
            [
                "--qubits", "2", "3",
                "--circuits", "4",
                "--layers", "3",
                "--workers", "1",
                "--seed", "1",
            ],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "bit-identical to single process: True" in out
        assert "bit-identical to per-structure: True" in out
        assert "spec round-trips" in out
        assert "first submission: state=done cache_hit=False" in out
        assert "second submission: state=done cache_hit=True" in out
        assert "served payloads byte-identical: True" in out
        assert "remote run: state=done" in out
        assert "distributed bytes identical to single-host serving: True" in out

    def test_shot_based_training(self, capsys, monkeypatch):
        module = _load("shot_based_training")
        _run_main(
            module,
            [
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--shots", "20",
                "--methods", "random", "zeros",
                "--sweep-shots", "10", "40",
                "--seed", "1",
            ],
            monkeypatch,
        )
        out = capsys.readouterr().out
        assert "serial executor bit-identical to lockstep: True" in out
        assert "final losses vs shot budget" in out

    def test_reproduce_paper_arguments_parse(self, monkeypatch):
        module = _load("reproduce_paper")
        monkeypatch.setattr(sys, "argv", ["x", "--fast", "--seed", "7"])
        args = module.parse_args()
        assert args.fast
        assert args.seed == 7
