"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_variance_defaults(self):
        args = build_parser().parse_args(["variance"])
        assert args.qubits == [2, 4, 6]
        assert args.circuits == 50
        assert args.cost == "global"

    def test_train_defaults_match_paper(self):
        args = build_parser().parse_args(["train"])
        assert args.qubits == 10
        assert args.layers == 5
        assert args.iterations == 50
        assert args.learning_rate == pytest.approx(0.1)


class TestInfo:
    def test_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1" in out
        assert "xavier_normal" in out
        assert "adam" in out
        assert "CZ" in out


class TestVarianceCommand:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "5",
                "--layers", "4",
                "--methods", "random", "zeros",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decay_rate" in out
        assert "random" in out and "zeros" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "variance.json"
        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "4",
                "--layers", "3",
                "--methods", "random",
                "--output", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        from repro.io import load_result

        outcome = load_result(target)
        assert outcome.result.qubit_counts == [2, 3]


class TestTrainCommand:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--methods", "zeros", "random",
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final_loss" in out
        assert "ranking" in out

    def test_adam_option(self, capsys):
        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--optimizer", "adam",
                "--methods", "zeros",
            ]
        )
        assert code == 0
        assert "adam" not in capsys.readouterr().err


class TestLandscapeCommand:
    def test_prints_map_and_metrics(self, capsys):
        code = main(
            [
                "landscape",
                "--qubits", "2",
                "--layers", "3",
                "--resolution", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost range" in out
        # 7 ascii rows follow the metrics line.
        assert len(out.strip().splitlines()) == 8
