"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_variance_defaults(self):
        args = build_parser().parse_args(["variance"])
        assert args.qubits == [2, 4, 6]
        assert args.circuits == 50
        assert args.cost == "global"

    def test_train_defaults_match_paper(self):
        args = build_parser().parse_args(["train"])
        assert args.qubits == 10
        assert args.layers == 5
        assert args.iterations == 50
        assert args.learning_rate == pytest.approx(0.1)


class TestInfo:
    def test_lists_registries(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro 1" in out
        assert "xavier_normal" in out
        assert "adam" in out
        assert "CZ" in out

    def test_lists_executors(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "executors:" in out
        for name in ("serial", "batched", "process_pool"):
            assert name in out


class TestVarianceCommand:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "5",
                "--layers", "4",
                "--methods", "random", "zeros",
                "--seed", "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "decay_rate" in out
        assert "random" in out and "zeros" in out

    def test_output_file(self, capsys, tmp_path):
        target = tmp_path / "variance.json"
        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "4",
                "--layers", "3",
                "--methods", "random",
                "--output", str(target),
            ]
        )
        assert code == 0
        assert target.exists()
        from repro.io import load_result

        outcome = load_result(target)
        assert outcome.result.qubit_counts == [2, 3]


class TestTrainCommand:
    def test_tiny_run(self, capsys):
        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--methods", "zeros", "random",
                "--seed", "0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "final_loss" in out
        assert "ranking" in out

    def test_adam_option(self, capsys):
        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--optimizer", "adam",
                "--methods", "zeros",
            ]
        )
        assert code == 0
        assert "adam" not in capsys.readouterr().err


class TestRunCommand:
    def _write_spec(self, tmp_path, **overrides):
        import json

        from repro.core import ExperimentSpec, VarianceConfig

        spec = ExperimentSpec(
            kind="variance",
            config=VarianceConfig(
                qubit_counts=(2, 3),
                num_circuits=4,
                num_layers=3,
                methods=("random",),
            ),
            seed=3,
            **overrides,
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        return path

    def test_parses_spec_argument(self):
        args = build_parser().parse_args(["run", "spec.json", "--workers", "2"])
        assert args.spec == "spec.json"
        assert args.workers == 2

    def test_runs_spec_file(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "kind=variance" in out
        assert "decay_rate" in out

    def test_workers_override_routes_to_process_pool(self, capsys, tmp_path):
        path = self._write_spec(tmp_path)
        assert main(["run", str(path), "--workers", "2"]) == 0
        assert "executor=process_pool workers=2" in capsys.readouterr().out

    def test_output_round_trips(self, capsys, tmp_path):
        from repro.io import load_result

        path = self._write_spec(tmp_path)
        target = tmp_path / "out.json"
        assert main(["run", str(path), "--output", str(target)]) == 0
        capsys.readouterr()
        outcome = load_result(target)
        assert outcome.result.qubit_counts == [2, 3]

    def test_sweep_spec(self, capsys, tmp_path):
        import json

        from repro.core import ExperimentSpec, VarianceConfig

        spec = ExperimentSpec(
            kind="sweep",
            config=VarianceConfig(
                qubit_counts=(2, 3),
                num_circuits=3,
                num_layers=2,
                methods=("random",),
            ),
            seed=1,
            sweep_field="num_layers",
            sweep_values=[2, 4],
        )
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "sweep num_layers=2" in out
        assert "sweep num_layers=4" in out

    def test_sweep_with_output_fails_fast(self, capsys, tmp_path, monkeypatch):
        """--output on a sweep spec exits before any experiment runs."""
        import json

        import repro.core.variance as vmod
        from repro.core import ExperimentSpec, VarianceConfig

        calls = []
        original = vmod.run_variance_shard

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(vmod, "run_variance_shard", counting)
        spec = ExperimentSpec(
            kind="sweep",
            config=VarianceConfig(
                qubit_counts=(2, 3), num_circuits=3, num_layers=2,
                methods=("random",),
            ),
            seed=1,
            sweep_field="num_layers",
            sweep_values=[2, 4],
        )
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(spec.to_dict()))
        code = main(["run", str(path), "--output", str(tmp_path / "out.json")])
        assert code == 2
        assert calls == []
        assert "not supported for sweep" in capsys.readouterr().err

    def test_train_checkpoint_dir_flag(self, capsys, tmp_path):
        target = tmp_path / "ck"
        code = main(
            [
                "train",
                "--qubits", "2",
                "--layers", "1",
                "--iterations", "2",
                "--methods", "zeros",
                "--checkpoint-dir", str(target),
            ]
        )
        assert code == 0
        assert len(list(target.glob("shard-*.json"))) == 1
        capsys.readouterr()

    def test_variance_workers_flag(self, capsys):
        code = main(
            [
                "variance",
                "--qubits", "2", "3",
                "--circuits", "3",
                "--layers", "2",
                "--methods", "random",
                "--seed", "1",
                "--workers", "1",
            ]
        )
        assert code == 0
        assert "decay_rate" in capsys.readouterr().out


class TestLandscapeCommand:
    def test_prints_map_and_metrics(self, capsys):
        code = main(
            [
                "landscape",
                "--qubits", "2",
                "--layers", "3",
                "--resolution", "7",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cost range" in out
        # 7 ascii rows follow the metrics line.
        assert len(out.strip().splitlines()) == 8


class TestVarianceFoldOption:
    def test_fold_flags_bit_identical(self, capsys):
        from repro.cli import main

        outputs = []
        for fold in ("shape", "structure"):
            main(
                [
                    "variance",
                    "--qubits", "2", "3",
                    "--circuits", "3",
                    "--layers", "2",
                    "--methods", "random", "zeros",
                    "--fold", fold,
                    "--seed", "3",
                ]
            )
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]

    def test_rejects_unknown_fold(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["variance", "--fold", "mega"])
