"""Integration tests: the paper's qualitative claims at reduced scale.

These run the actual experiment engines (not mocks) with scaled-down
parameters and assert the *shape* of the paper's findings:

* random initialization has the steepest gradient-variance decay (Fig. 5a);
* classical schemes improve the decay rate (Section VI-A);
* training mirrors the variance ranking — random stays on the plateau,
  Xavier converges (Fig. 5b/5c);
* the landscape flattens with qubit count (Fig. 1).
"""

import numpy as np
import pytest

from repro.analysis import flatness_metrics, scan_landscape
from repro.ansatz import HardwareEfficientAnsatz
from repro.core import (
    TrainingConfig,
    VarianceConfig,
    global_identity_cost,
    run_training_experiment,
    run_variance_experiment,
)


@pytest.fixture(scope="module")
def variance_outcome():
    config = VarianceConfig(
        qubit_counts=(2, 4, 6),
        num_circuits=60,
        num_layers=30,
        methods=("random", "xavier_normal", "he_normal"),
    )
    return run_variance_experiment(config, seed=2024)


@pytest.fixture(scope="module")
def training_outcomes():
    config = TrainingConfig(num_qubits=6, num_layers=3, iterations=30)
    gd = run_training_experiment(
        config, methods=("random", "xavier_normal", "he_normal"), seed=7
    )
    adam_config = TrainingConfig(
        num_qubits=6, num_layers=3, iterations=30, optimizer="adam"
    )
    adam = run_training_experiment(
        adam_config, methods=("random", "xavier_normal"), seed=7
    )
    return {"gd": gd, "adam": adam}


class TestVarianceShape:
    def test_random_has_steepest_decay(self, variance_outcome):
        rates = {m: f.rate for m, f in variance_outcome.fits.items()}
        assert rates["random"] == max(rates.values())

    def test_classical_methods_improve(self, variance_outcome):
        for method, improvement in variance_outcome.improvements.items():
            assert improvement > 0.0, method

    def test_xavier_improvement_substantial(self, variance_outcome):
        assert variance_outcome.improvements["xavier_normal"] > 20.0

    def test_random_rate_near_two_design_regime(self, variance_outcome):
        """The random baseline decays within the BP order of magnitude."""
        from repro.analysis import two_design_variance_slope

        rate = variance_outcome.fits["random"].rate
        assert 0.4 * two_design_variance_slope() < rate < 1.5 * two_design_variance_slope()

    def test_variances_monotone_for_random(self, variance_outcome):
        series = variance_outcome.result.variance_series("random")
        assert np.all(np.diff(series) < 0)

    def test_fit_quality(self, variance_outcome):
        assert variance_outcome.fits["random"].r_squared > 0.9


class TestTrainingShape:
    def test_random_stays_on_plateau_gd(self, training_outcomes):
        history = training_outcomes["gd"].histories["random"]
        # Global cost at 6 qubits: random init barely moves in 30 GD steps.
        assert history.final_loss > 0.5
        assert history.loss_reduction < 0.3

    def test_xavier_learns_gd(self, training_outcomes):
        history = training_outcomes["gd"].histories["xavier_normal"]
        assert history.final_loss < 0.3
        assert history.final_loss < history.initial_loss

    def test_xavier_beats_random_gd(self, training_outcomes):
        histories = training_outcomes["gd"].histories
        assert (
            histories["xavier_normal"].final_loss
            < histories["random"].final_loss
        )

    def test_ranking_mirrors_variance_study(self, training_outcomes):
        ranking = training_outcomes["gd"].ranking()
        assert ranking[-1] == "random"
        assert ranking[0] == "xavier_normal"

    def test_adam_also_separates_methods(self, training_outcomes):
        histories = training_outcomes["adam"].histories
        assert (
            histories["xavier_normal"].final_loss
            < histories["random"].final_loss
        )

    def test_losses_in_unit_interval(self, training_outcomes):
        for outcome in training_outcomes.values():
            for history in outcome.histories.values():
                assert all(-1e-9 <= loss <= 1.0 + 1e-9 for loss in history.losses)


class TestLandscapeFlattening:
    def test_flatness_decays_with_qubits(self):
        """Fig. 1: grid gradient magnitude shrinks as width grows."""
        metrics = {}
        for num_qubits in (2, 4, 6):
            ansatz = HardwareEfficientAnsatz(
                num_qubits=num_qubits, num_layers=8
            )
            circuit = ansatz.build()
            cost = global_identity_cost(circuit)
            rng = np.random.default_rng(1)
            base = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
            scan = scan_landscape(
                cost,
                base,
                param_indices=(circuit.num_parameters - 2, circuit.num_parameters - 1),
                resolution=9,
            )
            metrics[num_qubits] = flatness_metrics(scan)
        grad_2 = metrics[2]["mean_gradient_magnitude"]
        grad_6 = metrics[6]["mean_gradient_magnitude"]
        assert grad_6 < grad_2
        assert metrics[6]["cost_range"] < metrics[2]["cost_range"]
