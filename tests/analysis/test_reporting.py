"""Unit tests for text reporting."""

import numpy as np
import pytest

from repro.analysis import (
    decay_table,
    format_table,
    loss_curve,
    training_table,
    variance_table,
)
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)


def _variance_result():
    result = VarianceResult(qubit_counts=[2, 4], methods=["random", "xavier"])
    result.add(GradientSamples(2, "random", np.array([0.1, -0.1])))
    result.add(GradientSamples(4, "random", np.array([0.01, -0.01])))
    result.add(GradientSamples(2, "xavier", np.array([0.2, -0.2])))
    result.add(GradientSamples(4, "xavier", np.array([0.15, -0.15])))
    return result


def _history():
    return TrainingHistory(
        method="xavier",
        optimizer="adam",
        losses=[0.8, 0.4, 0.09],
        gradient_norms=[1.0, 0.5, 0.1],
        initial_params=np.zeros(2),
        final_params=np.ones(2),
    )


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("---")
        assert "333" in lines[3]

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [["1", "2"]])

    def test_indent(self):
        text = format_table(["x"], [["1"]], indent="  ")
        assert all(line.startswith("  ") for line in text.splitlines())


class TestDomainTables:
    def test_variance_table_contents(self):
        text = variance_table(_variance_result())
        assert "q=2" in text and "q=4" in text
        assert "random" in text and "xavier" in text
        assert "e-" in text  # scientific notation

    def test_decay_table_baseline_marker(self):
        fits = {
            "random": DecayFit("random", 1.2, 0.0, 0.99),
            "xavier": DecayFit("xavier", 0.5, 0.0, 0.97),
        }
        text = decay_table(fits, {"xavier": 58.3})
        assert "(baseline)" in text
        assert "+58.3%" in text

    def test_decay_table_without_improvements(self):
        fits = {"he": DecayFit("he", 0.8, 0.0, 0.9)}
        text = decay_table(fits)
        assert "n/a" in text

    def test_training_table(self):
        text = training_table({"xavier": _history()})
        assert "0.8000" in text
        assert "0.0900" in text
        assert "2" in text  # reached 0.1 at iteration 2

    def test_training_table_never_reaches(self):
        history = _history()
        history.losses = [0.9, 0.8, 0.7]
        text = training_table({"random": history})
        assert "never" in text


class TestLossCurve:
    def test_header_and_dimensions(self):
        text = loss_curve(_history(), width=30, height=6)
        lines = text.splitlines()
        assert "xavier (adam)" in lines[0]
        assert len(lines) == 7  # header + height rows
        assert any("*" in line for line in lines[1:])

    def test_long_history_downsampled(self):
        history = _history()
        history.losses = list(np.linspace(1.0, 0.0, 500))
        text = loss_curve(history, width=40, height=5)
        assert max(len(line) for line in text.splitlines()[1:]) <= 40
