"""Unit tests for the barren-plateau risk diagnostic."""

import pytest

from repro.analysis.detector import PlateauDiagnosis, diagnose_plateau
from repro.core.variance import VarianceConfig


@pytest.fixture(scope="module")
def random_diagnosis():
    return diagnose_plateau(
        "random", qubit_counts=(2, 4, 6), num_circuits=25, num_layers=12, seed=1
    )


@pytest.fixture(scope="module")
def xavier_diagnosis():
    return diagnose_plateau(
        "xavier_normal",
        qubit_counts=(2, 4, 6),
        num_circuits=25,
        num_layers=12,
        seed=1,
    )


class TestVerdicts:
    def test_random_flags_plateau(self, random_diagnosis):
        assert random_diagnosis.verdict == "plateau"
        assert random_diagnosis.severity > 0.75

    def test_xavier_is_not_plateau(self, xavier_diagnosis):
        assert xavier_diagnosis.verdict in ("healthy", "warning")
        assert xavier_diagnosis.severity < 0.75

    def test_severity_ordering(self, random_diagnosis, xavier_diagnosis):
        assert random_diagnosis.severity > xavier_diagnosis.severity

    def test_summary_mentions_verdict(self, random_diagnosis):
        text = random_diagnosis.summary()
        assert "plateau" in text
        assert "%" in text


class TestConfiguration:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            diagnose_plateau(plateau_fraction=0.3, warning_fraction=0.5)

    def test_explicit_config_must_include_method(self):
        config = VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=4,
            num_layers=4,
            methods=("zeros",),
        )
        with pytest.raises(ValueError):
            diagnose_plateau("random", config=config)

    def test_explicit_config_used(self):
        config = VarianceConfig(
            qubit_counts=(2, 3),
            num_circuits=6,
            num_layers=5,
            methods=("random",),
        )
        diagnosis = diagnose_plateau("random", config=config, seed=2)
        assert diagnosis.qubit_counts == (2, 3)

    def test_diagnosis_is_frozen(self, random_diagnosis):
        with pytest.raises(AttributeError):
            random_diagnosis.verdict = "healthy"
