"""Unit tests for convergence metrics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    area_under_loss,
    convergence_rate,
    iterations_to_threshold,
    rank_histories,
)
from repro.core.results import TrainingHistory


def _history(losses, method="m"):
    return TrainingHistory(
        method=method,
        optimizer="gd",
        losses=list(losses),
        gradient_norms=[0.0] * len(losses),
        initial_params=np.zeros(1),
        final_params=np.zeros(1),
    )


class TestIterationsToThreshold:
    def test_basic(self):
        history = _history([1.0, 0.5, 0.09, 0.01])
        assert iterations_to_threshold(history, 0.1) == 2

    def test_never(self):
        assert iterations_to_threshold(_history([1.0, 0.9]), 0.1) is None


class TestAreaUnderLoss:
    def test_constant_curve(self):
        history = _history([0.5] * 5)
        assert area_under_loss(history) == pytest.approx(0.5 * 4)

    def test_linear_decay(self):
        history = _history([1.0, 0.5, 0.0])
        assert area_under_loss(history) == pytest.approx(1.0)

    def test_single_point(self):
        assert area_under_loss(_history([0.7])) == pytest.approx(0.0)

    def test_faster_convergence_smaller_area(self):
        fast = _history(np.exp(-0.5 * np.arange(20)))
        slow = _history(np.exp(-0.1 * np.arange(20)))
        assert area_under_loss(fast) < area_under_loss(slow)


class TestConvergenceRate:
    def test_exact_exponential(self):
        history = _history(np.exp(-0.3 * np.arange(30)))
        assert convergence_rate(history) == pytest.approx(0.3, rel=1e-6)

    def test_floor_excludes_numerical_tail(self):
        losses = list(np.exp(-0.5 * np.arange(20))) + [1e-12] * 30
        history = _history(losses)
        assert convergence_rate(history, floor=1e-8) == pytest.approx(0.5, rel=0.01)

    def test_flat_curve_rate_zero(self):
        assert convergence_rate(_history([0.5, 0.5, 0.5])) == pytest.approx(0.0)

    def test_all_below_floor(self):
        assert convergence_rate(_history([1e-9, 1e-9])) == 0.0


class TestRanking:
    def _histories(self):
        return {
            "fast": _history(np.exp(-0.6 * np.arange(15)), "fast"),
            "slow": _history(np.exp(-0.1 * np.arange(15)), "slow"),
            "stuck": _history([1.0] * 15, "stuck"),
        }

    @pytest.mark.parametrize(
        "metric",
        ["final_loss", "area_under_loss", "convergence_rate", "iterations_to_threshold"],
    )
    def test_fast_always_first_stuck_always_last(self, metric):
        ranking = rank_histories(self._histories(), metric=metric)
        assert ranking[0] == "fast"
        assert ranking[-1] == "stuck"

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            rank_histories(self._histories(), metric="vibes")
