"""Unit tests for expressibility and entanglement metrics."""

import numpy as np
import pytest

from repro.analysis.expressibility import (
    entangling_capability,
    expressibility_kl,
    haar_fidelity_pdf,
    meyer_wallach_q,
    sampled_fidelities,
)
from repro.ansatz import HardwareEfficientAnsatz
from repro.backend import QuantumCircuit, Statevector, StatevectorSimulator
from repro.initializers import RandomUniform, Zeros, get_initializer


class TestHaarPdf:
    def test_normalized(self):
        f = np.linspace(0, 1, 10_001)
        pdf = haar_fidelity_pdf(f, num_qubits=3)
        integral = np.trapezoid(pdf, f)
        assert integral == pytest.approx(1.0, abs=1e-3)

    def test_concentrates_at_zero_for_many_qubits(self):
        assert haar_fidelity_pdf(np.array([0.0]), 6)[0] > haar_fidelity_pdf(
            np.array([0.5]), 6
        )[0]


class TestMeyerWallach:
    def test_product_state_is_zero(self):
        assert meyer_wallach_q(Statevector.basis_state("010")) == pytest.approx(0.0)

    def test_single_qubit_is_zero(self):
        assert meyer_wallach_q(Statevector.basis_state("1")) == pytest.approx(0.0)

    def test_bell_state_is_one(self, simulator, bell_circuit):
        state = simulator.run(bell_circuit)
        assert meyer_wallach_q(state) == pytest.approx(1.0)

    def test_ghz_state(self, simulator):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).cx(1, 2)
        state = simulator.run(circuit)
        # GHZ: every single-qubit marginal is maximally mixed -> Q = 1.
        assert meyer_wallach_q(state) == pytest.approx(1.0)

    def test_partial_entanglement_between_zero_and_one(self, simulator):
        circuit = QuantumCircuit(2).ry(0, value=0.5).cx(0, 1)
        state = simulator.run(circuit)
        q = meyer_wallach_q(state)
        assert 0.0 < q < 1.0


class TestSampledFidelities:
    def test_zeros_initializer_gives_unit_fidelities(self):
        ansatz = HardwareEfficientAnsatz(3, 2)
        fidelities = sampled_fidelities(ansatz, Zeros(), num_pairs=5, seed=0)
        assert np.allclose(fidelities, 1.0)

    def test_random_initializer_spreads_fidelities(self):
        ansatz = HardwareEfficientAnsatz(3, 4)
        fidelities = sampled_fidelities(
            ansatz, RandomUniform(), num_pairs=40, seed=1
        )
        assert fidelities.std() > 0.01
        assert np.all((fidelities >= 0) & (fidelities <= 1 + 1e-12))

    def test_reproducible(self):
        ansatz = HardwareEfficientAnsatz(2, 2)
        a = sampled_fidelities(ansatz, RandomUniform(), num_pairs=10, seed=5)
        b = sampled_fidelities(ansatz, RandomUniform(), num_pairs=10, seed=5)
        assert np.allclose(a, b)


class TestExpressibility:
    def test_random_closer_to_haar_than_xavier(self):
        """The BP mechanism: random init is far more Haar-expressive."""
        ansatz = HardwareEfficientAnsatz(4, 6)
        kl_random = expressibility_kl(
            ansatz, RandomUniform(), num_pairs=150, seed=3
        )
        kl_xavier = expressibility_kl(
            ansatz, get_initializer("xavier_normal"), num_pairs=150, seed=3
        )
        assert kl_random < kl_xavier

    def test_zeros_has_maximal_divergence(self):
        ansatz = HardwareEfficientAnsatz(3, 2)
        kl_zeros = expressibility_kl(ansatz, Zeros(), num_pairs=30, seed=4)
        kl_random = expressibility_kl(
            ansatz, RandomUniform(), num_pairs=30, seed=4
        )
        assert kl_zeros > kl_random


class TestEntanglingCapability:
    def test_zeros_produces_no_entanglement(self):
        ansatz = HardwareEfficientAnsatz(3, 3)
        assert entangling_capability(
            ansatz, Zeros(), num_samples=3, seed=0
        ) == pytest.approx(0.0, abs=1e-10)

    def test_random_entangles_more_than_xavier(self):
        ansatz = HardwareEfficientAnsatz(4, 4)
        q_random = entangling_capability(
            ansatz, RandomUniform(), num_samples=25, seed=1
        )
        q_xavier = entangling_capability(
            ansatz, get_initializer("xavier_normal"), num_samples=25, seed=1
        )
        assert q_random > q_xavier

    def test_bounded(self):
        ansatz = HardwareEfficientAnsatz(3, 3)
        q = entangling_capability(ansatz, RandomUniform(), num_samples=10, seed=2)
        assert 0.0 <= q <= 1.0
