"""Unit tests for landscape scans."""

import numpy as np
import pytest

from repro.analysis import LandscapeScan, flatness_metrics, scan_landscape
from repro.backend import QuantumCircuit
from repro.core.cost import global_identity_cost


def _two_param_cost():
    circuit = QuantumCircuit(1).rx(0).ry(0)
    return global_identity_cost(circuit)


class TestScan:
    def test_scan_shape(self):
        scan = scan_landscape(
            _two_param_cost(), [0.0, 0.0], resolution=11, span=np.pi
        )
        assert scan.values.shape == (11, 11)
        assert scan.axis_values.shape == (11,)

    def test_center_matches_anchor(self):
        cost = _two_param_cost()
        anchor = [0.4, -0.2]
        scan = scan_landscape(cost, anchor, resolution=11)
        center = scan.values[5, 5]
        assert center == pytest.approx(cost.value(anchor))

    def test_known_single_qubit_landscape(self):
        """C(a, b=0) = sin^2(a/2) along the first axis."""
        cost = _two_param_cost()
        scan = scan_landscape(cost, [0.0, 0.0], span=np.pi, resolution=9)
        mid = 4  # b = 0 row index
        for i, a in enumerate(scan.axis_values):
            assert scan.values[i, mid] == pytest.approx(
                np.sin(a / 2) ** 2, abs=1e-10
            )

    def test_param_indices_selection(self):
        circuit = QuantumCircuit(1).rx(0).ry(0).rz(0)
        cost = global_identity_cost(circuit)
        # RZ has no effect on p0: scanning (0, 2) varies only axis 0.
        scan = scan_landscape(
            cost, [0.0, 0.0, 0.0], param_indices=(0, 2), resolution=7
        )
        assert np.allclose(scan.values, scan.values[:, :1])

    def test_rejects_same_indices(self):
        with pytest.raises(ValueError):
            scan_landscape(_two_param_cost(), [0, 0], param_indices=(1, 1))

    def test_rejects_out_of_range(self):
        with pytest.raises(IndexError):
            scan_landscape(_two_param_cost(), [0, 0], param_indices=(0, 5))

    def test_rejects_tiny_resolution(self):
        with pytest.raises(ValueError):
            scan_landscape(_two_param_cost(), [0, 0], resolution=1)


class TestMetrics:
    def test_flat_surface(self):
        scan = LandscapeScan(
            axis_values=np.linspace(-1, 1, 5),
            values=np.full((5, 5), 0.7),
            param_indices=(0, 1),
        )
        assert scan.cost_range == pytest.approx(0.0)
        assert scan.cost_std == pytest.approx(0.0)
        assert scan.mean_gradient_magnitude == pytest.approx(0.0)

    def test_linear_ramp_gradient(self):
        axis = np.linspace(0.0, 1.0, 5)
        values = np.tile(axis, (5, 1))  # varies along columns only
        scan = LandscapeScan(axis_values=axis, values=values, param_indices=(0, 1))
        assert scan.mean_gradient_magnitude == pytest.approx(1.0)
        assert scan.cost_range == pytest.approx(1.0)

    def test_flatness_metrics_dict(self):
        scan = scan_landscape(_two_param_cost(), [0.0, 0.0], resolution=9)
        metrics = flatness_metrics(scan)
        assert set(metrics) == {
            "cost_range",
            "cost_std",
            "mean_gradient_magnitude",
        }
        assert metrics["cost_range"] > 0.5  # 1-qubit landscape is not flat

    def test_ascii_render(self):
        scan = scan_landscape(_two_param_cost(), [0.0, 0.0], resolution=8)
        art = scan.to_ascii()
        lines = art.splitlines()
        assert len(lines) == 8
        assert all(len(line) == 8 for line in lines)

    def test_ascii_flat_surface(self):
        scan = LandscapeScan(
            axis_values=np.linspace(-1, 1, 3),
            values=np.zeros((3, 3)),
            param_indices=(0, 1),
        )
        assert set(scan.to_ascii().replace("\n", "")) == {" "}
