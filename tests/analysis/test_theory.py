"""Unit tests for the analytic barren-plateau reference curves."""

import numpy as np
import pytest

from repro.analysis import (
    expected_zero_population,
    small_angle_variance_prediction,
    two_design_variance,
    two_design_variance_slope,
)


class TestTwoDesignReferences:
    def test_slope_value(self):
        assert two_design_variance_slope() == pytest.approx(2 * np.log(2))

    def test_variance_curve(self):
        assert two_design_variance(2) == pytest.approx(1 / 16)
        assert two_design_variance(10) == pytest.approx(4.0**-10)

    def test_variance_log_slope_matches(self):
        qs = np.array([2.0, 4.0, 6.0])
        log_var = np.log(two_design_variance(qs))
        slope = (log_var[1] - log_var[0]) / 2.0
        assert -slope == pytest.approx(two_design_variance_slope())


class TestZeroPopulation:
    def test_no_rotation_keeps_population_one(self):
        assert expected_zero_population(0.0) == pytest.approx(1.0)

    def test_large_variance_scrambles_to_half(self):
        assert expected_zero_population(1e3) == pytest.approx(0.5)

    def test_monotone_decreasing(self):
        values = expected_zero_population(np.linspace(0, 10, 20))
        assert np.all(np.diff(values) < 0)


class TestSmallAnglePrediction:
    def test_identity_initialization(self):
        assert small_angle_variance_prediction(10, 0.0, 10) == pytest.approx(1.0)

    def test_shrinking_angle_variance_raises_population(self):
        tight = small_angle_variance_prediction(10, 0.01, 10)
        loose = small_angle_variance_prediction(10, 1.0, 10)
        assert tight > loose

    def test_scaled_initialization_flattens_decay(self):
        """With sigma^2 = 1/q, log-population decays slower than the
        2-design slope over the paper's qubit range."""
        qubits = np.array([2, 4, 6, 8, 10], dtype=float)
        populations = np.array(
            [
                small_angle_variance_prediction(q, 1.0 / q, rotations_per_qubit=10)
                for q in qubits
            ]
        )
        slopes = -np.diff(np.log(populations)) / np.diff(qubits)
        assert np.all(slopes < two_design_variance_slope())

    def test_vectorized_over_qubits(self):
        out = small_angle_variance_prediction(
            np.array([2, 4]), 0.1, rotations_per_qubit=5
        )
        assert out.shape == (2,)
