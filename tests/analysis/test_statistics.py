"""Unit tests for the statistics helpers."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    bootstrap_decay_rate,
    linear_regression,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == pytest.approx(1.0)
        assert stats.maximum == pytest.approx(4.0)
        assert stats.median == pytest.approx(2.5)

    def test_std_is_sample_std(self):
        """Regression: std uses ddof=1 (Bessel), not the population form.

        For [1, 2, 3, 4]: squared deviations sum to 5.0, so the sample
        std is sqrt(5/3) ~ 1.29099, while the population std would be
        sqrt(5/4) ~ 1.11803.
        """
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.std == pytest.approx(np.sqrt(5.0 / 3.0), abs=1e-12)
        assert stats.std != pytest.approx(np.sqrt(5.0 / 4.0), abs=1e-3)

    def test_single_observation_std_is_zero(self):
        assert summarize([3.5]).std == 0.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])


class TestBootstrapCI:
    def test_interval_contains_true_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, size=500)
        low, high = bootstrap_ci(data, confidence=0.95, seed=1)
        assert low < 5.0 < high
        assert high - low < 0.5  # tight with 500 samples

    def test_custom_statistic(self):
        data = np.arange(100.0)
        low, high = bootstrap_ci(data, statistic=np.median, seed=2)
        assert low < 49.5 < high

    def test_reproducible(self):
        data = np.arange(50.0)
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_rejects_tiny_sample(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_rejects_bad_resamples(self):
        with pytest.raises((ValueError, TypeError)):
            bootstrap_ci([1.0, 2.0], num_resamples=0)


class TestBootstrapDecayRate:
    def test_ci_brackets_true_rate(self):
        rng = np.random.default_rng(4)
        qubits = [2, 4, 6, 8]
        rate = 0.6
        matrix = np.stack(
            [
                rng.normal(0.0, np.exp(-rate * q / 2.0), size=400)
                for q in qubits
            ]
        )
        low, high = bootstrap_decay_rate(qubits, matrix, seed=5)
        assert low < rate < high

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            bootstrap_decay_rate([2, 4], np.zeros((3, 10)))


class TestLinearRegression:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        y = 2.0 * x - 1.0
        slope, intercept, r2 = linear_regression(x, y)
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(-1.0)
        assert r2 == pytest.approx(1.0)

    def test_noisy_line(self):
        rng = np.random.default_rng(6)
        x = np.linspace(0, 10, 100)
        y = 0.5 * x + rng.normal(0, 0.1, 100)
        slope, _, r2 = linear_regression(x, y)
        assert slope == pytest.approx(0.5, abs=0.02)
        assert r2 > 0.98

    def test_flat_data_r_squared(self):
        _, _, r2 = linear_regression([1, 2, 3], [5.0, 5.0, 5.0])
        assert r2 == pytest.approx(1.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            linear_regression([1, 2], [1.0])
