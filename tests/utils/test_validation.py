"""Unit tests for validation helpers."""

import pytest

from repro.utils.validation import (
    check_in_choices,
    check_positive_int,
    check_probability,
    check_qubit_index,
)


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "n") == 3

    @pytest.mark.parametrize("value", [0, -1])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value, "n")

    @pytest.mark.parametrize("value", [1.5, "2", True])
    def test_rejects_non_int(self, value):
        with pytest.raises(TypeError):
            check_positive_int(value, "n")


class TestQubitIndex:
    def test_accepts_valid(self):
        assert check_qubit_index(2, 4) == 2
        assert check_qubit_index(0, 1) == 0

    @pytest.mark.parametrize("qubit", [-1, 4, 10])
    def test_rejects_out_of_range(self, qubit):
        with pytest.raises(ValueError):
            check_qubit_index(qubit, 4)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_qubit_index(True, 4)


class TestProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, 2.0])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestChoices:
    def test_accepts_member(self):
        assert check_in_choices("a", ["a", "b"], "x") == "a"

    def test_rejects_non_member(self):
        with pytest.raises(ValueError, match="must be one of"):
            check_in_choices("c", ["a", "b"], "x")
