"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import child_rngs, ensure_rng, spawn_rng


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = ensure_rng(7).integers(0, 1000, 5)
        b = ensure_rng(7).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(42)
        gen = ensure_rng(seq)
        assert isinstance(gen, np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawn:
    def test_children_are_independent_of_parent_consumption(self):
        """Spawned streams depend only on spawn order, not on draws."""
        parent_a = ensure_rng(3)
        child_a = spawn_rng(parent_a)

        parent_b = ensure_rng(3)
        parent_b.integers(0, 10, 100)  # consume some draws
        child_b = spawn_rng(parent_b)
        assert np.array_equal(
            child_a.integers(0, 1000, 5), child_b.integers(0, 1000, 5)
        )

    def test_successive_children_differ(self):
        parent = ensure_rng(1)
        a = spawn_rng(parent)
        b = spawn_rng(parent)
        assert not np.array_equal(a.integers(0, 1000, 8), b.integers(0, 1000, 8))


class TestChildRngs:
    def test_bounded_count(self):
        children = list(child_rngs(5, count=4))
        assert len(children) == 4

    def test_streams_reproducible(self):
        first = [g.integers(0, 100, 3) for g in child_rngs(9, count=3)]
        second = [g.integers(0, 100, 3) for g in child_rngs(9, count=3)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_unbounded_iterator(self):
        iterator = child_rngs(2)
        taken = [next(iterator) for _ in range(5)]
        assert len(taken) == 5
