"""Unit tests for the pluggable array-namespace registry and backends."""

import importlib.util

import numpy as np
import pytest

from repro.utils.array_api import (
    COMPLEX_DTYPE,
    DEVICE_ATOL,
    DEVICE_RTOL,
    FLOAT_DTYPE,
    ArrayBackend,
    LoopbackArray,
    LoopbackBackend,
    NumpyBackend,
    array_backend_of,
    array_backend_status,
    available_array_backends,
    get_array_backend,
    is_device_array,
    register_array_backend,
    resolve_array_backend,
)


def _installed(module):
    return importlib.util.find_spec(module) is not None


class TestDtypePolicy:
    def test_constants_are_the_canonical_dtypes(self):
        assert COMPLEX_DTYPE is np.complex128
        assert FLOAT_DTYPE is np.float64

    def test_device_tolerance_is_tight(self):
        # complex128 everywhere: backend disagreement comes from reduction
        # order, not precision, so the contract stays near machine epsilon.
        assert DEVICE_RTOL <= 1e-10
        assert DEVICE_ATOL <= 1e-12

    def test_backends_expose_dtype_policy(self):
        backend = get_array_backend("numpy")
        assert backend.complex_dtype is COMPLEX_DTYPE
        assert backend.float_dtype is FLOAT_DTYPE


class TestRegistry:
    def test_builtin_names(self):
        assert available_array_backends() == [
            "cupy",
            "loopback",
            "numpy",
            "torch",
        ]

    def test_numpy_resolves_eagerly_and_caches(self):
        backend = get_array_backend("numpy")
        assert isinstance(backend, NumpyBackend)
        assert backend.is_numpy
        assert get_array_backend("numpy") is backend

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_array_backend("tensorflow")

    def test_numpy_rejects_device_suffix(self):
        with pytest.raises(ValueError, match="no devices"):
            get_array_backend("numpy:cuda")

    def test_resolve_normalizes_all_forms(self):
        backend = get_array_backend("numpy")
        assert resolve_array_backend(None) is backend
        assert resolve_array_backend("numpy") is backend
        assert resolve_array_backend(backend) is backend

    def test_register_custom_backend_with_device_suffix(self):
        seen = []

        def factory(device):
            seen.append(device)
            return LoopbackBackend()

        register_array_backend("_test_custom", factory)
        try:
            get_array_backend("_test_custom")
            get_array_backend("_test_custom:dev3")
            assert seen == [None, "dev3"]
        finally:
            from repro.utils import array_api

            array_api._FACTORIES.pop("_test_custom", None)
            array_api._RESOLVED.pop("_test_custom", None)
            array_api._RESOLVED.pop("_test_custom:dev3", None)

    @pytest.mark.parametrize("name", ["torch", "cupy"])
    def test_optional_backends_lazy_and_actionable(self, name):
        if _installed(name):
            backend = get_array_backend(name)
            assert backend.name == name
            assert not backend.is_numpy
        else:
            with pytest.raises(ImportError, match=f"pip install {name}"):
                get_array_backend(name)
            # The error names always-available fallbacks.
            with pytest.raises(ImportError, match="numpy, loopback"):
                get_array_backend(name)

    def test_status_reports_every_backend_without_raising(self):
        status = array_backend_status()
        names = [entry["name"] for entry in status]
        assert names == available_array_backends()
        by_name = {entry["name"]: entry for entry in status}
        assert by_name["numpy"]["available"] is True
        assert by_name["numpy"]["version"] == np.__version__
        for name in ("torch", "cupy"):
            entry = by_name[name]
            if entry["available"]:
                assert entry["version"]
            else:
                assert "not installed" in entry["detail"]


class TestNumpyBackend:
    def test_owns_is_type_strict(self):
        backend = get_array_backend("numpy")
        plain = np.zeros(3)
        assert backend.owns(plain)
        assert not backend.owns(plain.view(LoopbackArray))

    def test_ops_are_numpy_aliases(self):
        # Shared code paths call these on the numpy backend too; they must
        # be exact numpy operations for the bit-identity contract.
        backend = get_array_backend("numpy")
        x = np.arange(12, dtype=FLOAT_DTYPE).reshape(3, 4)
        assert np.array_equal(backend.concatenate([x, x]), np.concatenate([x, x]))
        assert np.array_equal(backend.tile_rows(x[0], 3), np.tile(x[0], (3, 1)))
        assert np.array_equal(backend.take_rows(x, np.array([2, 0])), x[[2, 0]])
        out = backend.empty_like(x)
        backend.put_rows(out, np.array([0, 1, 2]), x)
        assert np.array_equal(out, x)
        assert backend.index_array([1, 2]) == [1, 2]  # passthrough

    def test_staging_is_identity(self):
        backend = get_array_backend("numpy")
        x = np.arange(4, dtype=COMPLEX_DTYPE)
        assert backend.asarray(x) is x
        assert backend.to_numpy(x) is x


class TestLoopbackBackend:
    def test_asarray_tags_and_to_numpy_untags(self):
        backend = get_array_backend("loopback")
        x = np.arange(4, dtype=COMPLEX_DTYPE)
        tagged = backend.asarray(x)
        assert type(tagged) is LoopbackArray
        assert backend.owns(tagged)
        assert not backend.owns(x)
        host = backend.to_numpy(tagged)
        assert type(host) is np.ndarray
        # Staging in either direction is a view, not a copy.
        assert np.shares_memory(tagged, x)
        assert np.shares_memory(host, tagged)

    def test_producing_ops_stay_tagged(self):
        backend = get_array_backend("loopback")
        x = backend.asarray(np.arange(8, dtype=COMPLEX_DTYPE).reshape(2, 4))
        for out in (
            backend.zeros((2, 2), backend.complex_dtype),
            backend.empty_like(x),
            backend.copy(x),
            backend.reshape(x, (4, 2)),
            backend.conj(x),
            backend.abs_sq(x),
            backend.sum(x, axis=1),
            backend.matmul(x, backend.permute(x, (1, 0))),
            backend.take_rows(x, np.array([1])),
            backend.concatenate([x, x]),
            backend.tile_rows(x[0], 3),
        ):
            assert type(out) is LoopbackArray, out

    def test_numerics_match_numpy(self):
        backend = get_array_backend("loopback")
        rng = np.random.default_rng(11)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        device = backend.matmul(backend.asarray(a), backend.asarray(a))
        assert np.array_equal(backend.to_numpy(device), a @ a)

    def test_rejects_device_suffix(self):
        with pytest.raises(ValueError, match="no devices"):
            get_array_backend("loopback:0")


class TestOwnership:
    def test_array_backend_of(self):
        loopback = get_array_backend("loopback")
        assert array_backend_of(np.zeros(2)).is_numpy
        assert array_backend_of(loopback.asarray(np.zeros(2))) is loopback

    def test_is_device_array(self):
        loopback = get_array_backend("loopback")
        assert not is_device_array(np.zeros(2))
        assert is_device_array(loopback.asarray(np.zeros(2)))

    def test_scalars_belong_to_numpy(self):
        assert array_backend_of(1.0).is_numpy


class TestDiagnostics:
    def test_numpy_diagnostics(self):
        backend = get_array_backend("numpy")
        assert backend.library_version() == np.__version__
        assert backend.device_name() is None
        backend.synchronize()  # host no-op

    def test_chunk_bytes_policy(self):
        assert get_array_backend("numpy").chunk_bytes == 8 * 2**20
        # Accelerator backends amortize launch overhead with bigger chunks.
        from repro.utils.array_api import CupyBackend, TorchBackend

        assert TorchBackend.chunk_bytes == 64 * 2**20
        assert CupyBackend.chunk_bytes == 64 * 2**20

    def test_abstract_owns_raises(self):
        with pytest.raises(NotImplementedError):
            ArrayBackend(np).owns(np.zeros(1))
