"""Unit tests for quantum natural gradient."""

import numpy as np
import pytest

from repro.backend import QuantumCircuit, StatevectorSimulator
from repro.core.cost import global_identity_cost
from repro.optim import QuantumNaturalGradient, fubini_study_metric, state_jacobian


def _hea(num_qubits=3, num_layers=2):
    circuit = QuantumCircuit(num_qubits)
    for _ in range(num_layers):
        for q in range(num_qubits):
            circuit.rx(q)
            circuit.ry(q)
        for q in range(num_qubits - 1):
            circuit.cz(q, q + 1)
    return circuit


class TestStateJacobian:
    def test_matches_finite_difference(self, simulator):
        circuit = _hea()
        rng = np.random.default_rng(0)
        params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
        jacobian = state_jacobian(circuit, params, simulator)
        eps = 1e-6
        for k in range(circuit.num_parameters):
            plus = params.copy()
            plus[k] += eps
            minus = params.copy()
            minus[k] -= eps
            fd = (simulator.run(circuit, plus).data - simulator.run(circuit, minus).data) / (2 * eps)
            assert np.allclose(jacobian[k], fd, atol=1e-6), k

    def test_shape(self, simulator):
        circuit = _hea(2, 1)
        jacobian = state_jacobian(circuit, np.zeros(4), simulator)
        assert jacobian.shape == (4, 4)

    def test_bound_parameters_skipped(self, simulator):
        circuit = QuantumCircuit(1).rx(0, value=0.3).ry(0)
        jacobian = state_jacobian(circuit, [0.5], simulator)
        assert jacobian.shape == (1, 2)


class TestFubiniStudyMetric:
    def test_symmetric_positive_semidefinite(self, simulator):
        circuit = _hea()
        rng = np.random.default_rng(1)
        params = rng.uniform(0, 2 * np.pi, circuit.num_parameters)
        metric = fubini_study_metric(circuit, params, simulator)
        assert np.allclose(metric, metric.T)
        eigenvalues = np.linalg.eigvalsh(metric)
        assert eigenvalues.min() > -1e-10

    def test_single_rotation_metric_is_quarter(self, simulator):
        """For RY|0>, g = Var(G) with G = Y/2: <Y^2>/4 - <Y>^2/4 = 1/4 at theta=0."""
        circuit = QuantumCircuit(1).ry(0)
        metric = fubini_study_metric(circuit, [0.0], simulator)
        assert metric[0, 0] == pytest.approx(0.25)

    def test_rz_on_zero_state_has_zero_metric(self, simulator):
        """RZ only changes phase on |0>: no state-space motion."""
        circuit = QuantumCircuit(1).rz(0)
        metric = fubini_study_metric(circuit, [0.7], simulator)
        assert metric[0, 0] == pytest.approx(0.0, abs=1e-12)


class TestQNGOptimizer:
    def test_step_moves_against_gradient(self, simulator):
        circuit = QuantumCircuit(1).ry(0)
        cost = global_identity_cost(circuit)
        optimizer = QuantumNaturalGradient(circuit, learning_rate=0.1)
        theta = np.array([0.5])
        new = optimizer.step(theta, cost.gradient(theta))
        assert new[0] < theta[0]  # moving towards 0 lowers the cost

    def test_qng_rescales_by_metric(self, simulator):
        """For RY, metric = 1/4, so QNG steps 4x vanilla GD."""
        circuit = QuantumCircuit(1).ry(0)
        cost = global_identity_cost(circuit)
        theta = np.array([0.8])
        grad = cost.gradient(theta)
        qng = QuantumNaturalGradient(circuit, learning_rate=0.1, damping=0.0)
        moved = theta - qng.step(theta, grad)
        vanilla = 0.1 * grad
        assert moved[0] == pytest.approx(4.0 * vanilla[0], rel=1e-6)

    def test_converges_faster_than_gd_on_identity_task(self, simulator):
        circuit = _hea(2, 1)
        cost = global_identity_cost(circuit)
        rng = np.random.default_rng(3)
        start = rng.normal(0, 0.4, circuit.num_parameters)

        from repro.optim import GradientDescent

        qng = QuantumNaturalGradient(circuit, learning_rate=0.1, damping=1e-4)
        gd = GradientDescent(learning_rate=0.1)
        params_qng, params_gd = start.copy(), start.copy()
        for _ in range(15):
            params_qng = qng.step(params_qng, cost.gradient(params_qng))
            params_gd = gd.step(params_gd, cost.gradient(params_gd))
        assert cost.value(params_qng) <= cost.value(params_gd) + 1e-9

    def test_rejects_negative_damping(self):
        with pytest.raises(ValueError):
            QuantumNaturalGradient(_hea(), damping=-1.0)
