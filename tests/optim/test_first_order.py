"""Unit tests for the first-order optimizers."""

import numpy as np
import pytest

from repro.optim import (
    AdaGrad,
    Adam,
    GradientDescent,
    Momentum,
    RMSprop,
    available_optimizers,
    get_optimizer,
)


def _minimize_quadratic(optimizer, start=5.0, steps=200):
    """Minimize f(x) = x^2 (gradient 2x) from a scalar start."""
    params = np.array([start])
    for _ in range(steps):
        params = optimizer.step(params, 2.0 * params)
    return float(params[0])


class TestGradientDescent:
    def test_single_step(self):
        optimizer = GradientDescent(learning_rate=0.1)
        params = optimizer.step(np.array([1.0, 2.0]), np.array([0.5, -0.5]))
        assert np.allclose(params, [0.95, 2.05])

    def test_does_not_mutate_input(self):
        optimizer = GradientDescent(0.1)
        params = np.array([1.0])
        optimizer.step(params, np.array([1.0]))
        assert params[0] == pytest.approx(1.0)

    def test_converges_on_quadratic(self):
        assert abs(_minimize_quadratic(GradientDescent(0.1))) < 1e-6

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            GradientDescent(learning_rate=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            GradientDescent(0.1).step(np.zeros(2), np.zeros(3))


class TestMomentum:
    def test_accumulates_velocity(self):
        optimizer = Momentum(learning_rate=1.0, beta=0.5)
        params = np.array([0.0])
        grad = np.array([1.0])
        params = optimizer.step(params, grad)  # v=1, p=-1
        assert params[0] == pytest.approx(-1.0)
        params = optimizer.step(params, grad)  # v=1.5, p=-2.5
        assert params[0] == pytest.approx(-2.5)

    def test_reset_clears_velocity(self):
        optimizer = Momentum(learning_rate=1.0, beta=0.9)
        optimizer.step(np.array([0.0]), np.array([1.0]))
        optimizer.reset()
        params = optimizer.step(np.array([0.0]), np.array([1.0]))
        assert params[0] == pytest.approx(-1.0)

    def test_converges_on_quadratic(self):
        assert abs(_minimize_quadratic(Momentum(0.05, beta=0.8))) < 1e-6

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            Momentum(0.1, beta=1.0)


class TestAdam:
    def test_first_step_magnitude(self):
        """With bias correction, the first Adam step is ~lr in gradient sign."""
        optimizer = Adam(learning_rate=0.1)
        params = optimizer.step(np.array([1.0]), np.array([1e-3]))
        assert params[0] == pytest.approx(1.0 - 0.1, abs=1e-3)

    def test_converges_on_quadratic(self):
        assert abs(_minimize_quadratic(Adam(0.1), steps=400)) < 1e-4

    def test_reset(self):
        optimizer = Adam(0.1)
        first = optimizer.step(np.array([1.0]), np.array([0.5]))
        optimizer.reset()
        again = optimizer.step(np.array([1.0]), np.array([0.5]))
        assert first[0] == pytest.approx(again[0])

    def test_step_counter_advances(self):
        optimizer = Adam(0.1)
        optimizer.step(np.zeros(1), np.ones(1))
        optimizer.step(np.zeros(1), np.ones(1))
        assert optimizer._t == 2

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(0.1, beta2=-0.1)


class TestRMSprop:
    def test_normalizes_gradient_scale(self):
        """Step size is ~lr regardless of gradient magnitude."""
        big = RMSprop(learning_rate=0.01, decay=0.0)
        small = RMSprop(learning_rate=0.01, decay=0.0)
        step_big = 1.0 - big.step(np.array([1.0]), np.array([100.0]))[0]
        step_small = 1.0 - small.step(np.array([1.0]), np.array([0.01]))[0]
        assert step_big == pytest.approx(step_small, rel=1e-4)

    def test_converges_to_lr_neighborhood_on_quadratic(self):
        # RMSprop normalizes gradient magnitude, so it oscillates in a
        # neighborhood of the optimum whose radius scales with lr.
        assert abs(_minimize_quadratic(RMSprop(0.01), steps=800)) < 0.05

    def test_reset(self):
        optimizer = RMSprop(0.01)
        optimizer.step(np.zeros(1), np.ones(1))
        optimizer.reset()
        assert optimizer._sq is None


class TestAdaGrad:
    def test_steps_shrink(self):
        optimizer = AdaGrad(learning_rate=1.0)
        params = np.array([10.0])
        deltas = []
        for _ in range(3):
            new = optimizer.step(params, np.array([1.0]))
            deltas.append(abs(new[0] - params[0]))
            params = new
        assert deltas[0] > deltas[1] > deltas[2]

    def test_converges_on_quadratic(self):
        assert abs(_minimize_quadratic(AdaGrad(2.0), steps=500)) < 1e-2


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_optimizer("adam"), Adam)
        assert isinstance(get_optimizer("gradient_descent"), GradientDescent)

    def test_aliases(self):
        assert isinstance(get_optimizer("gd"), GradientDescent)
        assert isinstance(get_optimizer("sgd"), GradientDescent)

    def test_kwargs(self):
        optimizer = get_optimizer("momentum", learning_rate=0.3, beta=0.7)
        assert optimizer.learning_rate == pytest.approx(0.3)
        assert optimizer.beta == pytest.approx(0.7)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_optimizer("lbfgs")

    def test_available(self):
        names = available_optimizers()
        assert "adam" in names and "gradient_descent" in names
