"""Result containers for the paper's experiments.

Plain dataclasses with ``to_dict``/``from_dict`` round-trips so the
:mod:`repro.io` layer can persist every experiment as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "GradientSamples",
    "VarianceResult",
    "DecayFit",
    "TrainingHistory",
]


@dataclass
class GradientSamples:
    """Last-parameter gradient samples for one (qubit count, method) cell."""

    num_qubits: int
    method: str
    gradients: np.ndarray

    @property
    def variance(self) -> float:
        """Population variance of the gradient samples (the paper's metric)."""
        return float(np.var(self.gradients))

    @property
    def mean(self) -> float:
        """Sample mean of the gradients (should hover near zero)."""
        return float(np.mean(self.gradients))

    def to_dict(self) -> dict:
        return {
            "num_qubits": self.num_qubits,
            "method": self.method,
            "gradients": [float(g) for g in self.gradients],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GradientSamples":
        return cls(
            num_qubits=int(payload["num_qubits"]),
            method=str(payload["method"]),
            gradients=np.asarray(payload["gradients"], dtype=float),
        )


@dataclass
class VarianceResult:
    """Full variance-analysis outcome (the data behind Fig. 5a).

    ``samples[(num_qubits, method)]`` holds the raw gradient draws;
    :meth:`variance_series` extracts the per-method decay curve.
    """

    qubit_counts: List[int]
    methods: List[str]
    samples: Dict[Tuple[int, str], GradientSamples] = field(default_factory=dict)

    def add(self, sample: GradientSamples) -> None:
        """Insert one cell (validated against the configured grid)."""
        if sample.num_qubits not in self.qubit_counts:
            raise ValueError(f"unexpected qubit count {sample.num_qubits}")
        if sample.method not in self.methods:
            raise ValueError(f"unexpected method {sample.method!r}")
        self.samples[(sample.num_qubits, sample.method)] = sample

    def variance_series(self, method: str) -> np.ndarray:
        """Gradient variance at each qubit count, ordered as ``qubit_counts``."""
        if method not in self.methods:
            raise KeyError(f"unknown method {method!r}")
        return np.array(
            [self.samples[(q, method)].variance for q in self.qubit_counts]
        )

    def gradient_matrix(self, method: str) -> np.ndarray:
        """Raw gradients stacked as ``(len(qubit_counts), num_circuits)``."""
        return np.stack(
            [self.samples[(q, method)].gradients for q in self.qubit_counts]
        )

    def to_dict(self) -> dict:
        return {
            "qubit_counts": list(self.qubit_counts),
            "methods": list(self.methods),
            "samples": [s.to_dict() for s in self.samples.values()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VarianceResult":
        result = cls(
            qubit_counts=[int(q) for q in payload["qubit_counts"]],
            methods=[str(m) for m in payload["methods"]],
        )
        for entry in payload["samples"]:
            result.add(GradientSamples.from_dict(entry))
        return result


@dataclass
class DecayFit:
    """Least-squares fit of ``ln Var(g) = intercept - rate * num_qubits``.

    ``rate > 0`` means the variance decays exponentially with width — the
    barren-plateau signature.  ``r_squared`` qualifies the fit.
    """

    method: str
    rate: float
    intercept: float
    r_squared: float

    def predicted_variance(self, num_qubits: np.ndarray) -> np.ndarray:
        """Model prediction ``exp(intercept - rate * q)``."""
        q = np.asarray(num_qubits, dtype=float)
        return np.exp(self.intercept - self.rate * q)

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "rate": self.rate,
            "intercept": self.intercept,
            "r_squared": self.r_squared,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DecayFit":
        return cls(
            method=str(payload["method"]),
            rate=float(payload["rate"]),
            intercept=float(payload["intercept"]),
            r_squared=float(payload["r_squared"]),
        )


@dataclass
class TrainingHistory:
    """Loss trajectory of one training run (one curve of Fig. 5b/5c)."""

    method: str
    optimizer: str
    losses: List[float]
    gradient_norms: List[float]
    initial_params: np.ndarray
    final_params: np.ndarray
    cost_kind: str = "global"

    @property
    def initial_loss(self) -> float:
        """Loss before the first update."""
        return self.losses[0]

    @property
    def final_loss(self) -> float:
        """Loss after the last update."""
        return self.losses[-1]

    @property
    def num_iterations(self) -> int:
        """Number of optimizer steps taken."""
        return len(self.losses) - 1

    def iterations_to_reach(self, threshold: float) -> Optional[int]:
        """First iteration whose loss is <= ``threshold`` (None if never)."""
        for iteration, loss in enumerate(self.losses):
            if loss <= threshold:
                return iteration
        return None

    @property
    def loss_reduction(self) -> float:
        """Initial minus final loss (positive = learned something)."""
        return self.initial_loss - self.final_loss

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "optimizer": self.optimizer,
            "losses": [float(x) for x in self.losses],
            "gradient_norms": [float(x) for x in self.gradient_norms],
            "initial_params": [float(x) for x in self.initial_params],
            "final_params": [float(x) for x in self.final_params],
            "cost_kind": self.cost_kind,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        return cls(
            method=str(payload["method"]),
            optimizer=str(payload["optimizer"]),
            losses=[float(x) for x in payload["losses"]],
            gradient_norms=[float(x) for x in payload["gradient_norms"]],
            initial_params=np.asarray(payload["initial_params"], dtype=float),
            final_params=np.asarray(payload["final_params"], dtype=float),
            cost_kind=str(payload.get("cost_kind", "global")),
        )
