"""The paper's experiment engines: cost functions, variance analysis,
decay-rate fits, training loops, and paper-level runners.

Experiments are described declaratively by :class:`ExperimentSpec` and
executed by :func:`repro.core.spec.run` (exported as ``repro.run``)
through a pluggable executor registry (serial / batched / process-pool);
see :mod:`repro.core.spec` for the quickstart."""

from repro.core.cost import (
    ObservableCost,
    global_identity_cost,
    local_identity_cost,
    make_cost,
    state_learning_cost,
)
from repro.core.decay import (
    fit_all_methods,
    fit_decay_rate,
    improvement_over_random,
    rank_methods,
)
from repro.core.profile import (
    GradientProfile,
    ProfileConfig,
    gradient_profile,
    profile_all_methods,
)
from repro.core.executor import (
    BatchedExecutor,
    DeviceExecutor,
    Executor,
    LockstepExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    ShardCheckpoint,
    WorkUnit,
    available_executors,
    get_executor,
    register_executor,
)
from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
    run_full_reproduction,
    run_training_experiment,
    run_variance_experiment,
    variance_outcome_from_result,
)
from repro.core.spec import ExperimentSpec, run
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)
from repro.core.sweep import improvement_series, sweep_variance
from repro.core.training import (
    Trainer,
    TrainingConfig,
    expand_trajectories,
    train,
    train_all_methods,
)
from repro.core.variance import VarianceAnalysis, VarianceConfig

__all__ = [
    "BatchedExecutor",
    "DecayFit",
    "DeviceExecutor",
    "Executor",
    "LockstepExecutor",
    "ExperimentSpec",
    "FullReproductionOutcome",
    "GradientProfile",
    "GradientSamples",
    "ObservableCost",
    "ProcessPoolExecutor",
    "ProfileConfig",
    "SerialExecutor",
    "ShardCheckpoint",
    "WorkUnit",
    "available_executors",
    "get_executor",
    "gradient_profile",
    "profile_all_methods",
    "register_executor",
    "run",
    "Trainer",
    "TrainingConfig",
    "TrainingExperimentOutcome",
    "TrainingHistory",
    "VarianceAnalysis",
    "VarianceConfig",
    "VarianceExperimentOutcome",
    "VarianceResult",
    "fit_all_methods",
    "fit_decay_rate",
    "global_identity_cost",
    "improvement_over_random",
    "improvement_series",
    "local_identity_cost",
    "make_cost",
    "sweep_variance",
    "rank_methods",
    "run_full_reproduction",
    "run_training_experiment",
    "run_variance_experiment",
    "state_learning_cost",
    "train",
    "train_all_methods",
    "expand_trajectories",
    "variance_outcome_from_result",
]
