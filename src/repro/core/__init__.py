"""The paper's experiment engines: cost functions, variance analysis,
decay-rate fits, training loops, and paper-level runners."""

from repro.core.cost import (
    ObservableCost,
    global_identity_cost,
    local_identity_cost,
    make_cost,
    state_learning_cost,
)
from repro.core.decay import (
    fit_all_methods,
    fit_decay_rate,
    improvement_over_random,
    rank_methods,
)
from repro.core.profile import (
    GradientProfile,
    ProfileConfig,
    gradient_profile,
    profile_all_methods,
)
from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
    run_full_reproduction,
    run_training_experiment,
    run_variance_experiment,
)
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)
from repro.core.sweep import improvement_series, sweep_variance
from repro.core.training import Trainer, TrainingConfig, train, train_all_methods
from repro.core.variance import VarianceAnalysis, VarianceConfig

__all__ = [
    "DecayFit",
    "FullReproductionOutcome",
    "GradientProfile",
    "GradientSamples",
    "ObservableCost",
    "ProfileConfig",
    "gradient_profile",
    "profile_all_methods",
    "Trainer",
    "TrainingConfig",
    "TrainingExperimentOutcome",
    "TrainingHistory",
    "VarianceAnalysis",
    "VarianceConfig",
    "VarianceExperimentOutcome",
    "VarianceResult",
    "fit_all_methods",
    "fit_decay_rate",
    "global_identity_cost",
    "improvement_over_random",
    "improvement_series",
    "local_identity_cost",
    "make_cost",
    "sweep_variance",
    "rank_methods",
    "run_full_reproduction",
    "run_training_experiment",
    "run_variance_experiment",
    "state_learning_cost",
    "train",
    "train_all_methods",
]
