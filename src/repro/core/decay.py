"""Variance-decay-rate fitting and the paper's improvement table.

The barren-plateau signature is exponential decay of gradient variance
with qubit count: ``Var(g) ~ exp(-rate * q)``.  The paper compares methods
by the decay *rate* and reports each method's percentage improvement over
random initialization (Section VI-A: Xavier ~62.3%, He ~32%, LeCun ~28.3%,
orthogonal ~26.4%).

``fit_decay_rate`` performs the least-squares fit of ``ln Var`` against
``q``; ``improvement_over_random`` reproduces the percentage metric.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.results import DecayFit, VarianceResult

__all__ = [
    "fit_decay_rate",
    "fit_all_methods",
    "improvement_over_random",
    "rank_methods",
]

_FLOOR = 1e-300  # guards log() against exact zeros from degenerate samples


def fit_decay_rate(
    qubit_counts: Sequence[int],
    variances: Sequence[float],
    method: str = "",
) -> DecayFit:
    """Least-squares fit of ``ln Var = intercept - rate * q``.

    Parameters
    ----------
    qubit_counts:
        Circuit widths (at least two distinct values).
    variances:
        Positive gradient variances, one per width.
    method:
        Label recorded on the returned :class:`DecayFit`.
    """
    q = np.asarray(qubit_counts, dtype=float)
    v = np.asarray(variances, dtype=float)
    if q.shape != v.shape or q.size < 2:
        raise ValueError("need >= 2 (qubit count, variance) pairs of equal length")
    if np.any(v < 0):
        raise ValueError("variances must be non-negative")
    if np.unique(q).size < 2:
        raise ValueError("qubit counts must contain >= 2 distinct values")
    log_v = np.log(np.maximum(v, _FLOOR))
    slope, intercept = np.polyfit(q, log_v, deg=1)
    predicted = intercept + slope * q
    residual = log_v - predicted
    total = log_v - log_v.mean()
    ss_tot = float(total @ total)
    r_squared = 1.0 - float(residual @ residual) / ss_tot if ss_tot > 0 else 1.0
    return DecayFit(
        method=method,
        rate=float(-slope),
        intercept=float(intercept),
        r_squared=r_squared,
    )


def fit_all_methods(result: VarianceResult) -> Dict[str, DecayFit]:
    """Fit a decay rate for every method in a variance result."""
    return {
        method: fit_decay_rate(
            result.qubit_counts, result.variance_series(method), method=method
        )
        for method in result.methods
    }


def improvement_over_random(
    fits: Dict[str, DecayFit], baseline: str = "random"
) -> Dict[str, float]:
    """The paper's headline metric.

    ``improvement(t) = 100 * (rate_random - rate_t) / rate_random`` —
    positive when method ``t`` decays slower (is better) than random.
    The baseline itself is excluded from the returned mapping.
    """
    if baseline not in fits:
        raise KeyError(f"baseline {baseline!r} missing from fits")
    base_rate = fits[baseline].rate
    if base_rate <= 0:
        raise ValueError(
            f"baseline decay rate must be positive to normalize, got {base_rate}"
        )
    return {
        method: 100.0 * (base_rate - fit.rate) / base_rate
        for method, fit in fits.items()
        if method != baseline
    }


def rank_methods(
    fits: Dict[str, DecayFit], include_baseline: bool = True
) -> "list[str]":
    """Methods ordered best (slowest decay) to worst (fastest decay)."""
    items = fits.items()
    if not include_baseline:
        items = ((m, f) for m, f in items if m != "random")
    return [method for method, _ in sorted(items, key=lambda kv: kv[1].rate)]
