"""Gradient-variance analysis engine (paper Section IV-C, Fig. 5a).

For every qubit count the engine samples ``num_circuits`` random PQC
structures (Eq. 2), initializes each with every method under test, and
records the cost gradient with respect to the circuit's *last* parameter,
computed with the exact parameter-shift rule (two circuit executions).

Pairing matters: the same circuit structures — and, per structure, the same
RNG child streams — are reused across methods, so method comparisons are
paired rather than confounded by structure resampling noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ansatz.random_pqc import DEFAULT_GATE_POOL, RandomPQC
from repro.backend.gradients import parameter_shift
from repro.backend.observables import Observable
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import make_cost
from repro.core.results import GradientSamples, VarianceResult
from repro.initializers import Initializer, get_initializer
from repro.initializers.registry import PAPER_METHODS
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["VarianceConfig", "VarianceAnalysis"]


@dataclass
class VarianceConfig:
    """Configuration of the variance study.

    Defaults follow the paper where it is explicit: qubit set
    {2, 4, 6, 8, 10}, 200 circuits per qubit count, gate pool {RX, RY, RZ},
    CZ chain entanglement, global identity cost, gradient of the last
    parameter only.

    The paper never states the variance-analysis circuit depth (only that
    it is "substantial").  Depth controls the outcome: width-scaled
    initializers keep per-qubit accumulated angle variance at
    ``num_layers / num_qubits``, so once ``num_layers >> num_qubits`` every
    scheme scrambles to a 2-design and the separation from random vanishes
    (measured in EXPERIMENTS.md and ``bench_ablation_depth``).  The default
    of 30 layers is deep enough that random initialization shows textbook
    BP decay (rate ~ 2 ln 2 per qubit) while the classical schemes retain
    their advantage — the regime the paper reports.
    """

    qubit_counts: Sequence[int] = (2, 4, 6, 8, 10)
    num_circuits: int = 200
    num_layers: int = 30
    methods: Sequence[str] = tuple(PAPER_METHODS)
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL
    entanglement: str = "chain"
    entangler: str = "CZ"
    cost_kind: str = "global"
    #: Which parameter's gradient to probe: the paper differentiates the
    #: "last" parameter; "first" and "middle" are extensions (McClean et
    #: al. probe an early-layer angle, where the tail of the circuit also
    #: scrambles the observable).
    param_position: str = "last"
    method_kwargs: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.qubit_counts:
            raise ValueError("qubit_counts must be non-empty")
        for q in self.qubit_counts:
            check_positive_int(int(q), "qubit count")
        check_positive_int(self.num_circuits, "num_circuits")
        check_positive_int(self.num_layers, "num_layers")
        if not self.methods:
            raise ValueError("methods must be non-empty")
        if self.param_position not in ("first", "middle", "last"):
            raise ValueError(
                "param_position must be 'first', 'middle' or 'last', got "
                f"{self.param_position!r}"
            )

    def build_initializers(self) -> Dict[str, Initializer]:
        """Instantiate the configured initialization methods by name."""
        return {
            name: get_initializer(name, **self.method_kwargs.get(name, {}))
            for name in self.methods
        }


class VarianceAnalysis:
    """Runs the variance study and returns a :class:`VarianceResult`."""

    def __init__(
        self,
        config: Optional[VarianceConfig] = None,
        simulator: Optional[StatevectorSimulator] = None,
    ):
        self.config = config or VarianceConfig()
        self.simulator = simulator or StatevectorSimulator()

    def run(self, seed: SeedLike = None, verbose: bool = False) -> VarianceResult:
        """Execute the full (qubit count x method x circuit) grid.

        Parameters
        ----------
        seed:
            Master seed; every circuit instance derives independent child
            streams for its structure and for each method's angles.
        verbose:
            Print one progress line per qubit count.
        """
        config = self.config
        rng = ensure_rng(seed)
        initializers = config.build_initializers()
        result = VarianceResult(
            qubit_counts=[int(q) for q in config.qubit_counts],
            methods=list(config.methods),
        )
        for num_qubits in result.qubit_counts:
            grads: Dict[str, List[float]] = {m: [] for m in config.methods}
            for _ in range(config.num_circuits):
                structure_rng = spawn_rng(rng)
                angles_rng = spawn_rng(rng)
                pqc = RandomPQC(
                    num_qubits=num_qubits,
                    num_layers=config.num_layers,
                    gate_pool=config.gate_pool,
                    entanglement=config.entanglement,
                    entangler=config.entangler,
                    seed=structure_rng,
                )
                circuit = pqc.build()
                cost = make_cost(
                    config.cost_kind, circuit, simulator=self.simulator
                )
                shape = pqc.parameter_shape
                # Per-method child streams derived from one per-circuit
                # parent keep the comparison paired and order-independent.
                for method, initializer in initializers.items():
                    params = initializer.sample(shape, spawn_rng(angles_rng))
                    grad = self._probe_gradient(cost, params)
                    grads[method].append(grad)
            for method in config.methods:
                result.add(
                    GradientSamples(
                        num_qubits=num_qubits,
                        method=method,
                        gradients=np.asarray(grads[method]),
                    )
                )
            if verbose:
                variances = ", ".join(
                    f"{m}={result.samples[(num_qubits, m)].variance:.3e}"
                    for m in config.methods
                )
                print(f"[variance] q={num_qubits}: {variances}")
        return result

    def _probe_gradient(self, cost, params: np.ndarray) -> float:
        """d(cost)/d(theta_probe) via the exact parameter-shift rule.

        The probed index follows ``config.param_position``; the paper's
        setup is the last parameter.
        """
        count = cost.circuit.num_parameters
        if self.config.param_position == "first":
            index = 0
        elif self.config.param_position == "middle":
            index = count // 2
        else:
            index = count - 1
        raw = parameter_shift(
            cost.circuit,
            cost.observable,
            params,
            simulator=self.simulator,
            param_indices=[index],
        )
        return float(cost.scale * raw[0])
