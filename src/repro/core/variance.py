"""Gradient-variance analysis engine (paper Section IV-C, Fig. 5a).

For every qubit count the engine samples ``num_circuits`` random PQC
structures (Eq. 2), initializes each with every method under test, and
records the cost gradient with respect to the circuit's *last* parameter,
computed with the exact parameter-shift rule (two circuit executions).

Pairing matters: the same circuit structures — and, per structure, the same
RNG child streams — are reused across methods, so method comparisons are
paired rather than confounded by structure resampling noise.

Execution is batched by default (``VarianceConfig.batched``): per
structure, every method's angle draw and both parameter-shift terms are
folded into one :func:`repro.backend.gradients.batch_parameter_shift`
call.  All angles are sampled *before* any evaluation, in method order, so
the paired RNG child streams are consumed exactly as in the sequential
path and seeded results are bit-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ansatz.random_pqc import DEFAULT_GATE_POOL, RandomPQC
from repro.backend.gradients import batch_parameter_shift, parameter_shift
from repro.backend.observables import Observable
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import make_cost
from repro.core.results import GradientSamples, VarianceResult
from repro.initializers import Initializer, get_initializer
from repro.initializers.registry import PAPER_METHODS
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["VarianceConfig", "VarianceAnalysis"]


@dataclass
class VarianceConfig:
    """Configuration of the variance study.

    Defaults follow the paper where it is explicit: qubit set
    {2, 4, 6, 8, 10}, 200 circuits per qubit count, gate pool {RX, RY, RZ},
    CZ chain entanglement, global identity cost, gradient of the last
    parameter only.

    The paper never states the variance-analysis circuit depth (only that
    it is "substantial").  Depth controls the outcome: width-scaled
    initializers keep per-qubit accumulated angle variance at
    ``num_layers / num_qubits``, so once ``num_layers >> num_qubits`` every
    scheme scrambles to a 2-design and the separation from random vanishes
    (measured in EXPERIMENTS.md and ``bench_ablation_depth``).  The default
    of 30 layers is deep enough that random initialization shows textbook
    BP decay (rate ~ 2 ln 2 per qubit) while the classical schemes retain
    their advantage — the regime the paper reports.
    """

    qubit_counts: Sequence[int] = (2, 4, 6, 8, 10)
    num_circuits: int = 200
    num_layers: int = 30
    methods: Sequence[str] = tuple(PAPER_METHODS)
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL
    entanglement: str = "chain"
    entangler: str = "CZ"
    cost_kind: str = "global"
    #: Which parameter's gradient to probe: the paper differentiates the
    #: "last" parameter; "first" and "middle" are extensions (McClean et
    #: al. probe an early-layer angle, where the tail of the circuit also
    #: scrambles the observable).
    param_position: str = "last"
    #: Fold all methods' draws and both shift terms per structure into one
    #: batched statevector execution.  Seeded results are bit-identical
    #: with this on or off; only throughput changes (see module docstring).
    batched: bool = True
    method_kwargs: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.qubit_counts:
            raise ValueError("qubit_counts must be non-empty")
        for q in self.qubit_counts:
            check_positive_int(int(q), "qubit count")
        check_positive_int(self.num_circuits, "num_circuits")
        check_positive_int(self.num_layers, "num_layers")
        if not self.methods:
            raise ValueError("methods must be non-empty")
        if self.param_position not in ("first", "middle", "last"):
            raise ValueError(
                "param_position must be 'first', 'middle' or 'last', got "
                f"{self.param_position!r}"
            )

    def build_initializers(self) -> Dict[str, Initializer]:
        """Instantiate the configured initialization methods by name."""
        return {
            name: get_initializer(name, **self.method_kwargs.get(name, {}))
            for name in self.methods
        }


class VarianceAnalysis:
    """Runs the variance study and returns a :class:`VarianceResult`."""

    def __init__(
        self,
        config: Optional[VarianceConfig] = None,
        simulator: Optional[StatevectorSimulator] = None,
    ):
        self.config = config or VarianceConfig()
        self.simulator = simulator or StatevectorSimulator()

    def run(self, seed: SeedLike = None, verbose: bool = False) -> VarianceResult:
        """Execute the full (qubit count x method x circuit) grid.

        Parameters
        ----------
        seed:
            Master seed; every circuit instance derives independent child
            streams for its structure and for each method's angles.
        verbose:
            Print one progress line per qubit count.
        """
        config = self.config
        rng = ensure_rng(seed)
        initializers = config.build_initializers()
        result = VarianceResult(
            qubit_counts=[int(q) for q in config.qubit_counts],
            methods=list(config.methods),
        )
        for num_qubits in result.qubit_counts:
            grads: Dict[str, List[float]] = {m: [] for m in config.methods}
            for _ in range(config.num_circuits):
                structure_rng = spawn_rng(rng)
                angles_rng = spawn_rng(rng)
                pqc = RandomPQC(
                    num_qubits=num_qubits,
                    num_layers=config.num_layers,
                    gate_pool=config.gate_pool,
                    entanglement=config.entanglement,
                    entangler=config.entangler,
                    seed=structure_rng,
                )
                circuit = pqc.build()
                cost = make_cost(
                    config.cost_kind, circuit, simulator=self.simulator
                )
                shape = pqc.parameter_shape
                # Per-method child streams derived from one per-circuit
                # parent keep the comparison paired and order-independent.
                # Sampling every method's angles before any evaluation
                # consumes the streams identically in batched and
                # sequential modes.
                draws = {
                    method: initializer.sample(shape, spawn_rng(angles_rng))
                    for method, initializer in initializers.items()
                }
                if config.batched:
                    index = self._probe_index(cost.circuit.num_parameters)
                    matrix = np.stack(
                        [
                            np.asarray(draws[m], dtype=float).reshape(-1)
                            for m in config.methods
                        ]
                    )
                    raw = batch_parameter_shift(
                        cost.circuit,
                        cost.observable,
                        matrix,
                        simulator=self.simulator,
                        param_indices=[index],
                    )
                    for slot, method in enumerate(config.methods):
                        grads[method].append(float(cost.scale * raw[slot, 0]))
                else:
                    for method in config.methods:
                        grads[method].append(
                            self._probe_gradient(cost, draws[method])
                        )
            for method in config.methods:
                result.add(
                    GradientSamples(
                        num_qubits=num_qubits,
                        method=method,
                        gradients=np.asarray(grads[method]),
                    )
                )
            if verbose:
                variances = ", ".join(
                    f"{m}={result.samples[(num_qubits, m)].variance:.3e}"
                    for m in config.methods
                )
                print(f"[variance] q={num_qubits}: {variances}")
        return result

    def _probe_index(self, count: int) -> int:
        """Resolve ``config.param_position`` to a parameter index."""
        if self.config.param_position == "first":
            return 0
        if self.config.param_position == "middle":
            return count // 2
        return count - 1

    def _probe_gradient(self, cost, params: np.ndarray) -> float:
        """d(cost)/d(theta_probe) via the exact parameter-shift rule.

        The probed index follows ``config.param_position``; the paper's
        setup is the last parameter.  Sequential reference path for
        ``batched=False``.
        """
        index = self._probe_index(cost.circuit.num_parameters)
        raw = parameter_shift(
            cost.circuit,
            cost.observable,
            params,
            simulator=self.simulator,
            param_indices=[index],
        )
        return float(cost.scale * raw[0])
