"""Gradient-variance analysis engine (paper Section IV-C, Fig. 5a).

For every qubit count the engine samples ``num_circuits`` random PQC
structures (Eq. 2), initializes each with every method under test, and
records the cost gradient with respect to the circuit's *last* parameter,
computed with the exact parameter-shift rule (two circuit executions).

Pairing matters: the same circuit structures — and, per structure, the same
RNG child streams — are reused across methods, so method comparisons are
paired rather than confounded by structure resampling noise.

Execution is batched by default (``VarianceConfig.batched``): per
structure, every method's angle draw and both parameter-shift terms are
folded into one :func:`repro.backend.gradients.batch_parameter_shift`
call.  All angles are sampled *before* any evaluation, in method order, so
the paired RNG child streams are consumed exactly as in the sequential
path and seeded results are bit-identical either way.

``VarianceConfig.fold`` widens the fold further (the default,
``"shape"``): structures sharing a circuit *shape* — for this sampler,
every structure of a grid cell (:func:`repro.ansatz.random_pqc
.circuit_shape_key`) — are grouped into shape buckets by
:func:`plan_shape_buckets` and executed together through
:func:`repro.backend.gradients.megabatch_parameter_shift`, folding
(structures x methods x shift terms) rows into executions with batch
sizes in the hundreds.  All sampling still happens structure by
structure, before any evaluation, so the RNG streams — and therefore the
seeded gradients — are bit-identical across ``fold`` modes, ``batched``
modes, and executors.

With ``VarianceConfig.shots`` the probed gradients are estimated from
finite measurement samples instead of analytically: each method reserves
one further per-circuit child stream (after the angle draws) and both
modes consume it identically, so the sampled grid, too, is bit-identical
across executors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ansatz.random_pqc import DEFAULT_GATE_POOL, RandomPQC
from repro.backend.circuit import QuantumCircuit
from repro.backend.gradients import (
    batch_parameter_shift,
    megabatch_parameter_shift,
    parameter_shift,
)
from repro.backend.noise import NoiseModel, resolve_noise_model
from repro.backend.observables import Observable
from repro.backend.ptm import PauliTransferSimulator
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import make_cost
from repro.core.results import GradientSamples, VarianceResult
from repro.initializers import Initializer, get_initializer
from repro.initializers.registry import PAPER_METHODS
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng, spawn_seeds
from repro.utils.validation import check_in_choices, check_positive_int

__all__ = [
    "VarianceConfig",
    "VarianceAnalysis",
    "VarianceShard",
    "plan_variance_shards",
    "plan_shape_buckets",
    "run_variance_shard",
    "merge_variance_outputs",
    "format_variance_progress",
]


@dataclass
class VarianceConfig:
    """Configuration of the variance study.

    Defaults follow the paper where it is explicit: qubit set
    {2, 4, 6, 8, 10}, 200 circuits per qubit count, gate pool {RX, RY, RZ},
    CZ chain entanglement, global identity cost, gradient of the last
    parameter only.

    The paper never states the variance-analysis circuit depth (only that
    it is "substantial").  Depth controls the outcome: width-scaled
    initializers keep per-qubit accumulated angle variance at
    ``num_layers / num_qubits``, so once ``num_layers >> num_qubits`` every
    scheme scrambles to a 2-design and the separation from random vanishes
    (measured in EXPERIMENTS.md and ``bench_ablation_depth``).  The default
    of 30 layers is deep enough that random initialization shows textbook
    BP decay (rate ~ 2 ln 2 per qubit) while the classical schemes retain
    their advantage — the regime the paper reports.
    """

    qubit_counts: Sequence[int] = (2, 4, 6, 8, 10)
    num_circuits: int = 200
    num_layers: int = 30
    methods: Sequence[str] = tuple(PAPER_METHODS)
    gate_pool: Sequence[str] = DEFAULT_GATE_POOL
    entanglement: str = "chain"
    entangler: str = "CZ"
    cost_kind: str = "global"
    #: Which parameter's gradient to probe: the paper differentiates the
    #: "last" parameter; "first" and "middle" are extensions (McClean et
    #: al. probe an early-layer angle, where the tail of the circuit also
    #: scrambles the observable).
    param_position: str = "last"
    #: Fold all methods' draws and both shift terms per structure into one
    #: batched statevector execution.  Seeded results are bit-identical
    #: with this on or off; only throughput changes (see module docstring).
    batched: bool = True
    #: Fold scope of the batched mode: ``"shape"`` (default) additionally
    #: folds every structure sharing a circuit shape into one mega-batched
    #: execution (batch sizes in the hundreds); ``"structure"`` keeps one
    #: execution per structure.  A pure throughput knob — seeded results
    #: are bit-identical across fold scopes, so it is excluded from
    #: checkpoint fingerprints.  Ignored when ``batched`` is off.
    fold: str = "shape"
    #: Estimate every probed gradient from this many measurement samples
    #: instead of analytically — the hardware-realistic noise extension.
    #: Each method gets an independent per-circuit sampling stream (one
    #: ``spawn_rng`` child per method, reserved after the angle draws), so
    #: batched and sequential modes stay bit-identical under sampling too.
    shots: Optional[int] = None
    #: Array backend the statevector kernels run on: ``"numpy"`` (default,
    #: bit-identical to the pre-backend code) or an accelerator namespace
    #: spec such as ``"torch"`` / ``"torch:cuda:0"`` / ``"cupy"``, resolved
    #: lazily at run time (see :mod:`repro.utils.array_api`).  Excluded
    #: from checkpoint fingerprints only at its default.
    backend: str = "numpy"
    #: Serializable noise-model payload (``NoiseModel.from_dict``
    #: vocabulary: ``default`` / ``per_gate`` channels plus
    #: ``readout_error``).  When set, every probed gradient runs through
    #: the batched Pauli-transfer engine
    #: (:class:`repro.backend.ptm.PauliTransferSimulator`) instead of the
    #: statevector kernels.  Trivial payloads (no channels, ideal
    #: readout) are normalized to ``None`` so they hit the noiseless fast
    #: path — and the same checkpoint fingerprints.
    noise: Optional[Dict[str, object]] = None
    method_kwargs: Dict[str, dict] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.qubit_counts:
            raise ValueError("qubit_counts must be non-empty")
        for q in self.qubit_counts:
            check_positive_int(int(q), "qubit count")
        check_positive_int(self.num_circuits, "num_circuits")
        check_positive_int(self.num_layers, "num_layers")
        if not self.methods:
            raise ValueError("methods must be non-empty")
        if self.param_position not in ("first", "middle", "last"):
            raise ValueError(
                "param_position must be 'first', 'middle' or 'last', got "
                f"{self.param_position!r}"
            )
        check_in_choices(self.fold, ("structure", "shape"), "fold")
        if self.shots is not None:
            check_positive_int(self.shots, "shots")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"backend must be a non-empty array-backend spec string, "
                f"got {self.backend!r}"
            )
        if self.noise is not None:
            # Validate eagerly and store the canonical payload; trivial
            # models collapse to None (the noiseless path *is* their
            # exact execution, and the fingerprints stay aligned).
            model = NoiseModel.from_dict(dict(self.noise))
            self.noise = None if model.is_trivial else model.to_dict()

    def build_initializers(self) -> Dict[str, Initializer]:
        """Instantiate the configured initialization methods by name."""
        return {
            name: get_initializer(name, **self.method_kwargs.get(name, {}))
            for name in self.methods
        }


@dataclass(frozen=True)
class VarianceShard:
    """One schedulable slice of the variance grid.

    A shard is a contiguous run of circuit instances for a single qubit
    count, carrying the *pre-reserved* RNG children (two per circuit:
    structure, angles) it will consume.  Because the children are reserved
    up front via :func:`repro.utils.rng.spawn_seeds`, executing shards in
    any order — or in other processes — reproduces the serial streams bit
    for bit.
    """

    num_qubits: int
    #: Index of the shard's first circuit within its qubit count's grid row.
    start: int
    #: ``(structure, angles)`` seed pairs, flattened: ``2 * num_circuits``.
    seeds: Tuple[np.random.SeedSequence, ...]

    @property
    def num_circuits(self) -> int:
        return len(self.seeds) // 2

    @property
    def unit_id(self) -> str:
        return f"variance-q{self.num_qubits}-c{self.start:05d}"


def plan_variance_shards(
    config: VarianceConfig,
    seed: SeedLike = None,
    circuits_per_shard: Optional[int] = None,
) -> List[VarianceShard]:
    """Split the (qubit count x circuit) grid into executable shards.

    All RNG children are reserved here, in the exact order the serial loop
    would spawn them, so the plan — not the execution schedule — fixes
    every random stream.  ``circuits_per_shard=None`` yields one shard per
    qubit count; smaller values subdivide each qubit count's row for load
    balancing across workers.
    """
    counts = [int(q) for q in config.qubit_counts]
    per_count = config.num_circuits
    children = spawn_seeds(seed, 2 * per_count * len(counts))
    if circuits_per_shard is None:
        step = per_count
    else:
        step = check_positive_int(int(circuits_per_shard), "circuits_per_shard")
    shards: List[VarianceShard] = []
    for k, num_qubits in enumerate(counts):
        base = 2 * per_count * k
        for start in range(0, per_count, step):
            stop = min(start + step, per_count)
            shards.append(
                VarianceShard(
                    num_qubits=num_qubits,
                    start=start,
                    seeds=tuple(children[base + 2 * start : base + 2 * stop]),
                )
            )
    return shards


def plan_shape_buckets(keys: Sequence) -> List[List[int]]:
    """Group structure indices into shape buckets, first-appearance order.

    ``keys`` are hashable shape fingerprints (one per structure, e.g. from
    :func:`repro.ansatz.random_pqc.circuit_shape_key`); the result is one
    index list per distinct key, each list in ascending order.  For the
    paper's sampler every structure of a grid cell shares one shape, so a
    shard typically collapses into a single bucket of
    ``num_circuits x methods x shift-terms`` foldable rows — but the
    planner stays general for samplers whose wire patterns vary.
    """
    buckets: "Dict[object, List[int]]" = {}
    for index, key in enumerate(keys):
        buckets.setdefault(key, []).append(index)
    return list(buckets.values())


@dataclass
class _StructureRows:
    """One structure's contribution to a shape bucket's mega-batch."""

    circuit: QuantumCircuit
    observable: Observable
    scale: float
    #: ``(num_methods, P)`` angle matrix, method order.
    params: np.ndarray
    #: Per-method sampling streams (``None`` in analytic mode).
    sample_rngs: Optional[list]


def _observable_signature(observable: Observable):
    """Hashable identity of an observable, folded into bucket keys.

    A bucket shares its first structure's observable across all rows, so
    only structures whose observables are *known equal* may share a
    bucket.  The current cost kinds depend on the qubit count alone, but
    the key guards the invariant structurally: an unrecognized (or
    future structure-dependent) observable falls back to object identity,
    which degrades those structures to singleton buckets — still correct,
    just unfolded — instead of silently evaluating against the wrong
    operator.
    """
    from repro.backend.observables import PauliString, PauliSum, Projector

    if isinstance(observable, Projector):
        return ("projector", observable.bits)
    if isinstance(observable, PauliString):
        return ("pauli", observable.word, observable.coefficient)
    if isinstance(observable, PauliSum):
        return (
            "pauli_sum",
            tuple((term.word, term.coefficient) for term in observable.terms),
        )
    return ("opaque", id(observable))


def _probe_index(config: VarianceConfig, count: int) -> int:
    """Resolve ``config.param_position`` to a parameter index."""
    if config.param_position == "first":
        return 0
    if config.param_position == "middle":
        return count // 2
    return count - 1


def _probe_gradient(
    config: VarianceConfig, cost, params: np.ndarray, simulator, sample_rng=None
) -> float:
    """d(cost)/d(theta_probe) via the (optionally sampled) shift rule.

    The probed index follows ``config.param_position``; the paper's setup
    is the last parameter.  Sequential reference path for
    ``batched=False``; with ``config.shots`` both shifted expectations
    are estimated from samples drawn off ``sample_rng``.
    """
    index = _probe_index(config, cost.circuit.num_parameters)
    raw = parameter_shift(
        cost.circuit,
        cost.observable,
        params,
        simulator=simulator,
        param_indices=[index],
        shots=config.shots,
        seed=sample_rng,
    )
    return float(cost.scale * raw[0])


def _build_simulator(
    config: VarianceConfig, noise_model: Optional[NoiseModel] = None
):
    """Simulator for a config: statevector, or PTM when noise is set."""
    if noise_model is None:
        noise_model = resolve_noise_model(config.noise)
    if noise_model is not None:
        return PauliTransferSimulator(noise_model, backend=config.backend)
    return StatevectorSimulator(backend=config.backend)


def run_variance_shard(
    config: VarianceConfig,
    shard: VarianceShard,
    simulator: Optional[StatevectorSimulator] = None,
) -> dict:
    """Execute one shard and return a JSON-able output record.

    This is the picklable work-unit function shipped to executor workers
    (and written to shard checkpoints): plain ``dict``/``list``/``float``
    payloads only, keyed so :func:`merge_variance_outputs` can reassemble
    the full grid in order.
    """
    noise_model = resolve_noise_model(config.noise)
    simulator = simulator or _build_simulator(config, noise_model)
    initializers = config.build_initializers()
    grads: Dict[str, List[float]] = {m: [] for m in config.methods}
    # The mega-batch planner is statevector-specific; noisy shards fold
    # through the per-structure batched shift-rule path instead.  ``fold``
    # is excluded from checkpoint fingerprints, so forcing it off here
    # cannot split cache keys.
    megabatched = (
        config.batched and config.fold == "shape" and noise_model is None
    )
    keys: List = []
    items: List[_StructureRows] = []
    for i in range(shard.num_circuits):
        structure_rng = ensure_rng(shard.seeds[2 * i])
        angles_rng = ensure_rng(shard.seeds[2 * i + 1])
        pqc = RandomPQC(
            num_qubits=shard.num_qubits,
            num_layers=config.num_layers,
            gate_pool=config.gate_pool,
            entanglement=config.entanglement,
            entangler=config.entangler,
            seed=structure_rng,
        )
        circuit = pqc.build()
        cost = make_cost(config.cost_kind, circuit, simulator=simulator)
        shape = pqc.parameter_shape
        # Per-method child streams derived from one per-circuit parent keep
        # the comparison paired and order-independent.  Sampling every
        # method's angles before any evaluation consumes the streams
        # identically in all execution modes.
        draws = {
            method: initializer.sample(shape, spawn_rng(angles_rng))
            for method, initializer in initializers.items()
        }
        # Sampled probes reserve one further child per method, in method
        # order after every angle draw, so the draw streams above stay
        # bit-stable and each method's measurement stream is shared by
        # every execution mode.
        sample_rngs = None
        if config.shots is not None:
            sample_rngs = [spawn_rng(angles_rng) for _ in config.methods]
        if megabatched:
            # Defer execution: collect this structure's rows for the
            # shape-bucket fold below.  All randomness has been consumed
            # already, so deferral cannot perturb the streams.
            keys.append((pqc.shape_key, _observable_signature(cost.observable)))
            items.append(
                _StructureRows(
                    circuit=circuit,
                    observable=cost.observable,
                    scale=cost.scale,
                    params=np.stack(
                        [
                            np.asarray(draws[m], dtype=float).reshape(-1)
                            for m in config.methods
                        ]
                    ),
                    sample_rngs=sample_rngs,
                )
            )
        elif config.batched:
            index = _probe_index(config, cost.circuit.num_parameters)
            matrix = np.stack(
                [
                    np.asarray(draws[m], dtype=float).reshape(-1)
                    for m in config.methods
                ]
            )
            raw = batch_parameter_shift(
                cost.circuit,
                cost.observable,
                matrix,
                simulator=simulator,
                param_indices=[index],
                shots=config.shots,
                seed=sample_rngs,
            )
            for slot, method in enumerate(config.methods):
                grads[method].append(float(cost.scale * raw[slot, 0]))
        else:
            for slot, method in enumerate(config.methods):
                grads[method].append(
                    _probe_gradient(
                        config,
                        cost,
                        draws[method],
                        simulator,
                        sample_rng=(
                            sample_rngs[slot] if sample_rngs is not None else None
                        ),
                    )
                )
    if megabatched:
        _execute_shape_buckets(config, items, keys, grads, simulator)
    return {
        "num_qubits": shard.num_qubits,
        "start": shard.start,
        "gradients": grads,
    }


def _execute_shape_buckets(
    config: VarianceConfig,
    items: Sequence[_StructureRows],
    keys: Sequence,
    grads: Dict[str, List[float]],
    simulator: StatevectorSimulator,
) -> None:
    """Run a shard's structures bucket-by-bucket through the mega path.

    Every bucket folds its (structures x methods x shift terms) rows into
    one :func:`~repro.backend.gradients.megabatch_parameter_shift`
    execution; the per-structure gradient blocks are then written back in
    original structure order, so the output record is laid out exactly as
    the per-structure paths produce it.
    """
    per_structure: List[Optional[np.ndarray]] = [None] * len(items)
    for bucket in plan_shape_buckets(keys):
        first = items[bucket[0]]
        index = _probe_index(config, first.circuit.num_parameters)
        seed = None
        if config.shots is not None:
            # Per-base-row streams: structures in bucket order, methods
            # within each structure — the same generator each method's
            # rows consume in the per-structure modes.
            seed = [rng for i in bucket for rng in items[i].sample_rngs]
        outs = megabatch_parameter_shift(
            [items[i].circuit for i in bucket],
            first.observable,
            [items[i].params for i in bucket],
            simulator=simulator,
            param_indices=[index],
            shots=config.shots,
            seed=seed,
        )
        for i, out in zip(bucket, outs):
            per_structure[i] = out
    for item, raw in zip(items, per_structure):
        for slot, method in enumerate(config.methods):
            grads[method].append(float(item.scale * raw[slot, 0]))


def merge_variance_outputs(
    config: VarianceConfig, outputs: Sequence[dict]
) -> VarianceResult:
    """Reassemble shard outputs into a :class:`VarianceResult`.

    Shards may arrive in any order (process pools complete out of order;
    resumed runs mix checkpointed and fresh shards); rows are re-sorted by
    their ``start`` offset and validated against the configured grid.
    """
    by_count: Dict[int, List[dict]] = {int(q): [] for q in config.qubit_counts}
    for output in outputs:
        num_qubits = int(output["num_qubits"])
        if num_qubits not in by_count:
            raise ValueError(f"unexpected shard for {num_qubits} qubits")
        by_count[num_qubits].append(output)
    result = VarianceResult(
        qubit_counts=[int(q) for q in config.qubit_counts],
        methods=list(config.methods),
    )
    for num_qubits, rows in by_count.items():
        rows.sort(key=lambda row: int(row["start"]))
        for method in config.methods:
            gradients = [
                float(g) for row in rows for g in row["gradients"][method]
            ]
            if len(gradients) != config.num_circuits:
                raise ValueError(
                    f"incomplete grid row for q={num_qubits}, {method!r}: "
                    f"{len(gradients)} of {config.num_circuits} circuits"
                )
            result.add(
                GradientSamples(
                    num_qubits=num_qubits,
                    method=method,
                    gradients=np.asarray(gradients),
                )
            )
    return result


def format_variance_progress(
    config: VarianceConfig, num_qubits: int, rows: Sequence[dict]
) -> str:
    """The one-line-per-qubit-count progress message used by verbose runs.

    ``rows`` are the shard outputs covering one qubit count (any order).
    """
    ordered = sorted(rows, key=lambda row: int(row["start"]))
    variances = ", ".join(
        "{}={:.3e}".format(
            method,
            np.var(
                np.asarray(
                    [g for row in ordered for g in row["gradients"][method]]
                )
            ),
        )
        for method in config.methods
    )
    return f"[variance] q={num_qubits}: {variances}"


class VarianceAnalysis:
    """Runs the variance study and returns a :class:`VarianceResult`.

    This is the in-process entry point; it plans one shard per qubit count
    and executes them serially.  For sharded / multi-process execution use
    :func:`repro.run` with an :class:`~repro.core.spec.ExperimentSpec`,
    which routes the same shard functions through a pluggable executor.
    """

    def __init__(
        self,
        config: Optional[VarianceConfig] = None,
        simulator: Optional[StatevectorSimulator] = None,
    ):
        self.config = config or VarianceConfig()
        self.simulator = simulator or _build_simulator(self.config)

    def run(self, seed: SeedLike = None, verbose: bool = False) -> VarianceResult:
        """Execute the full (qubit count x method x circuit) grid.

        Parameters
        ----------
        seed:
            Master seed; every circuit instance derives independent child
            streams for its structure and for each method's angles.
        verbose:
            Print one progress line per qubit count.
        """
        config = self.config
        shards = plan_variance_shards(config, seed)
        outputs = []
        for shard in shards:
            output = run_variance_shard(config, shard, simulator=self.simulator)
            outputs.append(output)
            if verbose:
                # One shard per qubit count here, so the row is complete.
                print(
                    format_variance_progress(config, shard.num_qubits, [output])
                )
        return merge_variance_outputs(config, outputs)
