"""Cost functions for PQC optimization.

The paper's training objective (its Eq. 4) is the *global* identity cost

    C = <psi(theta)| (I - |0...0><0...0|) |psi(theta)> = 1 - p(|0...0>)

measured on every qubit.  The *local* variant (Cerezo et al., 2021;
discussed in the paper's Sections II-d) replaces the global projector with
the average of single-qubit projectors:

    C_local = 1 - (1/n) * sum_q p(|0>_q) = 1/2 - (1/(2n)) <sum_q Z_q>

Both are thin wrappers over :class:`ObservableCost`, an affine function of
an expectation value ``C = offset + scale * <O>`` that knows how to
differentiate itself through any of the backend gradient engines.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.gradients import (
    adjoint_value_and_gradient,
    batch_adjoint_value_and_gradient,
    batch_parameter_shift,
    batch_parameter_shift_value_and_gradient,
    get_gradient_fn,
    parameter_shift,
)
from repro.backend.observables import (
    Observable,
    StateProjector,
    total_z,
    zero_projector,
)
from repro.backend.simulator import StatevectorSimulator
from repro.backend.statevector import Statevector

__all__ = [
    "ObservableCost",
    "global_identity_cost",
    "local_identity_cost",
    "state_learning_cost",
    "make_cost",
]


class ObservableCost:
    """``C(params) = offset + scale * <O>_{U(params)|0...0>}``.

    Parameters
    ----------
    circuit:
        Trainable circuit preparing ``|psi(params)>``.
    observable:
        The measured operator ``O``.
    offset, scale:
        Affine transform mapping the expectation to the cost.
    gradient_engine:
        Default differentiation method (``"adjoint"``, ``"batch_adjoint"``,
        ``"parameter_shift"``, ``"batch_parameter_shift"`` or
        ``"finite_difference"``).
    simulator:
        Shared simulator instance (a fresh one is created if omitted).
    """

    def __init__(
        self,
        circuit: QuantumCircuit,
        observable: Observable,
        offset: float = 0.0,
        scale: float = 1.0,
        gradient_engine: str = "adjoint",
        simulator: Optional[StatevectorSimulator] = None,
    ):
        if observable.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"observable acts on {observable.num_qubits} qubits, "
                f"circuit has {circuit.num_qubits}"
            )
        self.circuit = circuit
        self.observable = observable
        self.offset = float(offset)
        self.scale = float(scale)
        self.gradient_fn = get_gradient_fn(gradient_engine)
        self.gradient_engine = gradient_engine
        self.simulator = simulator or StatevectorSimulator()

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count of the underlying circuit."""
        return self.circuit.num_parameters

    def value(
        self,
        params: Sequence[float],
        shots: Optional[int] = None,
        seed=None,
    ) -> float:
        """Evaluate the cost (exact, or shot-estimated with ``shots=``)."""
        expectation = self.simulator.expectation(
            self.circuit, self.observable, params, shots=shots, seed=seed
        )
        return self.offset + self.scale * expectation

    def gradient(
        self,
        params: Sequence[float],
        param_indices: Optional[Sequence[int]] = None,
        shots: Optional[int] = None,
        seed=None,
    ) -> np.ndarray:
        """Gradient of the cost (chain rule through the affine transform).

        With ``shots=`` the gradient is sample-estimated through the
        hardware parameter-shift rule regardless of the configured engine
        (the adjoint sweep has no measurement analogue); ``seed`` seeds
        the measurement stream.
        """
        if shots is not None:
            raw = parameter_shift(
                self.circuit,
                self.observable,
                params,
                simulator=self.simulator,
                param_indices=param_indices,
                shots=shots,
                seed=seed,
            )
            return self.scale * raw
        raw = self.gradient_fn(
            self.circuit,
            self.observable,
            params,
            simulator=self.simulator,
            param_indices=param_indices,
        )
        return self.scale * raw

    def value_and_gradient(
        self,
        params: Sequence[float],
        shots: Optional[int] = None,
        seed=None,
    ) -> Tuple[float, np.ndarray]:
        """Loss and full gradient, sharing work where the engine allows.

        With an adjoint-family engine the expectation is read off the
        adjoint forward pass, so the circuit executes once instead of
        twice; both numbers carry exactly the bits the separate
        :meth:`value` / :meth:`gradient` calls would produce.  Other
        engines fall back to those two calls.

        With ``shots=`` both numbers are sample-estimated through the
        shift rule: one generator (from ``seed``) is consumed value-first
        then shift terms, so a persistent per-trajectory generator yields
        a reproducible measurement stream across training iterations.
        """
        if shots is not None:
            from repro.utils.rng import ensure_rng

            rng = ensure_rng(seed)
            value = self.value(params, shots=shots, seed=rng)
            return value, self.gradient(params, shots=shots, seed=rng)
        if self.gradient_engine in ("adjoint", "batch_adjoint"):
            fused = (
                adjoint_value_and_gradient
                if self.gradient_engine == "adjoint"
                else batch_adjoint_value_and_gradient
            )
            expectation, raw = fused(
                self.circuit, self.observable, params, simulator=self.simulator
            )
            return self.offset + self.scale * expectation, self.scale * raw
        return self.value(params), self.gradient(params)

    def value_and_gradient_batch(
        self,
        params_batch: Sequence[Sequence[float]],
        shots: Optional[int] = None,
        seed=None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Losses and full gradients for a ``(B, P)`` stack of trajectories.

        Row ``b`` is bit-identical to ``value_and_gradient(params_batch[b])``
        — the property lock-step training relies on.  Adjoint-family
        engines use one batched adjoint sweep (loss read off the shared
        forward pass); shift-rule engines use one batched-shift execution
        plus one batched forward pass for the losses; anything else loops
        rows through the sequential pair.

        With ``shots=`` every row is sample-estimated from one folded
        batched execution (:func:`batch_parameter_shift_value_and_gradient`):
        ``seed`` is either a sequence of ``B`` per-row seeds/generators
        (e.g. persistent per-trajectory streams in lock-step shot-based
        training) or a single seed spawning ``B`` children; row ``b`` is
        then bit-identical to
        ``value_and_gradient(params_batch[b], shots=shots,
        seed=<row b's seed>)``.

        Returns
        -------
        (numpy.ndarray, numpy.ndarray)
            Losses of shape ``(B,)`` and gradients of shape ``(B, P)``.
        """
        batch = np.asarray(params_batch, dtype=float)
        if batch.ndim != 2:
            raise ValueError(
                f"params_batch must be 2-D (batch, num_parameters), "
                f"got shape {batch.shape}"
            )
        if shots is not None:
            expectations, raw = batch_parameter_shift_value_and_gradient(
                self.circuit,
                self.observable,
                batch,
                simulator=self.simulator,
                shots=shots,
                seed=seed,
            )
        elif self.gradient_engine in ("adjoint", "batch_adjoint"):
            expectations, raw = batch_adjoint_value_and_gradient(
                self.circuit, self.observable, batch, simulator=self.simulator
            )
        elif self.gradient_engine in ("parameter_shift", "batch_parameter_shift"):
            raw = batch_parameter_shift(
                self.circuit, self.observable, batch, simulator=self.simulator
            )
            expectations = self.simulator.expectation_batch(
                self.circuit, self.observable, batch
            )
        else:
            pairs = [self.value_and_gradient(row) for row in batch]
            return (
                np.array([value for value, _ in pairs], dtype=float),
                np.stack([grad for _, grad in pairs]),
            )
        return self.offset + self.scale * expectations, self.scale * raw

    def __call__(self, params: Sequence[float]) -> float:
        return self.value(params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ObservableCost({self.observable!r}, offset={self.offset}, "
            f"scale={self.scale}, engine={self.gradient_engine!r})"
        )


def global_identity_cost(
    circuit: QuantumCircuit,
    gradient_engine: str = "adjoint",
    simulator: Optional[StatevectorSimulator] = None,
) -> ObservableCost:
    """The paper's Eq. 4: ``C = 1 - p(|0...0>)``, measured on all qubits."""
    return ObservableCost(
        circuit,
        zero_projector(circuit.num_qubits),
        offset=1.0,
        scale=-1.0,
        gradient_engine=gradient_engine,
        simulator=simulator,
    )


def local_identity_cost(
    circuit: QuantumCircuit,
    gradient_engine: str = "adjoint",
    simulator: Optional[StatevectorSimulator] = None,
) -> ObservableCost:
    """Local cost ``1 - (1/n) sum_q p(|0>_q) = 1/2 - <sum_q Z_q>/(2n)``."""
    n = circuit.num_qubits
    return ObservableCost(
        circuit,
        total_z(n),
        offset=0.5,
        scale=-0.5 / n,
        gradient_engine=gradient_engine,
        simulator=simulator,
    )


def state_learning_cost(
    circuit: QuantumCircuit,
    target: Statevector,
    gradient_engine: str = "adjoint",
    simulator: Optional[StatevectorSimulator] = None,
) -> ObservableCost:
    """Infidelity cost ``C = 1 - |<phi|psi(theta)>|^2`` for a target state.

    The paper's identity task is the special case ``phi = |0...0>``; this
    generalization supports its "other learning problems" outlook with the
    same machinery (exact gradients through any engine).
    """
    if target.num_qubits != circuit.num_qubits:
        raise ValueError(
            f"target has {target.num_qubits} qubits, circuit has "
            f"{circuit.num_qubits}"
        )
    return ObservableCost(
        circuit,
        StateProjector(target),
        offset=1.0,
        scale=-1.0,
        gradient_engine=gradient_engine,
        simulator=simulator,
    )


_COST_BUILDERS = {
    "global": global_identity_cost,
    "local": local_identity_cost,
}


def make_cost(
    kind: str,
    circuit: QuantumCircuit,
    gradient_engine: str = "adjoint",
    simulator: Optional[StatevectorSimulator] = None,
) -> ObservableCost:
    """Build a named identity-learning cost: ``"global"`` or ``"local"``."""
    try:
        builder = _COST_BUILDERS[kind.lower()]
    except KeyError:
        raise ValueError(
            f"unknown cost kind {kind!r}; choose from {sorted(_COST_BUILDERS)}"
        ) from None
    return builder(circuit, gradient_engine=gradient_engine, simulator=simulator)
