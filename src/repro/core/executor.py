"""Pluggable execution backends for experiment work units.

An :class:`Executor` schedules a list of :class:`WorkUnit` items — picklable
``(id, function, args)`` triples produced by the spec layer — and returns
their outputs in unit order.  Three registered strategies cover the
library's workloads:

``serial``
    In-process loop using the sequential per-structure statevector path
    (``VarianceConfig.batched=False``) — the reference implementation.
``batched``
    In-process loop using the batched statevector kernels
    (``VarianceConfig.batched=True``) — the default since PR 1.  Under
    the default ``VarianceConfig.fold="shape"`` each variance work unit
    is a *shape-bucket slice*: all of its structures fold into
    mega-batched executions with batch sizes in the hundreds (see
    :mod:`repro.core.variance`).
``lockstep``
    Like ``batched``, and additionally advertises lock-step training
    (``training_lockstep``): the spec layer folds all training
    trajectories into one batched-adjoint work unit instead of one unit
    per trajectory, with bit-identical histories.
``device``
    Like ``lockstep``, tuned for accelerator array backends: in-process,
    batched kernels, lock-step training — the widest resident batches,
    which is exactly the shape device namespaces want.  The namespace
    itself comes from the config's ``backend`` field (threaded through
    ``ExperimentSpec.backend`` / CLI ``--backend``); this executor is the
    default routing for non-numpy backends.
``process_pool``
    Shards units across OS processes via :mod:`concurrent.futures`.  Work
    units carry pre-reserved RNG children (see
    :func:`repro.utils.rng.spawn_seeds`), so a seeded run is bit-identical
    to serial regardless of worker count or completion order.  Variance
    units are shape-bucket slices here too: each worker mega-folds its
    own slice of the bucket, and slicing is invisible to results.
``async``
    Like ``process_pool``, but scheduled on an :mod:`asyncio` loop and
    built for *incremental* consumption: completions stream out the
    moment each unit's future resolves (``map_units``'s ``on_result``,
    the :meth:`AsyncExecutor.stream_units` generator, or the native
    ``async`` :meth:`AsyncExecutor.amap_units`) instead of only becoming
    visible when the whole grid finishes.  The backbone of the
    ``repro serve`` job queue's per-shard progress reporting.

All executors support checkpoint/resume: given a ``checkpoint_dir``, each
completed unit's output is persisted through :mod:`repro.io` as a
:class:`ShardCheckpoint`, and a restarted run re-executes only the units
without a matching (fingerprinted) checkpoint.

Register custom strategies with :func:`register_executor`; the registry
backs ``repro info`` and the CLI's ``--workers`` routing.
"""

from __future__ import annotations

import asyncio
import os
import warnings
from abc import ABC, abstractmethod
from concurrent import futures
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

__all__ = [
    "WorkUnit",
    "ShardCheckpoint",
    "Executor",
    "SerialExecutor",
    "BatchedExecutor",
    "LockstepExecutor",
    "DeviceExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "EXECUTORS",
    "register_executor",
    "get_executor",
    "available_executors",
]


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of work: a picklable function plus arguments.

    ``fn(*args)`` must return a JSON-encodable value (plain dicts, lists
    and scalars) so outputs can round-trip through shard checkpoints.
    """

    unit_id: str
    fn: Callable[..., Any]
    args: Tuple = ()


@dataclass
class ShardCheckpoint:
    """Persisted output of one completed work unit.

    ``fingerprint`` ties the checkpoint to the exact (kind, config, seed,
    plan) it came from; a resumed run ignores checkpoints whose
    fingerprint does not match, so stale files from a different grid can
    never leak into a result.
    """

    unit_id: str
    fingerprint: str
    data: Any

    def to_dict(self) -> dict:
        return {
            "unit_id": self.unit_id,
            "fingerprint": self.fingerprint,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardCheckpoint":
        return cls(
            unit_id=str(payload["unit_id"]),
            fingerprint=str(payload["fingerprint"]),
            data=payload["data"],
        )


#: Registered executor classes keyed by their ``name``.
EXECUTORS: Dict[str, Type["Executor"]] = {}


def register_executor(cls: Type["Executor"]) -> Type["Executor"]:
    """Class decorator adding an executor to the registry by its ``name``."""
    EXECUTORS[cls.name] = cls
    return cls


def get_executor(
    name: Union[str, "Executor"],
    workers: int = 1,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> "Executor":
    """Instantiate a registered executor by name (instances pass through)."""
    if isinstance(name, Executor):
        return name
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; choose from {available_executors()}"
        ) from None
    return cls(workers=workers, checkpoint_dir=checkpoint_dir)


def available_executors() -> List[str]:
    """Sorted names of the registered execution strategies."""
    return sorted(EXECUTORS)


class Executor(ABC):
    """Schedules work units; subclasses choose where/how they execute."""

    name: ClassVar[str]
    #: Forced value for ``VarianceConfig.batched`` on variance shards
    #: (``None`` = honour the config; the spec layer applies this).
    variance_batched: ClassVar[Optional[bool]] = None
    #: True when training trajectories should be folded into one lock-step
    #: batched unit instead of one unit per trajectory (the spec layer
    #: applies this; results are bit-identical either way).
    training_lockstep: ClassVar[bool] = False

    def __init__(
        self,
        workers: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ):
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        """Advised shard granularity (``None`` = one shard per qubit count)."""
        return None

    def map_units(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str = "",
        verbose: bool = False,
        on_result: Optional[Callable[[WorkUnit, Any], None]] = None,
    ) -> List[Any]:
        """Execute ``units`` and return their outputs in unit order.

        With a ``checkpoint_dir``, outputs of units already checkpointed
        under the same ``fingerprint`` are loaded instead of recomputed,
        and every fresh completion is checkpointed before the next unit's
        result is awaited — an interrupted run loses at most the units in
        flight.

        ``on_result`` is invoked once per unit output — checkpoint-loaded
        ones first (in unit order), then fresh completions as they land —
        so callers can stream progress during long grids.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        completed = self._load_checkpoints(set(ids), fingerprint)
        if verbose and completed:
            print(
                f"[executor:{self.name}] resuming: "
                f"{len(completed)}/{len(units)} units checkpointed"
            )
        if on_result is not None:
            for unit in units:
                if unit.unit_id in completed:
                    on_result(unit, completed[unit.unit_id])
        pending = [unit for unit in units if unit.unit_id not in completed]
        for unit, output in self._execute(pending):
            completed[unit.unit_id] = output
            self._write_checkpoint(unit, output, fingerprint)
            if on_result is not None:
                on_result(unit, output)
        return [completed[unit.unit_id] for unit in units]

    @abstractmethod
    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        """Yield ``(unit, output)`` pairs as units complete (any order)."""

    # -- checkpoint layer -------------------------------------------------

    def _checkpoint_path(self, unit_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in unit_id)
        return self.checkpoint_dir / f"shard-{safe}.json"

    def _load_checkpoints(
        self, unit_ids: set, fingerprint: str
    ) -> Dict[str, Any]:
        if self.checkpoint_dir is None or not self.checkpoint_dir.is_dir():
            return {}
        from repro.io import load_result

        completed: Dict[str, Any] = {}
        for path in sorted(self.checkpoint_dir.glob("shard-*.json")):
            try:
                checkpoint = load_result(path)
            except (ValueError, OSError, KeyError, TypeError) as error:
                # Truncated/corrupt/malformed file from an interrupted or
                # interleaved write (KeyError/TypeError cover envelopes
                # whose data payload lost fields): warn and recompute that
                # unit instead of crashing the whole run.
                warnings.warn(
                    f"skipping unreadable checkpoint {path.name} "
                    f"({type(error).__name__}: {error}); its unit will be "
                    f"recomputed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(checkpoint, ShardCheckpoint):
                continue
            if checkpoint.fingerprint != fingerprint:
                continue
            if checkpoint.unit_id in unit_ids:
                completed[checkpoint.unit_id] = checkpoint.data
        return completed

    def _write_checkpoint(
        self, unit: WorkUnit, output: Any, fingerprint: str
    ) -> None:
        if self.checkpoint_dir is None:
            return
        from repro.io import save_result

        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Atomic write (unique temp + rename): a kill mid-write leaves a
        # .tmp file, never a corrupt checkpoint.
        save_result(
            ShardCheckpoint(
                unit_id=unit.unit_id, fingerprint=fingerprint, data=output
            ),
            self._checkpoint_path(unit.unit_id),
            atomic=True,
        )


@register_executor
class SerialExecutor(Executor):
    """In-process loop over the sequential per-structure reference path."""

    name = "serial"
    variance_batched: ClassVar[Optional[bool]] = False

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        for unit in units:
            yield unit, unit.fn(*unit.args)


@register_executor
class BatchedExecutor(SerialExecutor):
    """In-process loop over the batched statevector kernels (default)."""

    name = "batched"
    variance_batched: ClassVar[Optional[bool]] = True


@register_executor
class LockstepExecutor(BatchedExecutor):
    """Batched executor that also trains all trajectories in lock step.

    For ``training`` specs the spec layer hands this executor a single
    work unit advancing every (method, restart) trajectory simultaneously
    through the batched adjoint engine — ``B x iterations`` sequential
    sweeps become ``iterations`` batched ones, with bit-identical
    histories.  Variance specs behave exactly like ``batched``.
    """

    name = "lockstep"
    training_lockstep: ClassVar[bool] = True


@register_executor
class DeviceExecutor(LockstepExecutor):
    """Batched, lock-step, in-process executor for device array backends.

    Scheduling-wise identical to ``lockstep``: every variance shard runs
    mega-batched and all training trajectories advance in one lock-step
    unit — on an accelerator namespace that keeps the resident batches
    (and therefore the kernels launched per step) as wide as possible.
    The array namespace itself is *configuration*, not scheduling: it
    comes from the config's ``backend`` field, which
    :class:`repro.core.spec.ExperimentSpec` threads into the simulators.
    ``ExperimentSpec.resolved_executor`` routes non-numpy backends here
    by default; results remain within device tolerance of (numpy:
    bit-identical to) every other executor.
    """

    name = "device"


@register_executor
class ProcessPoolExecutor(Executor):
    """Shards work units across OS processes.

    The variance grid is embarrassingly parallel over (qubit count,
    structure); units arrive with their RNG children pre-reserved, so any
    placement/completion order reproduces the serial streams exactly.
    Honours ``VarianceConfig.batched`` (default on) inside each worker.
    """

    name = "process_pool"
    variance_batched: ClassVar[Optional[bool]] = None

    def __init__(
        self,
        workers: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ):
        super().__init__(
            workers=int(workers) or os.cpu_count() or 1,
            checkpoint_dir=checkpoint_dir,
        )

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        # ~2 shards per worker within each qubit count: fine enough that
        # the exponentially-expensive widest row spreads across workers,
        # coarse enough to amortize task dispatch.
        return max(1, -(-num_circuits // (2 * self.workers)))

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        if not units:
            return
        if self.workers == 1:
            # No parallelism to win; skip the fork + pickle overhead.
            for unit in units:
                yield unit, unit.fn(*unit.args)
            return
        with futures.ProcessPoolExecutor(max_workers=self.workers) as pool:
            submitted = {
                pool.submit(unit.fn, *unit.args): unit for unit in units
            }
            for future in futures.as_completed(submitted):
                yield submitted[future], future.result()


@register_executor
class AsyncExecutor(Executor):
    """Asyncio-scheduled process-pool executor that streams completions.

    The first executor whose *public contract* is incremental progress:
    work units run on a :class:`concurrent.futures.ProcessPoolExecutor`
    driven by an :mod:`asyncio` loop, and every completion is surfaced
    the moment its future resolves —

    * :meth:`map_units` (inherited) invokes ``on_result`` per completion
      in completion order, not at the end of the grid;
    * :meth:`stream_units` is a synchronous generator over
      ``(unit, output)`` pairs, checkpoint-aware;
    * :meth:`amap_units` is the native ``async`` API for callers that
      already run an event loop (the ``repro serve`` job queue).

    Outputs and checkpoints are bit-identical to every other executor:
    units carry pre-reserved RNG children, so completion order is
    presentation, not semantics.  Like ``process_pool``, unit functions
    and arguments must be picklable; ``workers=0`` means one worker per
    CPU core, and single-worker instances run units in-process (no fork
    or pickle overhead) while still streaming each completion.
    """

    name = "async"
    variance_batched: ClassVar[Optional[bool]] = None

    def __init__(
        self,
        workers: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
    ):
        super().__init__(
            workers=int(workers) or os.cpu_count() or 1,
            checkpoint_dir=checkpoint_dir,
        )

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        # Same policy as process_pool: ~2 shards per worker per qubit
        # count — and fine-grained shards are what makes the streamed
        # progress counts meaningful.
        return max(1, -(-num_circuits // (2 * self.workers)))

    async def _astream(
        self, units: Sequence[WorkUnit], loop: asyncio.AbstractEventLoop
    ):
        """Async generator of ``(unit, output)`` in completion order."""
        if self.workers == 1 or len(units) <= 1:
            # Nothing to overlap: run in-process, still yielding each
            # completion as it happens.
            for unit in units:
                yield unit, unit.fn(*unit.args)
            return
        with futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(units))
        ) as pool:
            tasks = {
                loop.run_in_executor(pool, unit.fn, *unit.args): unit
                for unit in units
            }
            pending = set(tasks)
            while pending:
                done, pending = await asyncio.wait(
                    pending, return_when=asyncio.FIRST_COMPLETED
                )
                for task in done:
                    yield tasks[task], task.result()

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        if not units:
            return
        loop = asyncio.new_event_loop()
        agen = self._astream(list(units), loop)
        try:
            while True:
                try:
                    yield loop.run_until_complete(agen.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            # Close the async generator first so its pool context manager
            # exits (shutting workers down) before the loop goes away.
            try:
                loop.run_until_complete(agen.aclose())
            finally:
                loop.close()

    def stream_units(
        self, units: Sequence[WorkUnit], fingerprint: str = ""
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        """Yield ``(unit, output)`` pairs as they complete (blocking).

        Checkpoint-aware like :meth:`map_units`: already-checkpointed
        units are yielded first (in unit order), fresh completions are
        checkpointed before being yielded.  Completion order of fresh
        units is nondeterministic; outputs are not.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        completed = self._load_checkpoints(set(ids), fingerprint)
        for unit in units:
            if unit.unit_id in completed:
                yield unit, completed[unit.unit_id]
        pending = [unit for unit in units if unit.unit_id not in completed]
        for unit, output in self._execute(pending):
            self._write_checkpoint(unit, output, fingerprint)
            yield unit, output

    async def amap_units(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str = "",
        on_result: Optional[Callable[[WorkUnit, Any], None]] = None,
    ) -> List[Any]:
        """Native ``async`` :meth:`map_units`: same ordering contract.

        Runs on the caller's event loop; ``on_result`` fires per
        completion (checkpoint-loaded units first, then fresh ones as
        they land) without blocking the loop between completions.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        completed = self._load_checkpoints(set(ids), fingerprint)
        if on_result is not None:
            for unit in units:
                if unit.unit_id in completed:
                    on_result(unit, completed[unit.unit_id])
        pending = [unit for unit in units if unit.unit_id not in completed]
        loop = asyncio.get_running_loop()
        async for unit, output in self._astream(pending, loop):
            completed[unit.unit_id] = output
            self._write_checkpoint(unit, output, fingerprint)
            if on_result is not None:
                on_result(unit, output)
        return [completed[unit.unit_id] for unit in units]
