"""Pluggable execution backends for experiment work units.

An :class:`Executor` schedules a list of :class:`WorkUnit` items — picklable
``(id, function, args)`` triples produced by the spec layer — and returns
their outputs in unit order.  Three registered strategies cover the
library's workloads:

``serial``
    In-process loop using the sequential per-structure statevector path
    (``VarianceConfig.batched=False``) — the reference implementation.
``batched``
    In-process loop using the batched statevector kernels
    (``VarianceConfig.batched=True``) — the default since PR 1.  Under
    the default ``VarianceConfig.fold="shape"`` each variance work unit
    is a *shape-bucket slice*: all of its structures fold into
    mega-batched executions with batch sizes in the hundreds (see
    :mod:`repro.core.variance`).
``lockstep``
    Like ``batched``, and additionally advertises lock-step training
    (``training_lockstep``): the spec layer folds all training
    trajectories into one batched-adjoint work unit instead of one unit
    per trajectory, with bit-identical histories.
``device``
    Like ``lockstep``, tuned for accelerator array backends: in-process,
    batched kernels, lock-step training — the widest resident batches,
    which is exactly the shape device namespaces want.  The namespace
    itself comes from the config's ``backend`` field (threaded through
    ``ExperimentSpec.backend`` / CLI ``--backend``); this executor is the
    default routing for non-numpy backends.
``process_pool``
    Shards units across OS processes via :mod:`concurrent.futures`.  Work
    units carry pre-reserved RNG children (see
    :func:`repro.utils.rng.spawn_seeds`), so a seeded run is bit-identical
    to serial regardless of worker count or completion order.  Variance
    units are shape-bucket slices here too: each worker mega-folds its
    own slice of the bucket, and slicing is invisible to results.
``async``
    Like ``process_pool``, but scheduled on an :mod:`asyncio` loop and
    built for *incremental* consumption: completions stream out the
    moment each unit's future resolves (``map_units``'s ``on_result``,
    the :meth:`AsyncExecutor.stream_units` generator, or the native
    ``async`` :meth:`AsyncExecutor.amap_units`) instead of only becoming
    visible when the whole grid finishes.  The backbone of the
    ``repro serve`` job queue's per-shard progress reporting.
``remote``
    Distributes units to pull-based worker *processes on other hosts*
    through the lease/heartbeat/result protocol of
    :mod:`repro.service.dispatch`.  Inside ``repro serve`` it registers
    its units on the queue's shared
    :class:`~repro.service.dispatch.DispatchBoard` (workers connect to
    the serve URL); standalone ``repro.run`` boots an embedded
    coordinator plus local ``repro worker`` subprocesses.  Dead
    workers' leases expire and are re-dispatched through the same retry
    budget as every other failure; because units carry pre-reserved RNG
    children and results are keyed by content fingerprint, recovered
    multi-host runs stay byte-identical to single-host ones.

All executors support checkpoint/resume: given a ``checkpoint_dir``, each
completed unit's output is persisted through :mod:`repro.io` as a
:class:`ShardCheckpoint`, and a restarted run re-executes only the units
without a matching (fingerprinted) checkpoint.

**Reliability.**  Every executor runs its units under a
:class:`repro.reliability.RetryPolicy`: transiently-failing units (the
policy's classification; see :class:`repro.reliability.TransientError`)
re-run with deterministic exponential backoff, and — because units carry
pre-reserved RNG children — a retried unit is byte-identical to a
never-failed one.  The pool-backed executors additionally survive
``BrokenProcessPool``: the pool is rebuilt and only unfinished units are
re-dispatched, with the crash charged as one attempt against the units
deterministically suspected of killing the worker.  Two failure modes:
with ``raise_on_failure=True`` (the default, the behaviour the library
always had) a unit that exhausts its budget re-raises; with ``False``
the unit is *quarantined* — recorded in the run's
:class:`repro.reliability.FailureReport` (``executor.last_report``,
persisted as ``failure-report.json`` next to checkpoints) while the rest
of the run completes, with ``None`` placeholders in the returned list.
A :class:`repro.reliability.FaultPlan` (constructor argument or the
``REPRO_FAULT_PLAN`` env var) injects deterministic chaos for testing.

Register custom strategies with :func:`register_executor`; the registry
backs ``repro info`` and the CLI's ``--workers`` routing.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import subprocess
import sys
import threading
import time
import warnings
from abc import ABC, abstractmethod
from concurrent import futures
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.reliability.faults import (
    NETWORK_KINDS,
    FaultAction,
    FaultPlan,
    WorkerCrash,
    call_with_faults,
    corrupt_file,
)
from repro.reliability.policy import ExecutionAborted, RetryPolicy
from repro.reliability.report import FailureReport, UnitFailure

__all__ = [
    "WorkUnit",
    "ShardCheckpoint",
    "Executor",
    "SerialExecutor",
    "BatchedExecutor",
    "LockstepExecutor",
    "DeviceExecutor",
    "ProcessPoolExecutor",
    "AsyncExecutor",
    "RemoteExecutor",
    "EXECUTORS",
    "register_executor",
    "get_executor",
    "available_executors",
]

#: How often pool-draining loops wake up to poll ``should_abort``.
_ABORT_POLL_SECONDS = 0.25


def _swallow_task_exception(task) -> None:
    """Mark an abandoned future's exception as retrieved (see _astream)."""
    if not task.cancelled():
        task.exception()


@dataclass(frozen=True)
class WorkUnit:
    """One schedulable piece of work: a picklable function plus arguments.

    ``fn(*args)`` must return a JSON-encodable value (plain dicts, lists
    and scalars) so outputs can round-trip through shard checkpoints.
    """

    unit_id: str
    fn: Callable[..., Any]
    args: Tuple = ()


@dataclass
class ShardCheckpoint:
    """Persisted output of one completed work unit.

    ``fingerprint`` ties the checkpoint to the exact (kind, config, seed,
    plan) it came from; a resumed run ignores checkpoints whose
    fingerprint does not match, so stale files from a different grid can
    never leak into a result.
    """

    unit_id: str
    fingerprint: str
    data: Any

    def to_dict(self) -> dict:
        return {
            "unit_id": self.unit_id,
            "fingerprint": self.fingerprint,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardCheckpoint":
        return cls(
            unit_id=str(payload["unit_id"]),
            fingerprint=str(payload["fingerprint"]),
            data=payload["data"],
        )


@dataclass
class _RunContext:
    """Per-``map_units``-call reliability state (thread-local on the executor)."""

    policy: RetryPolicy
    faults: Dict[str, Tuple[FaultAction, ...]]
    fingerprint: str
    on_event: Optional[Callable[[str, dict], None]]
    raise_on_failure: bool
    should_abort: Optional[Callable[[], bool]]
    unit_keys: Dict[str, str]
    started: float = field(default_factory=time.monotonic)
    #: unit_id -> attempts observably consumed (success counts as one).
    attempts: Dict[str, int] = field(default_factory=dict)
    unit_started: Dict[str, float] = field(default_factory=dict)
    corruptions: Dict[str, int] = field(default_factory=dict)
    quarantined: List[UnitFailure] = field(default_factory=list)
    pool_rebuilds: int = 0


class _PoolBroken(Exception):
    """Internal escape from a pool drain: the process pool died.

    Carries the units that were in flight (``unit_id -> attempt``) so
    the rebuild logic can charge the crash deterministically.
    """

    def __init__(self, cause: BaseException, inflight: Mapping[str, int]):
        super().__init__(str(cause))
        self.cause = cause
        self.inflight = dict(inflight)


#: Registered executor classes keyed by their ``name``.
EXECUTORS: Dict[str, Type["Executor"]] = {}


def register_executor(cls: Type["Executor"]) -> Type["Executor"]:
    """Class decorator adding an executor to the registry by its ``name``."""
    EXECUTORS[cls.name] = cls
    return cls


def get_executor(
    name: Union[str, "Executor"],
    workers: int = 1,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    retry: Any = None,
    fault_plan: Any = None,
) -> "Executor":
    """Instantiate a registered executor by name (instances pass through).

    ``retry`` accepts anything :meth:`RetryPolicy.coerce` does (``None``
    = environment/default policy, int = ``max_attempts`` shorthand,
    dict, or a policy instance); ``fault_plan`` likewise goes through
    :meth:`FaultPlan.coerce` (``None`` = honour ``REPRO_FAULT_PLAN``).
    """
    if isinstance(name, Executor):
        return name
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown executor {name!r}; choose from {available_executors()}"
        ) from None
    return cls(
        workers=workers,
        checkpoint_dir=checkpoint_dir,
        retry=retry,
        fault_plan=fault_plan,
    )


def available_executors() -> List[str]:
    """Sorted names of the registered execution strategies."""
    return sorted(EXECUTORS)


class Executor(ABC):
    """Schedules work units; subclasses choose where/how they execute."""

    name: ClassVar[str]
    #: Forced value for ``VarianceConfig.batched`` on variance shards
    #: (``None`` = honour the config; the spec layer applies this).
    variance_batched: ClassVar[Optional[bool]] = None
    #: True when training trajectories should be folded into one lock-step
    #: batched unit instead of one unit per trajectory (the spec layer
    #: applies this; results are bit-identical either way).
    training_lockstep: ClassVar[bool] = False

    def __init__(
        self,
        workers: int = 1,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        retry: Any = None,
        fault_plan: Any = None,
    ):
        workers = int(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self.retry = RetryPolicy.coerce(retry)
        self.fault_plan = (
            FaultPlan.coerce(fault_plan)
            if fault_plan is not None
            else FaultPlan.from_env()
        )
        # Run state is per-thread: the service layer may drive one
        # executor instance from several job-worker threads at once.
        self._local = threading.local()

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        """Advised shard granularity (``None`` = one shard per qubit count)."""
        return None

    # -- run lifecycle ----------------------------------------------------

    @property
    def last_report(self) -> Optional[FailureReport]:
        """Reliability summary of this thread's most recent run."""
        return getattr(self._local, "report", None)

    @property
    def _run(self) -> _RunContext:
        ctx = getattr(self._local, "run", None)
        if ctx is None:
            # Direct _execute use outside map_units/stream_units: retry
            # still applies, fault selectors cannot resolve.
            self._begin_run((), "", None, True, None, None)
            ctx = self._local.run
        return ctx

    def _begin_run(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str,
        on_event: Optional[Callable[[str, dict], None]],
        raise_on_failure: bool,
        should_abort: Optional[Callable[[], bool]],
        unit_keys: Optional[Mapping[str, str]],
    ) -> None:
        plan = self.fault_plan
        faults = (
            plan.resolve([unit.unit_id for unit in units]) if plan else {}
        )
        self._local.run = _RunContext(
            policy=self.retry,
            faults=faults,
            fingerprint=fingerprint,
            on_event=on_event,
            raise_on_failure=raise_on_failure,
            should_abort=should_abort,
            unit_keys=dict(unit_keys or {}),
        )

    def _finish_run(self) -> FailureReport:
        ctx = self._run
        report = FailureReport(
            fingerprint=ctx.fingerprint or None,
            executor=self.name,
            quarantined=list(ctx.quarantined),
            retries={
                unit_id: count - 1
                for unit_id, count in sorted(ctx.attempts.items())
                if count > 1
            },
            pool_rebuilds=ctx.pool_rebuilds,
        )
        self._local.report = report
        self._local.run = None
        if report.quarantined and self.checkpoint_dir is not None:
            from repro.io import save_result

            try:
                self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
                save_result(
                    report,
                    self.checkpoint_dir / "failure-report.json",
                    atomic=True,
                )
            except OSError as error:
                warnings.warn(
                    f"could not persist failure report: {error}",
                    RuntimeWarning,
                    stacklevel=2,
                )
        return report

    # -- reliability helpers ----------------------------------------------

    def _emit(self, kind: str, payload: dict) -> None:
        ctx = self._run
        if ctx.on_event is not None:
            ctx.on_event(kind, payload)

    def _abort_check(self) -> None:
        ctx = self._run
        if ctx.should_abort is not None and ctx.should_abort():
            raise ExecutionAborted("run aborted by caller")

    def _unit_key(self, unit_id: str) -> str:
        """Stable backoff-jitter key: content fingerprint when known."""
        return self._run.unit_keys.get(unit_id, unit_id)

    def _fault_payload(self, unit_id: str) -> Optional[List[dict]]:
        actions = self._run.faults.get(unit_id)
        if not actions:
            return None
        return [action.to_dict() for action in actions]

    def _after_failure(self, unit: WorkUnit, error: BaseException, attempt: int) -> str:
        """Route a failed attempt: ``"retry"``, ``"quarantine"``, or raise."""
        ctx = self._run
        now = time.monotonic()
        unit_elapsed = now - ctx.unit_started.get(unit.unit_id, now)
        run_elapsed = now - ctx.started
        described = f"{type(error).__name__}: {error}"
        if ctx.policy.should_retry(error, attempt, unit_elapsed, run_elapsed):
            self._emit(
                "retry",
                {"unit_id": unit.unit_id, "attempt": attempt, "error": described},
            )
            return "retry"
        if ctx.raise_on_failure:
            raise error
        ctx.quarantined.append(
            UnitFailure.from_exception(
                unit.unit_id,
                error,
                attempts=attempt,
                fingerprint=ctx.unit_keys.get(unit.unit_id),
            )
        )
        self._emit(
            "quarantine",
            {"unit_id": unit.unit_id, "attempts": attempt, "error": described},
        )
        return "quarantine"

    def _attempt_unit(self, unit: WorkUnit) -> Tuple[bool, Any]:
        """Run one unit in-process under the retry policy.

        Returns ``(True, output)``, or ``(False, None)`` when the unit
        exhausted its budget and was quarantined (raise mode re-raises
        instead).  Injected ``kill`` faults degrade to
        :class:`WorkerCrash` here — in-process execution cannot survive
        a literal ``os._exit``.
        """
        ctx = self._run
        ctx.unit_started.setdefault(unit.unit_id, time.monotonic())
        while True:
            self._abort_check()
            attempt = ctx.attempts.get(unit.unit_id, 0) + 1
            try:
                payload = self._fault_payload(unit.unit_id)
                if payload is None:
                    output = unit.fn(*unit.args)
                else:
                    output = call_with_faults(
                        payload, attempt, False, unit.fn, unit.args
                    )
            except Exception as error:
                ctx.attempts[unit.unit_id] = attempt
                if self._after_failure(unit, error, attempt) != "retry":
                    return False, None
                delay = ctx.policy.delay(attempt, self._unit_key(unit.unit_id))
                if delay > 0:
                    time.sleep(delay)
                continue
            ctx.attempts[unit.unit_id] = attempt
            return True, output

    def _note_pool_breakage(
        self, pending: Dict[str, WorkUnit], broken: _PoolBroken
    ) -> None:
        """Charge a pool crash deterministically and decide who retries.

        The pool gives no way to tell which in-flight unit killed the
        worker, so the crash is charged to the units whose fault plan
        *scheduled* a kill at their current attempt; only for unplanned
        breakage (no suspects) is every in-flight unit charged.  Charged
        units either stay pending for the rebuilt pool or are
        quarantined/raised when their budget is gone; uncharged in-flight
        units re-run at the *same* attempt number, so deterministic
        faults re-fire identically and outputs stay byte-identical.
        """
        ctx = self._run
        if not broken.inflight:
            # Pool died before accepting any work: rebuilding would spin.
            raise broken.cause
        ctx.pool_rebuilds += 1
        suspects = {
            unit_id: attempt
            for unit_id, attempt in broken.inflight.items()
            if any(
                action.kind == "kill" and action.applies(attempt)
                for action in ctx.faults.get(unit_id, ())
            )
        }
        if not suspects:
            suspects = dict(broken.inflight)
        self._emit(
            "pool_rebuild",
            {"rebuilds": ctx.pool_rebuilds, "suspects": sorted(suspects)},
        )
        for unit_id, attempt in sorted(suspects.items()):
            unit = pending.get(unit_id)
            if unit is None:
                continue
            ctx.attempts[unit_id] = attempt
            crash = WorkerCrash(
                f"worker process died while {unit_id} was in flight "
                f"(attempt {attempt}); pool rebuilt"
            )
            crash.__cause__ = broken.cause
            if self._after_failure(unit, crash, attempt) != "retry":
                del pending[unit_id]

    @staticmethod
    def _inflight(running: Mapping[Any, Tuple[WorkUnit, int]]) -> Dict[str, int]:
        return {unit.unit_id: attempt for unit, attempt in running.values()}

    # -- execution --------------------------------------------------------

    def map_units(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str = "",
        verbose: bool = False,
        on_result: Optional[Callable[[WorkUnit, Any], None]] = None,
        *,
        on_event: Optional[Callable[[str, dict], None]] = None,
        raise_on_failure: bool = True,
        should_abort: Optional[Callable[[], bool]] = None,
        unit_keys: Optional[Mapping[str, str]] = None,
    ) -> List[Any]:
        """Execute ``units`` and return their outputs in unit order.

        With a ``checkpoint_dir``, outputs of units already checkpointed
        under the same ``fingerprint`` are loaded instead of recomputed,
        and every fresh completion is checkpointed before the next unit's
        result is awaited — an interrupted run loses at most the units in
        flight.

        ``on_result`` is invoked once per unit output — checkpoint-loaded
        ones first (in unit order), then fresh completions as they land —
        so callers can stream progress during long grids.

        Reliability keywords: ``on_event(kind, payload)`` observes
        ``"retry"`` / ``"quarantine"`` / ``"pool_rebuild"`` events;
        ``raise_on_failure=False`` switches budget-exhausted units from
        re-raising to quarantine (``None`` placeholder in the returned
        list, details in :attr:`last_report`); ``should_abort`` is polled
        between attempts and while draining pools — returning True stops
        the run with :class:`repro.reliability.ExecutionAborted`;
        ``unit_keys`` maps unit ids to content fingerprints used for
        backoff-jitter keys and quarantine records.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        self._begin_run(
            units, fingerprint, on_event, raise_on_failure, should_abort, unit_keys
        )
        try:
            completed = self._load_checkpoints(set(ids), fingerprint)
            if verbose and completed:
                print(
                    f"[executor:{self.name}] resuming: "
                    f"{len(completed)}/{len(units)} units checkpointed"
                )
            if on_result is not None:
                for unit in units:
                    if unit.unit_id in completed:
                        on_result(unit, completed[unit.unit_id])
            pending = [unit for unit in units if unit.unit_id not in completed]
            for unit, output in self._execute(pending):
                completed[unit.unit_id] = output
                self._write_checkpoint(unit, output, fingerprint)
                if on_result is not None:
                    on_result(unit, output)
            return [completed.get(unit.unit_id) for unit in units]
        finally:
            self._finish_run()

    @abstractmethod
    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        """Yield ``(unit, output)`` pairs as units complete (any order).

        Quarantined units (non-raise mode) are simply not yielded.
        """

    # -- checkpoint layer -------------------------------------------------

    def _checkpoint_path(self, unit_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in unit_id)
        return self.checkpoint_dir / f"shard-{safe}.json"

    def _load_checkpoints(
        self, unit_ids: set, fingerprint: str
    ) -> Dict[str, Any]:
        if self.checkpoint_dir is None or not self.checkpoint_dir.is_dir():
            return {}
        from repro.io import load_result

        completed: Dict[str, Any] = {}
        for path in sorted(self.checkpoint_dir.glob("shard-*.json")):
            try:
                checkpoint = load_result(path)
            except (ValueError, OSError, KeyError, TypeError) as error:
                # Truncated/corrupt/malformed file from an interrupted or
                # interleaved write (KeyError/TypeError cover envelopes
                # whose data payload lost fields): warn and recompute that
                # unit instead of crashing the whole run.
                warnings.warn(
                    f"skipping unreadable checkpoint {path.name} "
                    f"({type(error).__name__}: {error}); its unit will be "
                    f"recomputed",
                    RuntimeWarning,
                    stacklevel=2,
                )
                continue
            if not isinstance(checkpoint, ShardCheckpoint):
                continue
            if checkpoint.fingerprint != fingerprint:
                continue
            if checkpoint.unit_id in unit_ids:
                completed[checkpoint.unit_id] = checkpoint.data
        return completed

    def _write_checkpoint(
        self, unit: WorkUnit, output: Any, fingerprint: str
    ) -> None:
        if self.checkpoint_dir is None:
            return
        from repro.io import save_result

        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        # Atomic write (unique temp + rename): a kill mid-write leaves a
        # .tmp file, never a corrupt checkpoint.
        path = self._checkpoint_path(unit.unit_id)
        save_result(
            ShardCheckpoint(
                unit_id=unit.unit_id, fingerprint=fingerprint, data=output
            ),
            path,
            atomic=True,
        )
        self._maybe_corrupt(unit.unit_id, path, "corrupt_checkpoint")

    def _maybe_corrupt(self, unit_id: str, path: Path, kind: str) -> None:
        """Apply a scheduled parent-side file corruption (chaos testing).

        The first ``times`` writes per run are scribbled over; the run
        itself is unaffected (outputs are already in memory) — the
        corruption is seen by the *next* resume/read, which must warn
        and recompute rather than crash.
        """
        ctx = getattr(self._local, "run", None)
        if ctx is None or not ctx.faults:
            return
        for action in ctx.faults.get(unit_id, ()):
            if action.kind != kind:
                continue
            count = ctx.corruptions.get(f"{kind}:{unit_id}", 0) + 1
            ctx.corruptions[f"{kind}:{unit_id}"] = count
            if action.applies(count):
                corrupt_file(str(path))


@register_executor
class SerialExecutor(Executor):
    """In-process loop over the sequential per-structure reference path."""

    name = "serial"
    variance_batched: ClassVar[Optional[bool]] = False

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        for unit in units:
            ok, output = self._attempt_unit(unit)
            if ok:
                yield unit, output


@register_executor
class BatchedExecutor(SerialExecutor):
    """In-process loop over the batched statevector kernels (default)."""

    name = "batched"
    variance_batched: ClassVar[Optional[bool]] = True


@register_executor
class LockstepExecutor(BatchedExecutor):
    """Batched executor that also trains all trajectories in lock step.

    For ``training`` specs the spec layer hands this executor a single
    work unit advancing every (method, restart) trajectory simultaneously
    through the batched adjoint engine — ``B x iterations`` sequential
    sweeps become ``iterations`` batched ones, with bit-identical
    histories.  Variance specs behave exactly like ``batched``.
    """

    name = "lockstep"
    training_lockstep: ClassVar[bool] = True


@register_executor
class DeviceExecutor(LockstepExecutor):
    """Batched, lock-step, in-process executor for device array backends.

    Scheduling-wise identical to ``lockstep``: every variance shard runs
    mega-batched and all training trajectories advance in one lock-step
    unit — on an accelerator namespace that keeps the resident batches
    (and therefore the kernels launched per step) as wide as possible.
    The array namespace itself is *configuration*, not scheduling: it
    comes from the config's ``backend`` field, which
    :class:`repro.core.spec.ExperimentSpec` threads into the simulators.
    ``ExperimentSpec.resolved_executor`` routes non-numpy backends here
    by default; results remain within device tolerance of (numpy:
    bit-identical to) every other executor.
    """

    name = "device"


@register_executor
class ProcessPoolExecutor(Executor):
    """Shards work units across OS processes.

    The variance grid is embarrassingly parallel over (qubit count,
    structure); units arrive with their RNG children pre-reserved, so any
    placement/completion order reproduces the serial streams exactly.
    Honours ``VarianceConfig.batched`` (default on) inside each worker.

    Survives worker crashes: ``BrokenProcessPool`` triggers a pool
    rebuild that re-dispatches only the unfinished units (completed
    outputs were already yielded and checkpointed), with the crash
    charged against the retry budget of the responsible units (see
    :meth:`Executor._note_pool_breakage`).
    """

    name = "process_pool"
    variance_batched: ClassVar[Optional[bool]] = None

    def __init__(
        self,
        workers: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        retry: Any = None,
        fault_plan: Any = None,
    ):
        super().__init__(
            workers=int(workers) or os.cpu_count() or 1,
            checkpoint_dir=checkpoint_dir,
            retry=retry,
            fault_plan=fault_plan,
        )

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        # ~2 shards per worker within each qubit count: fine enough that
        # the exponentially-expensive widest row spreads across workers,
        # coarse enough to amortize task dispatch.
        return max(1, -(-num_circuits // (2 * self.workers)))

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        if not units:
            return
        if self.workers == 1:
            # No parallelism to win; skip the fork + pickle overhead.
            for unit in units:
                ok, output = self._attempt_unit(unit)
                if ok:
                    yield unit, output
            return
        pending: Dict[str, WorkUnit] = {unit.unit_id: unit for unit in units}
        while pending:
            try:
                for unit, output in self._drain_pool(pending):
                    yield unit, output
                return
            except _PoolBroken as broken:
                self._note_pool_breakage(pending, broken)

    def _drain_pool(
        self, pending: Dict[str, WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        """Run ``pending`` on one pool, retrying in place, until done.

        Removes each finished (or quarantined) unit from ``pending`` and
        yields successes; raises :class:`_PoolBroken` when the pool dies
        so the caller can charge the crash and rebuild.
        """
        ctx = self._run
        with futures.ProcessPoolExecutor(
            max_workers=min(self.workers, len(pending))
        ) as pool:
            running: Dict[futures.Future, Tuple[WorkUnit, int]] = {}

            def submit(unit: WorkUnit) -> None:
                attempt = ctx.attempts.get(unit.unit_id, 0) + 1
                ctx.unit_started.setdefault(unit.unit_id, time.monotonic())
                payload = self._fault_payload(unit.unit_id)
                try:
                    if payload is None:
                        future = pool.submit(unit.fn, *unit.args)
                    else:
                        future = pool.submit(
                            call_with_faults,
                            payload,
                            attempt,
                            True,
                            unit.fn,
                            unit.args,
                        )
                except BrokenProcessPool as error:
                    raise _PoolBroken(error, self._inflight(running)) from None
                running[future] = (unit, attempt)

            for unit in list(pending.values()):
                submit(unit)
            while running:
                done, _ = futures.wait(
                    set(running),
                    timeout=_ABORT_POLL_SECONDS,
                    return_when=futures.FIRST_COMPLETED,
                )
                if not done:
                    self._abort_check()
                    continue
                broken: Optional[BaseException] = None
                broken_units: Dict[str, int] = {}
                resubmit: List[Tuple[WorkUnit, int]] = []
                for future in done:
                    unit, attempt = running.pop(future)
                    error = future.exception()
                    if error is None:
                        ctx.attempts[unit.unit_id] = attempt
                        del pending[unit.unit_id]
                        yield unit, future.result()
                        continue
                    if isinstance(error, BrokenProcessPool):
                        # The victim stays in pending, uncharged: the
                        # breakage handler decides who pays.
                        broken = error
                        broken_units[unit.unit_id] = attempt
                        continue
                    ctx.attempts[unit.unit_id] = attempt
                    if self._after_failure(unit, error, attempt) == "retry":
                        resubmit.append((unit, attempt))
                    else:
                        del pending[unit.unit_id]
                if broken is not None:
                    # A break resolves every in-flight future at once:
                    # the broken-errored ones were in flight too.
                    raise _PoolBroken(
                        broken, {**self._inflight(running), **broken_units}
                    )
                for unit, attempt in resubmit:
                    delay = ctx.policy.delay(attempt, self._unit_key(unit.unit_id))
                    if delay > 0:
                        time.sleep(delay)
                    submit(unit)


@register_executor
class AsyncExecutor(Executor):
    """Asyncio-scheduled process-pool executor that streams completions.

    The first executor whose *public contract* is incremental progress:
    work units run on a :class:`concurrent.futures.ProcessPoolExecutor`
    driven by an :mod:`asyncio` loop, and every completion is surfaced
    the moment its future resolves —

    * :meth:`map_units` (inherited) invokes ``on_result`` per completion
      in completion order, not at the end of the grid;
    * :meth:`stream_units` is a synchronous generator over
      ``(unit, output)`` pairs, checkpoint-aware;
    * :meth:`amap_units` is the native ``async`` API for callers that
      already run an event loop (the ``repro serve`` job queue).

    Outputs and checkpoints are bit-identical to every other executor:
    units carry pre-reserved RNG children, so completion order is
    presentation, not semantics.  Like ``process_pool``, unit functions
    and arguments must be picklable, worker crashes rebuild the pool and
    re-dispatch unfinished units, and the retry policy applies per unit;
    ``workers=0`` means one worker per CPU core, and single-worker
    instances run units in-process (no fork or pickle overhead) while
    still streaming each completion.
    """

    name = "async"
    variance_batched: ClassVar[Optional[bool]] = None

    def __init__(
        self,
        workers: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        retry: Any = None,
        fault_plan: Any = None,
    ):
        super().__init__(
            workers=int(workers) or os.cpu_count() or 1,
            checkpoint_dir=checkpoint_dir,
            retry=retry,
            fault_plan=fault_plan,
        )

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        # Same policy as process_pool: ~2 shards per worker per qubit
        # count — and fine-grained shards are what makes the streamed
        # progress counts meaningful.
        return max(1, -(-num_circuits // (2 * self.workers)))

    async def _astream(
        self, units: Sequence[WorkUnit], loop: asyncio.AbstractEventLoop
    ):
        """Async generator of ``(unit, output)`` in completion order."""
        ctx = self._run
        if self.workers == 1 or len(units) <= 1:
            # Nothing to overlap: run in-process, still yielding each
            # completion as it happens.
            for unit in units:
                ok, output = self._attempt_unit(unit)
                if ok:
                    yield unit, output
            return
        pending: Dict[str, WorkUnit] = {unit.unit_id: unit for unit in units}
        while pending:
            pool = futures.ProcessPoolExecutor(
                max_workers=min(self.workers, len(pending))
            )
            running: Dict[Any, Tuple[WorkUnit, int]] = {}
            try:

                def submit(unit: WorkUnit) -> None:
                    attempt = ctx.attempts.get(unit.unit_id, 0) + 1
                    ctx.unit_started.setdefault(unit.unit_id, time.monotonic())
                    payload = self._fault_payload(unit.unit_id)
                    try:
                        if payload is None:
                            task = loop.run_in_executor(
                                pool, unit.fn, *unit.args
                            )
                        else:
                            task = loop.run_in_executor(
                                pool,
                                call_with_faults,
                                payload,
                                attempt,
                                True,
                                unit.fn,
                                unit.args,
                            )
                    except BrokenProcessPool as error:
                        raise _PoolBroken(
                            error, self._inflight(running)
                        ) from None
                    running[task] = (unit, attempt)

                for unit in list(pending.values()):
                    submit(unit)
                while running:
                    done, _ = await asyncio.wait(
                        set(running),
                        timeout=_ABORT_POLL_SECONDS,
                        return_when=asyncio.FIRST_COMPLETED,
                    )
                    if not done:
                        self._abort_check()
                        continue
                    broken: Optional[BaseException] = None
                    broken_units: Dict[str, int] = {}
                    resubmit: List[Tuple[WorkUnit, int]] = []
                    for task in done:
                        unit, attempt = running.pop(task)
                        error = task.exception()
                        if error is None:
                            ctx.attempts[unit.unit_id] = attempt
                            del pending[unit.unit_id]
                            yield unit, task.result()
                            continue
                        if isinstance(error, BrokenProcessPool):
                            broken = error
                            broken_units[unit.unit_id] = attempt
                            continue
                        ctx.attempts[unit.unit_id] = attempt
                        if self._after_failure(unit, error, attempt) == "retry":
                            resubmit.append((unit, attempt))
                        else:
                            del pending[unit.unit_id]
                    if broken is not None:
                        raise _PoolBroken(
                            broken, {**self._inflight(running), **broken_units}
                        )
                    for unit, attempt in resubmit:
                        delay = ctx.policy.delay(
                            attempt, self._unit_key(unit.unit_id)
                        )
                        if delay > 0:
                            await asyncio.sleep(delay)
                        submit(unit)
            except _PoolBroken as broken_escape:
                self._note_pool_breakage(pending, broken_escape)
            finally:
                # Tasks abandoned at pool breakage would otherwise log
                # "exception was never retrieved" at garbage collection.
                for task in running:
                    task.add_done_callback(_swallow_task_exception)
                pool.shutdown(wait=True, cancel_futures=True)

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        if not units:
            return
        loop = asyncio.new_event_loop()
        agen = self._astream(list(units), loop)
        try:
            while True:
                try:
                    yield loop.run_until_complete(agen.__anext__())
                except StopAsyncIteration:
                    break
        finally:
            # Close the async generator first so its pool context manager
            # exits (shutting workers down) before the loop goes away.
            try:
                loop.run_until_complete(agen.aclose())
            finally:
                loop.close()

    def stream_units(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str = "",
        *,
        on_event: Optional[Callable[[str, dict], None]] = None,
        raise_on_failure: bool = True,
        should_abort: Optional[Callable[[], bool]] = None,
        unit_keys: Optional[Mapping[str, str]] = None,
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        """Yield ``(unit, output)`` pairs as they complete (blocking).

        Checkpoint-aware like :meth:`map_units`: already-checkpointed
        units are yielded first (in unit order), fresh completions are
        checkpointed before being yielded.  Completion order of fresh
        units is nondeterministic; outputs are not.  Quarantined units
        (``raise_on_failure=False``) are simply not yielded; the
        reliability keywords match :meth:`map_units`.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        self._begin_run(
            units, fingerprint, on_event, raise_on_failure, should_abort, unit_keys
        )
        try:
            completed = self._load_checkpoints(set(ids), fingerprint)
            for unit in units:
                if unit.unit_id in completed:
                    yield unit, completed[unit.unit_id]
            pending = [unit for unit in units if unit.unit_id not in completed]
            for unit, output in self._execute(pending):
                self._write_checkpoint(unit, output, fingerprint)
                yield unit, output
        finally:
            self._finish_run()

    async def amap_units(
        self,
        units: Sequence[WorkUnit],
        fingerprint: str = "",
        on_result: Optional[Callable[[WorkUnit, Any], None]] = None,
        *,
        on_event: Optional[Callable[[str, dict], None]] = None,
        raise_on_failure: bool = True,
        should_abort: Optional[Callable[[], bool]] = None,
        unit_keys: Optional[Mapping[str, str]] = None,
    ) -> List[Any]:
        """Native ``async`` :meth:`map_units`: same ordering contract.

        Runs on the caller's event loop; ``on_result`` fires per
        completion (checkpoint-loaded units first, then fresh ones as
        they land) without blocking the loop between completions.  The
        reliability keywords match :meth:`map_units`.
        """
        ids = [unit.unit_id for unit in units]
        if len(set(ids)) != len(ids):
            raise ValueError("work unit ids must be unique")
        self._begin_run(
            units, fingerprint, on_event, raise_on_failure, should_abort, unit_keys
        )
        try:
            completed = self._load_checkpoints(set(ids), fingerprint)
            if on_result is not None:
                for unit in units:
                    if unit.unit_id in completed:
                        on_result(unit, completed[unit.unit_id])
            pending = [unit for unit in units if unit.unit_id not in completed]
            loop = asyncio.get_running_loop()
            async for unit, output in self._astream(pending, loop):
                completed[unit.unit_id] = output
                self._write_checkpoint(unit, output, fingerprint)
                if on_result is not None:
                    on_result(unit, output)
            return [completed.get(unit.unit_id) for unit in units]
        finally:
            self._finish_run()


#: Monotonic source of standalone remote-run job keys (os.getpid() is
#: appended, so keys stay unique across forked test processes too).
_REMOTE_RUN_COUNTER = itertools.count(1)

#: Fault kinds executed worker-side (shipped inside leases); the
#: network kinds stay coordinator-side, the corruption kinds stay in
#: the parent's checkpoint/store write paths.
_REMOTE_WORKER_FAULT_KINDS = ("transient", "kill", "slow")


@register_executor
class RemoteExecutor(Executor):
    """Distributes work units to pull-based workers over HTTP leases.

    The scheduling half of :mod:`repro.service.dispatch`: ``_execute``
    registers its units on a :class:`~repro.service.dispatch.
    DispatchBoard` and consumes completion/expiry/failure events, while
    ``repro worker`` processes — possibly on other hosts — lease units,
    execute them through the shared :class:`~repro.reliability.
    RetryPolicy` path, and push fingerprinted results back.

    Two modes, chosen by how the executor is *bound* (see
    :meth:`bind_remote`, called by :func:`repro.core.spec.run` and the
    ``repro serve`` job queue after planning):

    * **Service mode** — bound to the serving queue's shared board;
      workers connect to the ``repro serve`` URL from anywhere.
    * **Standalone mode** — no board supplied; ``_execute`` boots an
      embedded dispatch HTTP server plus ``self.workers`` local
      ``repro worker`` subprocesses, so ``ExperimentSpec(
      executor="remote")`` works under plain :func:`repro.run` too.

    Reliability semantics match every other executor: an expired lease
    (dead/partitioned worker) is charged as one attempt and routed
    through :meth:`Executor._after_failure` — re-dispatched while the
    budget allows (``"reclaim"`` events fire per reclaim), quarantined
    or raised after.  A worker that *reports* failure already drove the
    unit through the retry policy locally, so its verdict arrives as a
    non-retryable :class:`~repro.service.dispatch.RemoteExecutionError`
    and quarantines immediately rather than being granted a second
    budget.  Checkpoints, ``FailureReport``, and fault-plan corruption
    kinds run parent-side exactly as elsewhere; compute fault kinds
    ship inside leases and fire in the worker; network kinds fire on
    the board.

    Requires a seeded spec: content fingerprints are both the result
    cache key and the idempotency token, and transient
    (non-serializable) seeds have neither.
    """

    name = "remote"
    variance_batched: ClassVar[Optional[bool]] = True

    def __init__(
        self,
        workers: int = 0,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        retry: Any = None,
        fault_plan: Any = None,
    ):
        super().__init__(
            workers=int(workers) or os.cpu_count() or 1,
            checkpoint_dir=checkpoint_dir,
            retry=retry,
            fault_plan=fault_plan,
        )

    def circuits_per_shard(self, num_circuits: int) -> Optional[int]:
        # Same granularity policy as the pool executors: ~2 shards per
        # worker per qubit count, so slow hosts can be routed around
        # and reclaims re-dispatch small pieces.
        return max(1, -(-num_circuits // (2 * self.workers)))

    # -- binding -----------------------------------------------------------

    def bind_remote(self, spec: Any, plan: Any, board: Any = None) -> None:
        """Attach the spec/plan context ``_execute`` dispatches from.

        Called after planning by :func:`repro.core.spec.run` (no board:
        standalone mode) and by the serve queue (its shared board).
        Binding is thread-local, like all run state.
        """
        from repro.service.dispatch import worker_spec_payload

        if not plan.unit_fingerprints:
            raise ValueError(
                "the remote executor requires a seeded spec: unit content "
                "fingerprints are the dispatch idempotency tokens, and "
                "transient seeds have none"
            )
        self._local.remote_bound = {
            "spec_payload": worker_spec_payload(spec, plan, self),
            "fingerprints": dict(plan.unit_fingerprints),
            "board": board,
        }

    # -- worker subprocess management (standalone mode) --------------------

    def _spawn_worker(self, url: str, serial: int) -> subprocess.Popen:
        import repro

        env = dict(os.environ)
        # Faults are resolved and routed by the coordinator (compute
        # kinds travel inside leases); a worker loading the plan from
        # the environment would double-inject them.
        env.pop("REPRO_FAULT_PLAN", None)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                "--connect",
                url,
                "--worker-id",
                f"local-{os.getpid()}-{serial}",
                "--poll-interval",
                "0.05",
                "--max-idle",
                "120",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _respawn_dead_workers(
        self, procs: List[subprocess.Popen], url: str, serials: Iterator[int]
    ) -> List[subprocess.Popen]:
        """Replace exited worker subprocesses while work remains.

        An injected ``kill`` fault genuinely ``os._exit``\\ s the worker
        mid-lease; without respawning, enough kills would strand the
        run with zero workers and only lease expiry to save it.
        """
        alive = []
        for proc in procs:
            if proc.poll() is None:
                alive.append(proc)
            else:
                alive.append(self._spawn_worker(url, next(serials)))
        return alive

    # -- execution ---------------------------------------------------------

    def _execute(
        self, units: Sequence[WorkUnit]
    ) -> Iterator[Tuple[WorkUnit, Any]]:
        if not units:
            return
        from repro.service.dispatch import (
            DispatchBoard,
            RemoteExecutionError,
            SpecMismatch,
            make_dispatch_server,
        )

        bound = getattr(self._local, "remote_bound", None)
        if bound is None:
            raise RuntimeError(
                "the remote executor must be bound to a spec before "
                "executing (drive it through repro.run(...) or repro "
                "serve, not map_units directly)"
            )
        ctx = self._run
        fingerprints: Dict[str, str] = bound["fingerprints"]
        missing = [u.unit_id for u in units if not fingerprints.get(u.unit_id)]
        if missing:
            raise ValueError(
                f"units {missing[:3]} have no content fingerprint; remote "
                f"dispatch cannot address their results"
            )
        ship: Dict[str, List[dict]] = {}
        net: Dict[str, List[FaultAction]] = {}
        for unit_id, actions in ctx.faults.items():
            compute = [
                action.to_dict()
                for action in actions
                if action.kind in _REMOTE_WORKER_FAULT_KINDS
            ]
            network = [
                action for action in actions if action.kind in NETWORK_KINDS
            ]
            if compute:
                ship[unit_id] = compute
            if network:
                net[unit_id] = network

        board = bound["board"]
        owns_board = board is None
        server = None
        procs: List[subprocess.Popen] = []
        serials = itertools.count(0)
        url = ""
        if owns_board:
            board = DispatchBoard()
            server = make_dispatch_server(board)
            host, port = server.server_address[:2]
            url = f"http://{host}:{port}"
            threading.Thread(
                target=server.serve_forever,
                name="repro-dispatch-server",
                daemon=True,
            ).start()
        job_key = f"run-{next(_REMOTE_RUN_COUNTER):06d}-{os.getpid()}"
        pending: Dict[str, WorkUnit] = {unit.unit_id: unit for unit in units}
        try:
            board.register_job(
                job_key,
                bound["spec_payload"],
                [
                    (unit.unit_id, fingerprints[unit.unit_id], ship.get(unit.unit_id))
                    for unit in units
                ],
                net,
            )
            if owns_board:
                procs = [
                    self._spawn_worker(url, next(serials))
                    for _ in range(self.workers)
                ]
            while pending:
                self._abort_check()
                for event in board.wait_events(job_key, _ABORT_POLL_SECONDS):
                    unit_id = event["unit_id"]
                    unit = pending.get(unit_id)
                    if unit is None:
                        continue
                    ctx.unit_started.setdefault(unit_id, time.monotonic())
                    kind = event["kind"]
                    if kind == "done":
                        ctx.attempts[unit_id] = max(
                            int(event.get("attempts") or 1),
                            ctx.attempts.get(unit_id, 0),
                            1,
                        )
                        del pending[unit_id]
                        yield unit, event["output"]
                    elif kind == "expired":
                        attempt = int(event["attempt"])
                        ctx.attempts[unit_id] = max(
                            attempt, ctx.attempts.get(unit_id, 0)
                        )
                        self._emit(
                            "reclaim",
                            {
                                "unit_id": unit_id,
                                "worker_id": event.get("worker_id"),
                                "attempt": attempt,
                            },
                        )
                        crash = WorkerCrash(
                            f"lease on {unit_id} expired (worker "
                            f"{event.get('worker_id')!r} stopped "
                            f"heartbeating at attempt {attempt}); reclaimed"
                        )
                        if self._after_failure(unit, crash, attempt) == "retry":
                            board.requeue(job_key, unit_id)
                        else:
                            board.mark_failed(job_key, unit_id)
                            del pending[unit_id]
                    elif kind == "failed":
                        attempt = max(int(event.get("attempts") or 1), 1)
                        ctx.attempts[unit_id] = max(
                            attempt, ctx.attempts.get(unit_id, 0)
                        )
                        message = (
                            f"{event.get('error_type')}: "
                            f"{event.get('error_message')} (worker "
                            f"{event.get('worker_id')!r})"
                        )
                        if event.get("error_type") == "SpecMismatch":
                            error: Exception = SpecMismatch(message)
                        else:
                            error = RemoteExecutionError(
                                f"remote unit {unit_id} failed: {message}"
                            )
                        if self._after_failure(unit, error, attempt) == "retry":
                            board.requeue(job_key, unit_id)
                        else:
                            board.mark_failed(job_key, unit_id)
                            del pending[unit_id]
                if owns_board and pending:
                    procs = self._respawn_dead_workers(procs, url, serials)
        finally:
            board.unregister_job(job_key)
            if owns_board:
                for proc in procs:
                    proc.terminate()
                for proc in procs:
                    try:
                        proc.wait(timeout=5)
                    except subprocess.TimeoutExpired:
                        proc.kill()
                        proc.wait(timeout=5)
                if server is not None:
                    server.shutdown()
                    server.server_close()
