"""Generic configuration sweeps over the variance experiment.

The depth ablation (A6) is one instance of a recurring pattern: rerun the
variance study while one configuration field varies, then compare decay
rates/improvements across the values.  ``sweep_variance`` generalizes it
to any ``VarianceConfig`` field, and ``improvement_series`` extracts the
headline number per swept value.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Dict, Optional, Sequence

from repro.core.experiments import (
    VarianceExperimentOutcome,
    run_variance_experiment,
)
from repro.core.variance import VarianceConfig
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng

__all__ = ["sweep_variance", "improvement_series"]


def sweep_variance(
    field_name: str,
    values: Sequence,
    base_config: Optional[VarianceConfig] = None,
    seed: SeedLike = None,
    paired: bool = True,
    verbose: bool = False,
) -> Dict:
    """Run the variance experiment once per value of one config field.

    Parameters
    ----------
    field_name:
        Any ``VarianceConfig`` dataclass field, e.g. ``"num_layers"``,
        ``"cost_kind"`` or ``"batched"`` (sweeping ``batched`` over
        ``(True, False)`` with ``paired=True`` is the cheap way to verify
        the batched execution path end to end: both outcomes must match
        bit for bit).
    values:
        The settings to sweep (become the keys of the returned dict).
    base_config:
        Template configuration (library defaults if omitted).
    seed:
        Master seed.  With ``paired=True`` every swept value reuses the
        *same* child seed, so circuit structures and angle draws are
        shared wherever the configuration allows — isolating the effect
        of the swept field.  ``paired=False`` gives independent draws.
    """
    base = base_config or VarianceConfig()
    valid = {f.name for f in fields(VarianceConfig)}
    if field_name not in valid:
        raise ValueError(
            f"unknown VarianceConfig field {field_name!r}; "
            f"choose from {sorted(valid)}"
        )
    rng = ensure_rng(seed)
    shared = spawn_rng(rng)
    outcomes: Dict = {}
    for value in values:
        config = replace(base, **{field_name: value})
        child = shared if paired else spawn_rng(rng)
        # Generators are stateful; re-derive a fresh generator with the
        # same stream for every paired run.
        run_seed = (
            child.bit_generator.seed_seq if paired else child
        )
        outcomes[value] = run_variance_experiment(
            config, seed=run_seed, verbose=verbose
        )
    return outcomes


def improvement_series(
    outcomes: Dict, method: str = "xavier_normal"
) -> Dict:
    """Per-swept-value improvement of ``method`` over random.

    Values where the improvement table is unavailable (degenerate
    baseline) map to ``None``.
    """
    series = {}
    for key, outcome in outcomes.items():
        if not isinstance(outcome, VarianceExperimentOutcome):
            raise TypeError("outcomes must map to VarianceExperimentOutcome")
        series[key] = outcome.improvements.get(method)
    return series
