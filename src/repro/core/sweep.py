"""Generic configuration sweeps over the variance experiment.

The depth ablation (A6) is one instance of a recurring pattern: rerun the
variance study while one configuration field varies, then compare decay
rates/improvements across the values.  ``sweep_variance`` generalizes it
to any ``VarianceConfig`` field, and ``improvement_series`` extracts the
headline number per swept value.

``sweep_variance`` is a deprecation shim over the spec path: it builds an
``ExperimentSpec(kind="sweep", ...)`` and hands it to :func:`repro.run`.
Every swept value is ``replace()``-d into the base config *before* any run
starts, so an invalid value fails fast instead of mid-sweep after burning
the earlier runs.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.experiments import VarianceExperimentOutcome
from repro.core.spec import ExperimentSpec, run
from repro.core.variance import VarianceConfig
from repro.utils.rng import SeedLike

__all__ = ["sweep_variance", "improvement_series"]


def sweep_variance(
    field_name: str,
    values: Sequence,
    base_config: Optional[VarianceConfig] = None,
    seed: SeedLike = None,
    paired: bool = True,
    verbose: bool = False,
) -> Dict:
    """Run the variance experiment once per value of one config field.

    .. deprecated:: 1.1
        Thin shim over ``repro.run(ExperimentSpec(kind="sweep", ...))``;
        signature and seeded outputs are frozen.

    Parameters
    ----------
    field_name:
        Any ``VarianceConfig`` dataclass field, e.g. ``"num_layers"``,
        ``"cost_kind"`` or ``"batched"`` (sweeping ``batched`` over
        ``(True, False)`` with ``paired=True`` is the cheap way to verify
        the batched execution path end to end: both outcomes must match
        bit for bit).
    values:
        The settings to sweep (become the keys of the returned dict).
        All values are validated eagerly, before the first run.
    base_config:
        Template configuration (library defaults if omitted).
    seed:
        Master seed.  With ``paired=True`` every swept value reuses the
        *same* child seed, so circuit structures and angle draws are
        shared wherever the configuration allows — isolating the effect
        of the swept field.  ``paired=False`` gives independent draws.
    """
    return run(
        ExperimentSpec(
            kind="sweep",
            config=base_config,
            seed=seed,
            sweep_field=field_name,
            sweep_values=list(values),
            paired=paired,
        ),
        verbose=verbose,
    )


def improvement_series(
    outcomes: Dict, method: str = "xavier_normal"
) -> Dict:
    """Per-swept-value improvement of ``method`` over random.

    Values where the improvement table is unavailable (degenerate
    baseline) map to ``None``.
    """
    series = {}
    for key, outcome in outcomes.items():
        if not isinstance(outcome, VarianceExperimentOutcome):
            raise TypeError("outcomes must map to VarianceExperimentOutcome")
        series[key] = outcome.improvements.get(method)
    return series
