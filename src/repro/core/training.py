"""Training-analysis engine (paper Section IV-D, Fig. 5b/5c).

Trains the hardware-efficient ansatz of Eq. 3 to learn the identity
function under the global cost of Eq. 4, for a fixed iteration budget,
recording the loss after every update.  Defaults replicate the paper:
10 qubits, 5 layers (145 gates, 100 parameters), 50 iterations, step size
0.1, Gradient Descent or Adam.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro.ansatz.hea import HardwareEfficientAnsatz
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import ObservableCost, make_cost
from repro.core.results import TrainingHistory
from repro.initializers import Initializer, get_initializer
from repro.initializers.registry import PAPER_METHODS
from repro.optim import Optimizer, get_optimizer
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "TrainingConfig",
    "Trainer",
    "train",
    "train_all_methods",
    "run_training_unit",
]


@dataclass
class TrainingConfig:
    """Configuration of the training study (paper defaults)."""

    num_qubits: int = 10
    num_layers: int = 5
    iterations: int = 50
    optimizer: str = "gradient_descent"
    learning_rate: float = 0.1
    cost_kind: str = "global"
    gradient_engine: str = "adjoint"
    rotation_gates: Sequence[str] = ("RX", "RY")
    entanglement: str = "chain"
    entangler: str = "CZ"
    optimizer_kwargs: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive_int(self.num_qubits, "num_qubits")
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.iterations, "iterations")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )

    def build_ansatz(self) -> HardwareEfficientAnsatz:
        """The Eq. 3 ansatz for this configuration."""
        return HardwareEfficientAnsatz(
            num_qubits=self.num_qubits,
            num_layers=self.num_layers,
            rotation_gates=self.rotation_gates,
            entanglement=self.entanglement,
            entangler=self.entangler,
        )

    def build_optimizer(self) -> Optimizer:
        """A fresh optimizer instance with the configured step size."""
        kwargs = dict(self.optimizer_kwargs)
        kwargs.setdefault("learning_rate", self.learning_rate)
        return get_optimizer(self.optimizer, **kwargs)


class Trainer:
    """Runs training cycles for one configuration, one method at a time."""

    def __init__(
        self,
        config: Optional[TrainingConfig] = None,
        simulator: Optional[StatevectorSimulator] = None,
    ):
        self.config = config or TrainingConfig()
        self.simulator = simulator or StatevectorSimulator()
        self._ansatz = self.config.build_ansatz()
        self._circuit = self._ansatz.build()
        self._cost = make_cost(
            self.config.cost_kind,
            self._circuit,
            gradient_engine=self.config.gradient_engine,
            simulator=self.simulator,
        )

    @property
    def cost(self) -> ObservableCost:
        """The cost function being minimized."""
        return self._cost

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (100 for the paper's configuration)."""
        return self._circuit.num_parameters

    def initial_parameters(
        self, method: "str | Initializer", seed: SeedLike = None, **method_kwargs
    ) -> np.ndarray:
        """Sample initial angles for the ansatz from a named method."""
        initializer = (
            method
            if isinstance(method, Initializer)
            else get_initializer(method, **method_kwargs)
        )
        return initializer.sample(self._ansatz.parameter_shape, seed)

    def run(
        self,
        method: "str | Initializer",
        seed: SeedLike = None,
        callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
        initial_params: Optional[np.ndarray] = None,
    ) -> TrainingHistory:
        """Train from one initialization draw.

        Parameters
        ----------
        method:
            Initializer name or instance (names the resulting history).
        seed:
            Seed for the initial parameter draw.
        callback:
            Optional hook ``callback(iteration, loss, params)`` invoked
            after every update (and once at iteration 0).
        initial_params:
            Explicit starting point overriding the initializer draw.
        """
        method_name = method if isinstance(method, str) else method.name
        if initial_params is None:
            params = self.initial_parameters(method, seed)
        else:
            params = np.asarray(initial_params, dtype=float).copy()
            if params.shape != (self.num_parameters,):
                raise ValueError(
                    f"initial_params must have shape ({self.num_parameters},), "
                    f"got {params.shape}"
                )
        optimizer = self.config.build_optimizer()
        initial = params.copy()

        loss, grad = self._cost.value_and_gradient(params)
        losses = [loss]
        grad_norms = [float(np.linalg.norm(grad))]
        if callback is not None:
            callback(0, loss, params)
        for iteration in range(1, self.config.iterations + 1):
            params = optimizer.step(params, grad)
            loss, grad = self._cost.value_and_gradient(params)
            losses.append(loss)
            grad_norms.append(float(np.linalg.norm(grad)))
            if callback is not None:
                callback(iteration, loss, params)
        return TrainingHistory(
            method=method_name,
            optimizer=self.config.optimizer,
            losses=losses,
            gradient_norms=grad_norms,
            initial_params=initial,
            final_params=params,
            cost_kind=self.config.cost_kind,
        )


def train(
    config: Optional[TrainingConfig] = None,
    method: str = "xavier_normal",
    seed: SeedLike = None,
) -> TrainingHistory:
    """One-call training run (convenience wrapper around :class:`Trainer`)."""
    return Trainer(config).run(method, seed=seed)


def run_training_unit(
    config: TrainingConfig, method: str, seed: SeedLike
) -> dict:
    """Picklable work unit: train one method, return its history as a dict.

    This is what executors (including process pools) schedule for
    ``training`` specs; the dict round-trips through shard checkpoints and
    rehydrates via :meth:`TrainingHistory.from_dict`.
    """
    return Trainer(config).run(method, seed=ensure_rng(seed)).to_dict()


def train_all_methods(
    config: Optional[TrainingConfig] = None,
    methods: Sequence[str] = tuple(PAPER_METHODS),
    seed: SeedLike = None,
    verbose: bool = False,
) -> Dict[str, TrainingHistory]:
    """Train every method on the same configuration (one Fig. 5b/5c panel).

    Each method receives an independent child seed derived from ``seed``,
    so the comparison is reproducible end to end.
    """
    trainer = Trainer(config)
    rng = ensure_rng(seed)
    histories: Dict[str, TrainingHistory] = {}
    for method in methods:
        histories[method] = trainer.run(method, seed=spawn_rng(rng))
        if verbose:
            h = histories[method]
            print(
                f"[train:{trainer.config.optimizer}] {method}: "
                f"{h.initial_loss:.4f} -> {h.final_loss:.4f}"
            )
    return histories
