"""Training-analysis engine (paper Section IV-D, Fig. 5b/5c).

Trains the hardware-efficient ansatz of Eq. 3 to learn the identity
function under the global cost of Eq. 4, for a fixed iteration budget,
recording the loss after every update.  Defaults replicate the paper:
10 qubits, 5 layers (145 gates, 100 parameters), 50 iterations, step size
0.1, Gradient Descent or Adam.

Two execution modes produce bit-identical histories:

* sequential — :meth:`Trainer.run` advances one trajectory at a time
  (one fused adjoint pass per iteration);
* lock-step — :meth:`Trainer.run_lockstep` stacks all trajectories (one
  per method, or per ``(method, restart)`` pair) into a ``(B, P)`` batch
  and advances them simultaneously through
  :meth:`ObservableCost.value_and_gradient_batch` and the batch-aware
  optimizers, collapsing ``B x iterations`` adjoint sweeps into
  ``iterations`` batched ones.

Shot-based training (``TrainingConfig.shots``) replaces the analytic
loss/gradient with finite-sample estimates through the hardware
parameter-shift rule.  Each trajectory owns a persistent measurement
stream (``sample_seed`` / ``sample_seeds``) consumed identically by both
execution modes, so lock-step shot-based histories remain bit-identical
to sequential ones given the same spawned child seeds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.ansatz.hea import HardwareEfficientAnsatz
from repro.backend.noise import NoiseModel, resolve_noise_model
from repro.backend.ptm import PauliTransferSimulator
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import ObservableCost, make_cost
from repro.core.results import TrainingHistory
from repro.initializers import Initializer, get_initializer
from repro.initializers.registry import PAPER_METHODS
from repro.optim import Optimizer, get_optimizer
from repro.utils.rng import SeedLike, ensure_rng, spawn_seeds
from repro.utils.validation import check_positive_int

__all__ = [
    "TrainingConfig",
    "Trainer",
    "train",
    "train_all_methods",
    "expand_trajectories",
    "run_training_unit",
    "run_labelled_training_unit",
    "run_lockstep_training_unit",
]


@dataclass
class TrainingConfig:
    """Configuration of the training study (paper defaults).

    ``shots`` switches the study from analytic losses/gradients to
    finite-sample estimation (that many measurement samples per
    expectation, gradients through the hardware parameter-shift rule) —
    the hardware-realistic extension; ``None`` keeps the paper's analytic
    setup.
    """

    num_qubits: int = 10
    num_layers: int = 5
    iterations: int = 50
    optimizer: str = "gradient_descent"
    learning_rate: float = 0.1
    cost_kind: str = "global"
    gradient_engine: str = "adjoint"
    rotation_gates: Sequence[str] = ("RX", "RY")
    entanglement: str = "chain"
    entangler: str = "CZ"
    optimizer_kwargs: Dict[str, float] = field(default_factory=dict)
    shots: Optional[int] = None
    #: Array backend the statevector kernels run on: ``"numpy"`` (default,
    #: bit-identical to the pre-backend code) or an accelerator namespace
    #: spec such as ``"torch"`` / ``"torch:cuda:0"`` / ``"cupy"``, resolved
    #: lazily at run time (see :mod:`repro.utils.array_api`).  Excluded
    #: from checkpoint fingerprints only at its default.
    backend: str = "numpy"
    #: Serializable noise-model payload (``NoiseModel.from_dict``
    #: vocabulary).  When set, trajectories run on the batched
    #: Pauli-transfer engine and gradients route through the shift-rule
    #: family (adjoint sweeps have no non-unitary analogue).  Trivial
    #: payloads normalize to ``None`` — the noiseless fast path executes
    #: them exactly and the checkpoint fingerprints stay aligned.
    noise: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.num_qubits, "num_qubits")
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.iterations, "iterations")
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.shots is not None:
            check_positive_int(self.shots, "shots")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"backend must be a non-empty array-backend spec string, "
                f"got {self.backend!r}"
            )
        if self.noise is not None:
            model = NoiseModel.from_dict(dict(self.noise))
            self.noise = None if model.is_trivial else model.to_dict()

    def build_ansatz(self) -> HardwareEfficientAnsatz:
        """The Eq. 3 ansatz for this configuration."""
        return HardwareEfficientAnsatz(
            num_qubits=self.num_qubits,
            num_layers=self.num_layers,
            rotation_gates=self.rotation_gates,
            entanglement=self.entanglement,
            entangler=self.entangler,
        )

    def build_optimizer(self) -> Optimizer:
        """A fresh optimizer instance with the configured step size."""
        kwargs = dict(self.optimizer_kwargs)
        kwargs.setdefault("learning_rate", self.learning_rate)
        return get_optimizer(self.optimizer, **kwargs)


class Trainer:
    """Runs training cycles for one configuration, one method at a time."""

    def __init__(
        self,
        config: Optional[TrainingConfig] = None,
        simulator: Optional[StatevectorSimulator] = None,
    ):
        self.config = config or TrainingConfig()
        noise_model = resolve_noise_model(self.config.noise)
        gradient_engine = self.config.gradient_engine
        if simulator is not None:
            self.simulator = simulator
        elif noise_model is not None:
            self.simulator = PauliTransferSimulator(
                noise_model, backend=self.config.backend
            )
        else:
            self.simulator = StatevectorSimulator(backend=self.config.backend)
        if noise_model is not None and gradient_engine in (
            "adjoint",
            "batch_adjoint",
        ):
            # Adjoint differentiation assumes unitary evolution; noisy
            # runs fall back to the shift family, mirroring the
            # documented shots= behaviour of ObservableCost.gradient.
            gradient_engine = "parameter_shift"
        self._ansatz = self.config.build_ansatz()
        self._circuit = self._ansatz.build()
        self._cost = make_cost(
            self.config.cost_kind,
            self._circuit,
            gradient_engine=gradient_engine,
            simulator=self.simulator,
        )

    @property
    def cost(self) -> ObservableCost:
        """The cost function being minimized."""
        return self._cost

    @property
    def num_parameters(self) -> int:
        """Trainable parameter count (100 for the paper's configuration)."""
        return self._circuit.num_parameters

    def initial_parameters(
        self, method: "str | Initializer", seed: SeedLike = None, **method_kwargs
    ) -> np.ndarray:
        """Sample initial angles for the ansatz from a named method."""
        initializer = (
            method
            if isinstance(method, Initializer)
            else get_initializer(method, **method_kwargs)
        )
        return initializer.sample(self._ansatz.parameter_shape, seed)

    def run(
        self,
        method: "str | Initializer",
        seed: SeedLike = None,
        callback: Optional[Callable[[int, float, np.ndarray], None]] = None,
        initial_params: Optional[np.ndarray] = None,
        sample_seed: SeedLike = None,
    ) -> TrainingHistory:
        """Train from one initialization draw.

        Parameters
        ----------
        method:
            Initializer name or instance (names the resulting history).
        seed:
            Seed for the initial parameter draw.
        callback:
            Optional hook ``callback(iteration, loss, params)`` invoked
            after every update (and once at iteration 0).
        initial_params:
            Explicit starting point overriding the initializer draw.
        sample_seed:
            Shot-based runs (``config.shots``) only: seeds the
            trajectory's measurement stream, consumed in iteration order
            (value estimate first, then shift terms).
        """
        method_name = method if isinstance(method, str) else method.name
        if sample_seed is not None and self.config.shots is None:
            raise ValueError("sample_seed requires config.shots to be set")
        if initial_params is None:
            params = self.initial_parameters(method, seed)
        else:
            params = np.asarray(initial_params, dtype=float).copy()
            if params.shape != (self.num_parameters,):
                raise ValueError(
                    f"initial_params must have shape ({self.num_parameters},), "
                    f"got {params.shape}"
                )
        optimizer = self.config.build_optimizer()
        initial = params.copy()
        shots = self.config.shots
        sample_rng = ensure_rng(sample_seed) if shots is not None else None

        loss, grad = self._cost.value_and_gradient(
            params, shots=shots, seed=sample_rng
        )
        losses = [loss]
        grad_norms = [float(np.linalg.norm(grad))]
        if callback is not None:
            callback(0, loss, params)
        for iteration in range(1, self.config.iterations + 1):
            params = optimizer.step(params, grad)
            loss, grad = self._cost.value_and_gradient(
                params, shots=shots, seed=sample_rng
            )
            losses.append(loss)
            grad_norms.append(float(np.linalg.norm(grad)))
            if callback is not None:
                callback(iteration, loss, params)
        return TrainingHistory(
            method=method_name,
            optimizer=self.config.optimizer,
            losses=losses,
            gradient_norms=grad_norms,
            initial_params=initial,
            final_params=params,
            cost_kind=self.config.cost_kind,
        )

    def run_lockstep(
        self,
        methods: Sequence["str | Initializer"],
        seeds: Optional[Sequence[SeedLike]] = None,
        initial_params: Optional[np.ndarray] = None,
        callback: Optional[Callable[[int, np.ndarray, np.ndarray], None]] = None,
        labels: Optional[Sequence[str]] = None,
        sample_seeds: Optional[Sequence[SeedLike]] = None,
    ) -> List[TrainingHistory]:
        """Train ``B`` trajectories simultaneously, one batched pass each step.

        Every iteration runs one :meth:`ObservableCost.value_and_gradient_batch`
        over the ``(B, P)`` parameter stack and one batch-aware optimizer
        step with per-trajectory state, instead of ``B`` independent
        sweeps.  Trajectory ``b``'s history is bit-identical to
        ``self.run(methods[b], seed=seeds[b])`` — lock-step is a pure
        throughput change.  Shot-based configurations keep the property:
        every trajectory's measurement stream (``sample_seeds[b]``) is
        consumed exactly as the sequential
        ``self.run(..., sample_seed=sample_seeds[b])`` would consume it.

        Parameters
        ----------
        methods:
            One initializer name/instance per trajectory (duplicates are
            fine, e.g. for multi-restart studies).
        seeds:
            Per-trajectory seeds for the initial draws (default: fresh
            entropy per trajectory), aligned with ``methods``.
        initial_params:
            Explicit ``(B, P)`` starting stack overriding the draws.
        callback:
            Optional hook ``callback(iteration, losses, params)`` invoked
            with the full ``(B,)`` loss vector and ``(B, P)`` stack after
            every update (and once at iteration 0).
        labels:
            History names, defaulting to each method's name; pass explicit
            labels to distinguish restarts of the same method.
        sample_seeds:
            Shot-based runs (``config.shots``) only: one measurement-
            stream seed per trajectory (default: fresh entropy each).
        """
        method_list = list(methods)
        if not method_list:
            raise ValueError("run_lockstep needs at least one trajectory")
        batch = len(method_list)
        if labels is None:
            labels = [
                m if isinstance(m, str) else m.name for m in method_list
            ]
        elif len(labels) != batch:
            raise ValueError(
                f"got {len(labels)} labels for {batch} trajectories"
            )
        shots = self.config.shots
        if sample_seeds is not None and shots is None:
            raise ValueError("sample_seeds requires config.shots to be set")
        sample_rngs: Optional[List[np.random.Generator]] = None
        if shots is not None:
            if sample_seeds is None:
                sample_seeds = [None] * batch
            elif len(sample_seeds) != batch:
                raise ValueError(
                    f"got {len(sample_seeds)} sample_seeds for {batch} "
                    "trajectories"
                )
            sample_rngs = [ensure_rng(s) for s in sample_seeds]
        if initial_params is None:
            if seeds is None:
                seeds = [None] * batch
            if len(seeds) != batch:
                raise ValueError(
                    f"got {len(seeds)} seeds for {batch} trajectories"
                )
            params = np.stack(
                [
                    self.initial_parameters(method, seed)
                    for method, seed in zip(method_list, seeds)
                ]
            )
        else:
            params = np.asarray(initial_params, dtype=float).copy()
            if params.shape != (batch, self.num_parameters):
                raise ValueError(
                    f"initial_params must have shape "
                    f"({batch}, {self.num_parameters}), got {params.shape}"
                )
        optimizer = self.config.build_optimizer()
        initial = params.copy()

        losses: List[List[float]] = [[] for _ in range(batch)]
        grad_norms: List[List[float]] = [[] for _ in range(batch)]

        def record(values: np.ndarray, grads: np.ndarray) -> None:
            for b in range(batch):
                losses[b].append(float(values[b]))
                grad_norms[b].append(float(np.linalg.norm(grads[b])))

        values, grads = self._cost.value_and_gradient_batch(
            params, shots=shots, seed=sample_rngs
        )
        record(values, grads)
        if callback is not None:
            callback(0, values, params)
        for iteration in range(1, self.config.iterations + 1):
            params = optimizer.step(params, grads)
            values, grads = self._cost.value_and_gradient_batch(
                params, shots=shots, seed=sample_rngs
            )
            record(values, grads)
            if callback is not None:
                callback(iteration, values, params)
        return [
            TrainingHistory(
                method=labels[b],
                optimizer=self.config.optimizer,
                losses=losses[b],
                gradient_norms=grad_norms[b],
                initial_params=initial[b].copy(),
                final_params=params[b].copy(),
                cost_kind=self.config.cost_kind,
            )
            for b in range(batch)
        ]


def train(
    config: Optional[TrainingConfig] = None,
    method: str = "xavier_normal",
    seed: SeedLike = None,
) -> TrainingHistory:
    """One-call training run (convenience wrapper around :class:`Trainer`)."""
    return Trainer(config).run(method, seed=seed)


def expand_trajectories(
    methods: Sequence["str | Initializer"], restarts: int = 1
) -> Tuple[List[str], List["str | Initializer"]]:
    """Expand methods into per-trajectory ``(labels, methods)`` lists.

    With ``restarts == 1`` labels are the method names themselves (the
    historical single-restart layout); with more, each method contributes
    ``restarts`` trajectories labelled ``"<method>#r<k>"`` — the layout
    shared by the sequential, lock-step and executor-sharded paths so
    their child-seed streams line up trajectory for trajectory.
    """
    check_positive_int(restarts, "restarts")
    names = [m if isinstance(m, str) else m.name for m in methods]
    if restarts == 1:
        return list(names), list(methods)
    labels = [
        f"{name}#r{restart}" for name in names for restart in range(restarts)
    ]
    expanded = [method for method in methods for _ in range(restarts)]
    return labels, expanded


def _trajectory_seeds(seed: SeedLike, shots: Optional[int]):
    """Resolve one trajectory's child seed into ``(init, sample)`` seeds.

    Analytic trajectories consume the child directly for the initial
    draw (the historical single-stream layout, kept bit-stable); shot-
    based trajectories split the child into an initialization seed and an
    independent measurement-stream seed.  Every execution path — the
    sequential loop, lock-step batching, and executor-sharded units —
    derives its streams through this one function, which is what makes
    shot-based results identical across executors.
    """
    if shots is None:
        return ensure_rng(seed), None
    init_seed, sample_seed = spawn_seeds(seed, 2)
    return init_seed, sample_seed


def _split_trajectory_seeds(seeds: Sequence[SeedLike], shots: Optional[int]):
    """Per-trajectory ``(init_seeds, sample_seeds)`` lists from child seeds.

    The list form of :func:`_trajectory_seeds` shared by every
    multi-trajectory call site; ``sample_seeds`` is ``None`` for analytic
    runs so callers can hand it to :meth:`Trainer.run_lockstep` directly.
    """
    pairs = [_trajectory_seeds(seed, shots) for seed in seeds]
    init_seeds = [init for init, _ in pairs]
    sample_seeds = (
        [sample for _, sample in pairs] if shots is not None else None
    )
    return init_seeds, sample_seeds


def run_training_unit(
    config: TrainingConfig, method: str, seed: SeedLike
) -> dict:
    """Picklable work unit: train one method, return its history as a dict.

    This is what executors (including process pools) schedule for
    ``training`` specs; the dict round-trips through shard checkpoints and
    rehydrates via :meth:`TrainingHistory.from_dict`.  Shot-based configs
    (``config.shots``) split the unit's child seed into initialization
    and measurement streams via :func:`_trajectory_seeds`.
    """
    init_seed, sample_seed = _trajectory_seeds(seed, config.shots)
    history = Trainer(config).run(method, seed=init_seed, sample_seed=sample_seed)
    return history.to_dict()


def run_labelled_training_unit(
    config: TrainingConfig, method: str, label: str, seed: SeedLike
) -> dict:
    """Like :func:`run_training_unit`, but naming the history ``label``.

    Used when a spec shards ``(method, restart)`` pairs: each restart of
    the same method needs a distinct history key.
    """
    init_seed, sample_seed = _trajectory_seeds(seed, config.shots)
    history = Trainer(config).run(method, seed=init_seed, sample_seed=sample_seed)
    history.method = label
    return history.to_dict()


def run_lockstep_training_unit(
    config: TrainingConfig,
    methods: Sequence[str],
    labels: Sequence[str],
    seeds: Sequence[SeedLike],
) -> List[dict]:
    """Picklable work unit advancing every trajectory in lock step.

    One unit covers the whole panel — the batched counterpart of
    scheduling one :func:`run_training_unit` per trajectory; outputs are
    the per-trajectory history dicts in trajectory order.  Per-trajectory
    seeds are resolved exactly as the per-trajectory units resolve them,
    so lock-step outputs stay bit-identical to sharded ones.
    """
    init_seeds, sample_seeds = _split_trajectory_seeds(seeds, config.shots)
    histories = Trainer(config).run_lockstep(
        list(methods),
        seeds=init_seeds,
        labels=list(labels),
        sample_seeds=sample_seeds,
    )
    return [history.to_dict() for history in histories]


def train_all_methods(
    config: Optional[TrainingConfig] = None,
    methods: Sequence[str] = tuple(PAPER_METHODS),
    seed: SeedLike = None,
    verbose: bool = False,
    lockstep: bool = False,
    restarts: int = 1,
) -> Dict[str, TrainingHistory]:
    """Train every method on the same configuration (one Fig. 5b/5c panel).

    Each trajectory receives an independent child seed derived from
    ``seed``, so the comparison is reproducible end to end.

    Parameters
    ----------
    config, methods, seed:
        The panel to train (defaults: paper configuration and methods).
    verbose:
        Print one summary line per trajectory.
    lockstep:
        Advance all trajectories simultaneously via
        :meth:`Trainer.run_lockstep` — bit-identical histories, one
        batched adjoint sweep per iteration instead of one per
        trajectory per iteration.
    restarts:
        Independent restarts per method (``(method, restart)`` pairs,
        labelled ``"<method>#r<k>"`` when greater than one).

    Shot-based panels (``config.shots``) derive an additional measurement
    stream per trajectory from the same child seeds
    (:func:`_trajectory_seeds`), so sequential and lock-step modes remain
    bit-identical under sampling noise too.
    """
    trainer = Trainer(config)
    config = trainer.config
    labels, trajectory_methods = expand_trajectories(methods, restarts)
    init_seeds, sample_seeds = _split_trajectory_seeds(
        spawn_seeds(seed, len(labels)), config.shots
    )
    if lockstep:
        results = trainer.run_lockstep(
            trajectory_methods,
            seeds=init_seeds,
            labels=labels,
            sample_seeds=sample_seeds,
        )
    else:
        results = []
        for b, (method, label) in enumerate(zip(trajectory_methods, labels)):
            history = trainer.run(
                method,
                seed=init_seeds[b],
                sample_seed=sample_seeds[b] if sample_seeds else None,
            )
            history.method = label
            results.append(history)
    histories: Dict[str, TrainingHistory] = dict(zip(labels, results))
    if verbose:
        for label, history in histories.items():
            print(
                f"[train:{trainer.config.optimizer}] {label}: "
                f"{history.initial_loss:.4f} -> {history.final_loss:.4f}"
            )
    return histories
