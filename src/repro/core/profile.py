"""Gradient-variance profiles across parameter positions.

The paper probes only the *last* parameter; this extension measures the
variance of every parameter's gradient, grouped by layer, revealing
*where* in the circuit gradients die.  For a global cost with random
initialization the whole profile collapses uniformly (2-design behaviour);
for width-scaled initializations the profile stays alive, with late
layers seeing the largest surviving signal (less scrambled tail between
the gate and the measurement).

Uses adjoint differentiation, so a full profile costs one backward sweep
per circuit instance rather than ``2 P`` executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ansatz.hea import HardwareEfficientAnsatz
from repro.backend.gradients import adjoint_gradient
from repro.backend.simulator import StatevectorSimulator
from repro.core.cost import make_cost
from repro.initializers import get_initializer
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = ["GradientProfile", "ProfileConfig", "gradient_profile"]


@dataclass
class ProfileConfig:
    """Configuration of the per-layer gradient-variance profile."""

    num_qubits: int = 6
    num_layers: int = 5
    num_samples: int = 50
    cost_kind: str = "global"
    rotation_gates: Sequence[str] = ("RX", "RY")

    def __post_init__(self) -> None:
        check_positive_int(self.num_qubits, "num_qubits")
        check_positive_int(self.num_layers, "num_layers")
        check_positive_int(self.num_samples, "num_samples")


@dataclass
class GradientProfile:
    """Per-parameter and per-layer gradient variance for one method."""

    method: str
    num_layers: int
    params_per_layer: int
    per_parameter_variance: np.ndarray

    @property
    def per_layer_variance(self) -> np.ndarray:
        """Mean gradient variance of each layer's parameters."""
        return self.per_parameter_variance.reshape(
            self.num_layers, self.params_per_layer
        ).mean(axis=1)

    @property
    def total_variance(self) -> float:
        """Mean variance over all parameters (overall trainability)."""
        return float(self.per_parameter_variance.mean())

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "num_layers": self.num_layers,
            "params_per_layer": self.params_per_layer,
            "per_parameter_variance": [
                float(v) for v in self.per_parameter_variance
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GradientProfile":
        return cls(
            method=str(payload["method"]),
            num_layers=int(payload["num_layers"]),
            params_per_layer=int(payload["params_per_layer"]),
            per_parameter_variance=np.asarray(
                payload["per_parameter_variance"], dtype=float
            ),
        )


def gradient_profile(
    method: str,
    config: Optional[ProfileConfig] = None,
    seed: SeedLike = None,
    simulator: Optional[StatevectorSimulator] = None,
    **method_kwargs,
) -> GradientProfile:
    """Estimate the gradient-variance profile for one initializer.

    Parameters
    ----------
    method:
        Initializer registry name.
    config:
        Circuit and sampling configuration.
    seed:
        Master seed; each sample draws an independent child stream.
    **method_kwargs:
        Forwarded to the initializer factory.
    """
    config = config or ProfileConfig()
    simulator = simulator or StatevectorSimulator()
    rng = ensure_rng(seed)
    initializer = get_initializer(method, **method_kwargs)

    ansatz = HardwareEfficientAnsatz(
        num_qubits=config.num_qubits,
        num_layers=config.num_layers,
        rotation_gates=config.rotation_gates,
    )
    circuit = ansatz.build()
    cost = make_cost(config.cost_kind, circuit, simulator=simulator)
    shape = ansatz.parameter_shape

    gradients = np.empty((config.num_samples, circuit.num_parameters))
    for row in range(config.num_samples):
        params = initializer.sample(shape, spawn_rng(rng))
        gradients[row] = cost.scale * adjoint_gradient(
            circuit, cost.observable, params, simulator=simulator
        )
    return GradientProfile(
        method=method,
        num_layers=config.num_layers,
        params_per_layer=shape.params_per_layer,
        per_parameter_variance=gradients.var(axis=0),
    )


def profile_all_methods(
    methods: Sequence[str],
    config: Optional[ProfileConfig] = None,
    seed: SeedLike = None,
) -> Dict[str, GradientProfile]:
    """Profiles for several methods from independent child seeds."""
    rng = ensure_rng(seed)
    return {
        method: gradient_profile(method, config=config, seed=spawn_rng(rng))
        for method in methods
    }
