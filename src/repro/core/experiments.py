"""Paper-level experiment runners.

These compose the engines into one call per paper artifact:

* :func:`run_variance_experiment` — Fig. 5a plus the Section VI-A
  improvement percentages;
* :func:`run_training_experiment` — one panel of Fig. 5b (gradient
  descent) or Fig. 5c (Adam);
* :func:`run_full_reproduction` — everything, returning a single
  serializable summary.

``run_variance_experiment`` and ``run_training_experiment`` are kept as
deprecation shims: their signatures and seeded outputs are frozen, but
internally they route through :class:`repro.core.spec.ExperimentSpec` and
the executor registry.  New code should build a spec and call
:func:`repro.run` directly — that path adds worker sharding and
checkpoint/resume for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from repro.core.decay import fit_all_methods, improvement_over_random, rank_methods
from repro.core.results import DecayFit, TrainingHistory, VarianceResult
from repro.core.spec import ExperimentSpec, run
from repro.core.training import TrainingConfig
from repro.core.variance import VarianceConfig
from repro.initializers.registry import PAPER_METHODS
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng

__all__ = [
    "VarianceExperimentOutcome",
    "TrainingExperimentOutcome",
    "FullReproductionOutcome",
    "variance_outcome_from_result",
    "run_variance_experiment",
    "run_training_experiment",
    "run_full_reproduction",
]


@dataclass
class VarianceExperimentOutcome:
    """Variance result + decay fits + improvement table (Fig. 5a, E2/E3)."""

    result: VarianceResult
    fits: Dict[str, DecayFit]
    improvements: Dict[str, float]
    ranking: List[str]

    def to_dict(self) -> dict:
        return {
            "result": self.result.to_dict(),
            "fits": {m: f.to_dict() for m, f in self.fits.items()},
            "improvements": dict(self.improvements),
            "ranking": list(self.ranking),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VarianceExperimentOutcome":
        return cls(
            result=VarianceResult.from_dict(payload["result"]),
            fits={
                m: DecayFit.from_dict(f) for m, f in payload["fits"].items()
            },
            improvements={
                m: float(v) for m, v in payload["improvements"].items()
            },
            ranking=[str(m) for m in payload["ranking"]],
        )


@dataclass
class TrainingExperimentOutcome:
    """Per-method training histories (one Fig. 5b/5c panel, E4/E5)."""

    optimizer: str
    histories: Dict[str, TrainingHistory]

    def final_losses(self) -> Dict[str, float]:
        """Final loss per method."""
        return {m: h.final_loss for m, h in self.histories.items()}

    def ranking(self) -> List[str]:
        """Methods ordered by final loss, best first."""
        return sorted(self.histories, key=lambda m: self.histories[m].final_loss)

    def to_dict(self) -> dict:
        return {
            "optimizer": self.optimizer,
            "histories": {m: h.to_dict() for m, h in self.histories.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingExperimentOutcome":
        return cls(
            optimizer=str(payload["optimizer"]),
            histories={
                m: TrainingHistory.from_dict(h)
                for m, h in payload["histories"].items()
            },
        )


@dataclass
class FullReproductionOutcome:
    """All paper artifacts from one seeded run."""

    variance: VarianceExperimentOutcome
    training: Dict[str, TrainingExperimentOutcome] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "variance": self.variance.to_dict(),
            "training": {k: t.to_dict() for k, t in self.training.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FullReproductionOutcome":
        return cls(
            variance=VarianceExperimentOutcome.from_dict(payload["variance"]),
            training={
                k: TrainingExperimentOutcome.from_dict(t)
                for k, t in payload["training"].items()
            },
        )


def variance_outcome_from_result(
    result: VarianceResult,
) -> VarianceExperimentOutcome:
    """Derive the paper's headline metrics from a raw variance result."""
    fits = fit_all_methods(result)
    # The improvement table needs a positive random-baseline decay rate;
    # degenerate (tiny/noisy) runs fall back to an empty table rather than
    # failing the whole experiment.
    if "random" in fits and fits["random"].rate > 0:
        improvements = improvement_over_random(fits)
    else:
        improvements = {}
    return VarianceExperimentOutcome(
        result=result,
        fits=fits,
        improvements=improvements,
        ranking=rank_methods(fits),
    )


def run_variance_experiment(
    config: Optional[VarianceConfig] = None,
    seed: SeedLike = None,
    verbose: bool = False,
    batched: Optional[bool] = None,
) -> VarianceExperimentOutcome:
    """Run the variance study and derive the paper's headline metrics.

    .. deprecated:: 1.1
        Thin shim over ``repro.run(ExperimentSpec(kind="variance", ...))``;
        the spec path additionally offers multi-process sharding and
        checkpoint/resume.  Signature and seeded outputs are frozen.

    ``batched`` overrides ``config.batched`` when given: ``True`` folds
    every method's draws and shift terms per structure into one batched
    statevector execution (the default, and bit-identical to sequential
    for a fixed seed), ``False`` forces the sequential reference path.
    """
    if batched is not None:
        config = replace(config or VarianceConfig(), batched=batched)
    return run(
        ExperimentSpec(kind="variance", config=config, seed=seed),
        verbose=verbose,
    )


def run_training_experiment(
    config: Optional[TrainingConfig] = None,
    methods: Sequence[str] = tuple(PAPER_METHODS),
    seed: SeedLike = None,
    verbose: bool = False,
) -> TrainingExperimentOutcome:
    """Train every method under one optimizer configuration.

    .. deprecated:: 1.1
        Thin shim over ``repro.run(ExperimentSpec(kind="training", ...))``;
        signature and seeded outputs are frozen.
    """
    return run(
        ExperimentSpec(
            kind="training", config=config, seed=seed, methods=tuple(methods)
        ),
        verbose=verbose,
    )


def run_full_reproduction(
    variance_config: Optional[VarianceConfig] = None,
    training_config: Optional[TrainingConfig] = None,
    optimizers: Sequence[str] = ("gradient_descent", "adam"),
    seed: SeedLike = None,
    verbose: bool = False,
) -> FullReproductionOutcome:
    """Run Fig. 5a + Fig. 5b + Fig. 5c end to end from one master seed."""
    rng = ensure_rng(seed)
    variance = run_variance_experiment(
        variance_config, seed=spawn_rng(rng), verbose=verbose
    )
    base = training_config or TrainingConfig()
    training: Dict[str, TrainingExperimentOutcome] = {}
    for optimizer in optimizers:
        config = TrainingConfig(
            num_qubits=base.num_qubits,
            num_layers=base.num_layers,
            iterations=base.iterations,
            optimizer=optimizer,
            learning_rate=base.learning_rate,
            cost_kind=base.cost_kind,
            gradient_engine=base.gradient_engine,
            rotation_gates=base.rotation_gates,
            entanglement=base.entanglement,
            entangler=base.entangler,
        )
        training[optimizer] = run_training_experiment(
            config, seed=spawn_rng(rng), verbose=verbose
        )
    return FullReproductionOutcome(variance=variance, training=training)
