"""Declarative experiment specification — the ``repro.run`` entry point.

Every paper artifact is reachable through one object and one call: an
:class:`ExperimentSpec` names *what* to run (kind + config + seed) and
*how* to run it (executor + workers + checkpointing), and :func:`run`
dispatches it.  The legacy entry points (``run_variance_experiment``,
``run_training_experiment``, ``sweep_variance``) are thin shims over this
path.

Quickstart
----------
Run the Fig. 5a variance study on the default (batched) executor::

    import repro
    from repro import ExperimentSpec, VarianceConfig

    spec = ExperimentSpec(
        kind="variance",
        config=VarianceConfig(qubit_counts=(2, 4, 6), num_circuits=50),
        seed=0,
    )
    outcome = repro.run(spec)           # VarianceExperimentOutcome
    print(outcome.ranking)

Variance grids run mega-batched by default (``VarianceConfig.fold``):
each work unit folds all of its same-shape structures into stacked
executions hundreds of rows wide — a pure throughput knob, excluded from
checkpoint fingerprints, bit-identical to the per-structure and serial
paths.  Shard the same grid over 4 worker processes, with
checkpoint/resume — seeded results are bit-identical to the serial run::

    spec = ExperimentSpec(
        kind="variance",
        config=VarianceConfig(qubit_counts=(2, 4, 6), num_circuits=50),
        seed=0,
        executor="process_pool",
        workers=4,
        checkpoint_dir="checkpoints/fig5a",
    )
    outcome = repro.run(spec)           # interrupted? rerun to resume

Training (one Fig. 5b/5c panel) and sweeps use the same shape; the
``lockstep`` executor advances every (method, restart) trajectory
simultaneously through the batched adjoint engine — bit-identical
histories, one batched sweep per iteration::

    repro.run(ExperimentSpec(kind="training", seed=1, methods=("random", "zeros")))
    repro.run(ExperimentSpec(
        kind="training", seed=1, restarts=5, executor="lockstep",
    ))
    repro.run(ExperimentSpec(
        kind="sweep", sweep_field="num_layers", sweep_values=[10, 30, 60], seed=2,
    ))

Any spec runs under hardware-realistic sampling noise by adding
``shots=`` — losses, gradients and variance probes become finite-sample
estimates with per-trajectory measurement streams spawned from the spec
seed, still bit-identical across executors::

    repro.run(ExperimentSpec(kind="training", seed=1, shots=1024, executor="lockstep"))

Specs serialize: ``spec.to_dict()`` / ``ExperimentSpec.from_file(path)``
round-trip through JSON, and the CLI runs a saved file directly::

    python -m repro run spec.json --workers 4

Executors live in a registry (:mod:`repro.core.executor`): ``serial``
(sequential reference path), ``batched`` (default), ``lockstep``
(batched + lock-step training), ``process_pool`` (multi-process
sharding).  ``repro info`` lists them.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.backend.noise import NoiseModel
from repro.core.executor import EXECUTORS, Executor, WorkUnit, get_executor
from repro.reliability import FaultPlan, RetryPolicy
from repro.core.training import TrainingConfig
from repro.core.variance import (
    VarianceConfig,
    format_variance_progress,
    merge_variance_outputs,
    plan_variance_shards,
)
from repro.core import variance as _variance_module
from repro.initializers.registry import PAPER_METHODS
from repro.utils.array_api import get_array_backend
from repro.utils.rng import SeedLike, ensure_rng, spawn_rng, spawn_seeds
from repro.utils.validation import check_positive_int

__all__ = [
    "ExperimentSpec",
    "ExperimentPlan",
    "plan_experiment",
    "run",
    "EXPERIMENT_KINDS",
]

#: Supported experiment kinds and their config classes.
EXPERIMENT_KINDS: Dict[str, type] = {
    "variance": VarianceConfig,
    "training": TrainingConfig,
    "sweep": VarianceConfig,
}


def _encode_seed(seed: SeedLike) -> Any:
    """JSON-encodable form of a seed (``None``/int pass through)."""
    if seed is None or isinstance(seed, int):
        return seed
    if isinstance(seed, np.integer):
        return int(seed)
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq
        if seed_seq is None:  # pragma: no cover - legacy bit generators
            raise ValueError(
                "cannot serialize a Generator without a SeedSequence; "
                "pass an int seed instead"
            )
        seed = seed_seq
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = [int(e) for e in entropy]
        elif entropy is not None:
            entropy = int(entropy)
        return {
            "entropy": entropy,
            "spawn_key": [int(k) for k in seed.spawn_key],
            "pool_size": int(seed.pool_size),
            "n_children_spawned": int(seed.n_children_spawned),
        }
    raise TypeError(f"cannot serialize seed of type {type(seed).__name__}")


def _decode_seed(payload: Any) -> SeedLike:
    """Inverse of :func:`_encode_seed`."""
    if payload is None or isinstance(payload, int):
        return payload
    if isinstance(payload, dict):
        return np.random.SeedSequence(
            entropy=payload.get("entropy"),
            spawn_key=tuple(payload.get("spawn_key", ())),
            pool_size=int(payload.get("pool_size", 4)),
            n_children_spawned=int(payload.get("n_children_spawned", 0)),
        )
    raise TypeError(f"cannot decode seed payload {payload!r}")


@dataclass
class ExperimentSpec:
    """One declarative experiment: what to run, with what seed, and how.

    Parameters
    ----------
    kind:
        ``"variance"`` (Fig. 5a), ``"training"`` (one Fig. 5b/5c panel) or
        ``"sweep"`` (variance grid per swept config value).
    config:
        Kind-matched config object (:class:`VarianceConfig` /
        :class:`TrainingConfig`), a plain dict of its fields, or ``None``
        for library defaults.  Sweeps take the *base* variance config.
    seed:
        Master seed.  Ints/None serialize directly; ``SeedSequence`` (and
        generators carrying one) serialize via their entropy/spawn state.
    executor:
        Registered executor name, or ``None`` to derive one from the
        config (``batched``/``serial`` per ``VarianceConfig.batched``).
    workers:
        Worker count for multi-process executors (``process_pool``).
    checkpoint_dir:
        Directory for per-shard checkpoints; a rerun of the same spec
        resumes from completed shards.
    circuits_per_shard:
        Variance shard granularity override (default: executor's choice).
    methods:
        Initializer names for ``training`` specs (``None`` = the paper's
        methods); variance methods belong in ``config.methods``.
    restarts:
        Independent restarts per method for ``training`` specs: the run
        covers every ``(method, restart)`` trajectory (labelled
        ``"<method>#r<k>"`` when greater than one), sharded across
        executor units — or folded into one lock-step batch by the
        ``lockstep`` executor.
    shots:
        Estimate every expectation from this many measurement samples
        instead of analytically (``None`` keeps the paper's analytic
        setup).  Applies to all kinds — sampled training losses and
        shift-rule gradients for ``training``, sampled probe gradients
        for ``variance``/``sweep`` — by overriding the config's own
        ``shots`` field.  Per-trajectory / per-circuit measurement
        streams are spawned from the spec seed, so sampled results are
        bit-identical across every executor.
    backend:
        Array backend the statevector kernels run on: ``"numpy"``
        (default, bit-identical to the pre-backend code) or an
        accelerator namespace spec such as ``"torch"`` /
        ``"torch:cuda:0"`` / ``"cupy"`` — resolved eagerly at ``run()``
        so a missing optional dependency fails fast with an actionable
        error.  Non-default values override the config's own ``backend``
        field (mirroring ``shots``) and route to the ``device`` executor
        unless one is named explicitly.
    noise:
        Noise-model payload (:meth:`~repro.backend.noise.NoiseModel.to_dict`
        form) overriding the config's own ``noise`` field, mirroring
        ``shots``.  Non-trivial noise routes execution through the
        batched Pauli-transfer simulator; a trivial payload (identity
        channels, zero readout error) normalizes to ``None`` so its
        fingerprint equals the noiseless one.
    sweep_field / sweep_values / paired:
        For ``sweep`` specs: the :class:`VarianceConfig` field to vary,
        the values it takes, and whether runs share paired RNG streams.
    retry:
        Retry policy for the run's executor: an attempt count, a
        :meth:`~repro.reliability.RetryPolicy.to_dict` payload, or a
        :class:`~repro.reliability.RetryPolicy` instance.  ``None``
        defers to the environment (``REPRO_RETRY`` /
        ``REPRO_MAX_ATTEMPTS``) or the library default.  Scheduling-only:
        never enters the fingerprint — retried units are bit-identical
        by the pre-reserved-RNG contract.
    fault_plan:
        Deterministic chaos plan (:class:`~repro.reliability.FaultPlan`
        or its dict form) injected into the run's executor — test/CI
        tooling, ``None`` (the default) defers to ``REPRO_FAULT_PLAN``.
        Scheduling-only, like ``retry``.
    backend_fallback:
        When True, a non-numpy ``backend`` that fails to import or
        initialize degrades to numpy with one structured
        :class:`~repro.utils.array_api.BackendFallbackWarning` instead
        of raising — applied at resolve time, so fingerprints and cached
        results are stamped numpy.  ``None`` (default) reads the
        ``REPRO_BACKEND_FALLBACK`` env var; False keeps fail-fast.
    """

    kind: str
    config: Any = None
    seed: SeedLike = None
    executor: Optional[str] = None
    workers: int = 1
    checkpoint_dir: Optional[Union[str, Path]] = None
    circuits_per_shard: Optional[int] = None
    methods: Optional[Sequence[str]] = None
    restarts: int = 1
    shots: Optional[int] = None
    backend: str = "numpy"
    noise: Optional[Dict[str, object]] = None
    sweep_field: Optional[str] = None
    sweep_values: Optional[Sequence] = None
    paired: bool = True
    retry: Any = None
    fault_plan: Any = None
    backend_fallback: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.kind not in EXPERIMENT_KINDS:
            raise ValueError(
                f"unknown experiment kind {self.kind!r}; "
                f"choose from {sorted(EXPERIMENT_KINDS)}"
            )
        config_cls = EXPERIMENT_KINDS[self.kind]
        if isinstance(self.config, dict):
            # JSON round-trips turn tuple fields into lists; normalize back
            # so reconstructed configs compare equal to handwritten ones.
            normalized = {
                key: tuple(value) if isinstance(value, list) else value
                for key, value in self.config.items()
            }
            self.config = config_cls(**normalized)
        elif self.config is not None and not isinstance(self.config, config_cls):
            raise TypeError(
                f"{self.kind} specs take a {config_cls.__name__} "
                f"(or a dict of its fields), got {type(self.config).__name__}"
            )
        check_positive_int(self.workers, "workers")
        check_positive_int(self.restarts, "restarts")
        if self.shots is not None:
            check_positive_int(self.shots, "shots")
        if not isinstance(self.backend, str) or not self.backend:
            raise ValueError(
                f"backend must be a non-empty array-backend spec string, "
                f"got {self.backend!r}"
            )
        if self.noise is not None:
            # Validate eagerly and canonicalize: a trivial model (identity
            # channels, zero readout error) is bit-identical to noiseless,
            # so it normalizes to None and fingerprints stay aligned.
            model = NoiseModel.from_dict(dict(self.noise))
            self.noise = None if model.is_trivial else model.to_dict()
        if self.retry is not None:
            # Validate eagerly (a bad policy must fail at spec
            # construction, not mid-run) but keep the raw value so
            # to_dict round-trips the user's own spelling.
            RetryPolicy.coerce(self.retry)
        if self.fault_plan is not None:
            FaultPlan.coerce(self.fault_plan)
        if self.backend_fallback is not None and not isinstance(
            self.backend_fallback, bool
        ):
            raise ValueError(
                f"backend_fallback must be True, False or None (defer to "
                f"REPRO_BACKEND_FALLBACK), got {self.backend_fallback!r}"
            )
        if self.circuits_per_shard is not None:
            # Validate eagerly: a bad shard size must fail at spec
            # construction, not after earlier shards have already burned
            # compute inside an executor.
            check_positive_int(self.circuits_per_shard, "circuits_per_shard")
        if self.methods is not None and self.kind != "training":
            raise ValueError(
                "methods applies to training specs only; variance methods "
                "belong in config.methods"
            )
        if self.restarts != 1 and self.kind != "training":
            raise ValueError(
                f"restarts applies to training specs only, not "
                f"kind={self.kind!r}"
            )
        if self.kind == "sweep":
            if self.sweep_field is None or self.sweep_values is None:
                raise ValueError(
                    "sweep specs require sweep_field and sweep_values"
                )
            valid = {f.name for f in fields(VarianceConfig)}
            if self.sweep_field not in valid:
                raise ValueError(
                    f"unknown VarianceConfig field {self.sweep_field!r}; "
                    f"choose from {sorted(valid)}"
                )
        elif self.sweep_field is not None or self.sweep_values is not None:
            raise ValueError(
                f"sweep_field/sweep_values apply to sweep specs only, "
                f"not kind={self.kind!r}"
            )

    def resolved_executor(self) -> str:
        """The executor name to run with (deriving one if unset)."""
        if self.executor is not None:
            return self.executor
        if self._resolved_backend() != "numpy":
            # Non-numpy namespaces default to the in-process device
            # executor: widest resident batches, no cross-process state.
            return "device"
        if self.kind == "training":
            return "serial"
        config = self.config or VarianceConfig()
        return "batched" if config.batched else "serial"

    def _fallback_enabled(self) -> bool:
        """Whether backend graceful degradation is on (spec or env)."""
        if self.backend_fallback is not None:
            return self.backend_fallback
        flag = os.environ.get("REPRO_BACKEND_FALLBACK", "")
        return flag.strip().lower() in ("1", "true", "yes", "on")

    def _resolved_backend(self) -> str:
        """The array backend the run will use (spec override or config's).

        With :attr:`backend_fallback` enabled, an unavailable non-numpy
        backend resolves to ``"numpy"`` here — before executor
        derivation and fingerprinting — so the degraded run is planned,
        keyed and cached as what it actually computes.
        """
        if self.backend != "numpy":
            backend = self.backend
        else:
            config_backend = getattr(self.config, "backend", "numpy")
            backend = config_backend if config_backend else "numpy"
        if backend != "numpy" and self._fallback_enabled():
            from repro.utils.array_api import backend_spec_with_fallback

            backend = backend_spec_with_fallback(backend)
        return backend

    def fingerprint(self, plan: Any = None) -> str:
        """Content-addressed digest of this experiment's resolved identity.

        This is the public cache/checkpoint key used by shard checkpoints
        and the serving layer (:mod:`repro.service`): two specs share a
        fingerprint exactly when they are guaranteed to produce
        bit-identical results from the same canonical payload.

        Canonicalization rules:

        * The config is **resolved** first: a ``None`` config becomes the
          kind's defaults, spec-level ``shots``/``noise``/``backend``
          overrides are merged in, and the resolved executor's batching
          policy is applied (``executor="serial"`` forces
          ``batched=False``) — so the digest reflects what will actually
          run, not how the spec happened to be written.
        * Config fields at identity-neutral values are dropped:
          ``shots=None`` (analytic), ``noise=None`` (noiseless — trivial
          payloads canonicalize to ``None`` first), ``fold`` (always — a
          pure throughput knob, bit-identical across scopes) and
          ``backend="numpy"`` (bit-identical to the pre-backend kernels).
          Checkpoints written before those fields existed therefore keep
          matching.
        * The seed is encoded via its ``SeedSequence`` entropy/spawn
          state; a transient ``Generator`` without one is rejected with a
          :class:`ValueError` (its stream cannot be reproduced).
        * ``methods`` is stamped only when set, ``restarts`` only when
          ``!= 1``, and ``sweep_field``/``sweep_values``/``paired`` only
          for ``kind="sweep"`` — historical fingerprints stay stable.
        * Scheduling-only fields (``executor`` name, ``workers``,
          ``checkpoint_dir``) never enter the digest; ``plan`` folds in
          anything that changes how work is *cut into units* (e.g.
          ``{"circuits_per_shard": n}``) because resuming under a
          different plan must invalidate shard checkpoints.

        The digest is the SHA-1 hex of the canonical sorted-keys JSON.
        """
        return _fingerprint(self.kind, _resolve_config(self), self, plan=plan)

    # -- serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "config": asdict(self.config) if self.config is not None else None,
            "seed": _encode_seed(self.seed),
            "executor": self.executor,
            "workers": self.workers,
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir else None
            ),
            "circuits_per_shard": self.circuits_per_shard,
            "methods": list(self.methods) if self.methods is not None else None,
            "restarts": self.restarts,
            "shots": self.shots,
            "backend": self.backend,
            "noise": self.noise,
            "sweep_field": self.sweep_field,
            "sweep_values": (
                list(self.sweep_values) if self.sweep_values is not None else None
            ),
            "paired": self.paired,
            "retry": (
                self.retry.to_dict()
                if isinstance(self.retry, RetryPolicy)
                else self.retry
            ),
            "fault_plan": (
                self.fault_plan.to_dict()
                if isinstance(self.fault_plan, FaultPlan)
                else self.fault_plan
            ),
            "backend_fallback": self.backend_fallback,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            # A typo'd key (e.g. "sede") would otherwise silently run a
            # different experiment than the file describes.
            raise ValueError(
                f"unknown spec field(s) {unknown}; "
                f"valid fields: {sorted(known)}"
            )
        if "kind" not in payload:
            raise ValueError(
                f"spec is missing its 'kind' field; "
                f"choose from {sorted(EXPERIMENT_KINDS)}"
            )
        # Handwritten spec files may carry explicit nulls for optional
        # scalars; treat them like absent keys.
        workers = payload.get("workers")
        paired = payload.get("paired")
        restarts = payload.get("restarts")
        shots = payload.get("shots")
        backend = payload.get("backend")
        return cls(
            kind=str(payload["kind"]),
            config=payload.get("config"),
            seed=_decode_seed(payload.get("seed")),
            executor=payload.get("executor"),
            workers=1 if workers is None else int(workers),
            checkpoint_dir=payload.get("checkpoint_dir"),
            circuits_per_shard=payload.get("circuits_per_shard"),
            methods=payload.get("methods"),
            restarts=1 if restarts is None else int(restarts),
            shots=None if shots is None else int(shots),
            backend="numpy" if backend is None else str(backend),
            noise=payload.get("noise"),
            sweep_field=payload.get("sweep_field"),
            sweep_values=payload.get("sweep_values"),
            paired=True if paired is None else bool(paired),
            retry=payload.get("retry"),
            fault_plan=payload.get("fault_plan"),
            backend_fallback=payload.get("backend_fallback"),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "ExperimentSpec":
        """Load a spec from a JSON file.

        Accepts both a bare spec dict and a :func:`repro.io.save_result`
        payload wrapping one.
        """
        with Path(path).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise ValueError(f"{path} does not contain a spec object")
        if payload.get("type") == "ExperimentSpec" and "data" in payload:
            payload = payload["data"]
        return cls.from_dict(payload)


def _digest(body: dict) -> str:
    """SHA-1 hex of the canonical (sorted-keys) JSON form of ``body``."""
    canonical = json.dumps(body, sort_keys=True, default=list)
    return hashlib.sha1(canonical.encode("utf-8")).hexdigest()


def _canonical_config_payload(config: Any) -> Optional[dict]:
    """Canonical JSON-able form of a config for fingerprinting.

    Shared by the run-level and shard-level fingerprints.  Fields at
    identity-neutral values are dropped so historical fingerprints stay
    stable as the config grows:

    * ``shots=None`` — analytic configs keep their pre-shots
      fingerprints, so existing checkpoints stay resumable.
    * ``noise=None`` — noiseless configs keep their pre-noise
      fingerprints; non-trivial noise payloads stay stamped so noisy
      results never collide with noiseless cache entries.
    * ``fold`` — a pure throughput knob; seeded results are bit-identical
      across scopes, so checkpoints written under any fold remain
      resumable under any other (and pre-fold checkpoints keep matching).
    * ``backend="numpy"`` — bit-identical to the pre-backend kernels, so
      default-backend checkpoints keep their historical fingerprints.
      Non-numpy backends are only tolerance-equal and stay stamped: a
      resume must not silently mix numerics across namespaces.
    """
    if config is None:
        return None
    payload = asdict(config)
    if payload.get("shots") is None:
        payload.pop("shots", None)
    if payload.get("noise") is None:
        # Noiseless (and trivial, which canonicalizes to None) configs
        # keep their pre-noise fingerprints; noisy payloads are stamped,
        # so noisy cache entries can never collide with noiseless ones.
        payload.pop("noise", None)
    payload.pop("fold", None)
    if payload.get("backend", "numpy") == "numpy":
        payload.pop("backend", None)
    return payload


def _resolve_config(
    spec: ExperimentSpec, executor: Optional[Executor] = None
) -> Any:
    """The config the run will actually use.

    Instantiates the kind's defaults for a ``None`` config, merges the
    spec-level ``shots``/``backend`` overrides, and applies the resolved
    executor's variance batching policy (``serial`` forces the sequential
    reference path, ``batched``/``lockstep``/``device`` force the batched
    kernels).  Pass the actual ``executor`` instance when one exists;
    otherwise the policy of :meth:`ExperimentSpec.resolved_executor`'s
    registered class is used.
    """
    config = (
        spec.config if spec.config is not None else EXPERIMENT_KINDS[spec.kind]()
    )
    config = _apply_shots(spec, config)
    config = _apply_noise(spec, config)
    # The resolved backend folds in the spec-level override and (when
    # backend_fallback is on) graceful degradation to numpy — stamping
    # the config *here* means fingerprints describe what actually runs.
    backend = spec._resolved_backend()
    if spec.backend != "numpy" or backend != (
        getattr(config, "backend", backend) or backend
    ):
        config = replace(config, backend=backend)
    if spec.kind == "variance":
        if executor is not None:
            batched = executor.variance_batched
        else:
            cls = EXECUTORS.get(spec.resolved_executor())
            batched = cls.variance_batched if cls is not None else None
        if batched is not None:
            config = replace(config, batched=batched)
    return config


def _fingerprint(
    kind: str, config: Any, spec: ExperimentSpec, plan: Any = None
) -> str:
    """Stable digest tying shard checkpoints to their exact experiment.

    ``plan`` captures anything that changes how the work is cut into
    units (e.g. the variance shard granularity): resuming under a
    different plan must invalidate old checkpoints, not mis-merge them.
    Prefer the public :meth:`ExperimentSpec.fingerprint`, which resolves
    the config first; this low-level form takes an already-resolved one.
    """
    try:
        seed = _encode_seed(spec.seed)
    except (TypeError, ValueError):
        raise ValueError(
            "checkpointing requires a serializable seed (int, None, or "
            "SeedSequence-backed); got a transient generator"
        ) from None
    payload = {
        "kind": kind,
        "config": _canonical_config_payload(config),
        "seed": seed,
        "methods": list(spec.methods) if spec.methods else None,
        "plan": plan,
    }
    if spec.restarts != 1:
        # Only stamped when used, so single-restart checkpoints keep their
        # historical fingerprints.
        payload["restarts"] = spec.restarts
    if kind == "sweep":
        # Sweep specs never fingerprinted before this key existed, so
        # stamping only this kind leaves variance/training digests alone.
        payload["sweep"] = {
            "field": spec.sweep_field,
            "values": list(spec.sweep_values or ()),
            "paired": spec.paired,
        }
    return _digest(payload)


def _variance_unit_fingerprint(config: Any, shard: Any) -> str:
    """Content key of one variance shard, independent of its grid.

    A shard's output is fully determined by the non-grid config fields
    (layers, methods, cost, shots, backend, ...) plus its own qubit
    count, row offset and pre-reserved RNG children — *not* by which
    ``qubit_counts``/``num_circuits`` grid it was cut from, and (by the
    library's bit-identity contract) not by ``batched``/``fold`` either.
    Dropping those from the key lets partially-overlapping specs (the
    same grid cells inside different supersets) share shards in a
    content-addressed :class:`repro.service.ResultStore`: the seed spawn
    state embedded in the key guarantees a match only when the shard's
    random streams are truly identical.
    """
    payload = _canonical_config_payload(config) or {}
    for grid_field in ("qubit_counts", "num_circuits", "batched"):
        payload.pop(grid_field, None)
    return _digest(
        {
            "unit": "variance-shard",
            "config": payload,
            "num_qubits": int(shard.num_qubits),
            "start": int(shard.start),
            "seeds": [_encode_seed(s) for s in shard.seeds],
        }
    )


def _training_unit_fingerprint(
    config: Any, method: str, label: str, seed: SeedLike
) -> str:
    """Content key of one ``(method, restart)`` training trajectory."""
    return _digest(
        {
            "unit": "training-trajectory",
            "config": _canonical_config_payload(config),
            "method": method,
            "label": label,
            "seed": _encode_seed(seed),
        }
    )


def _lockstep_unit_fingerprint(
    config: Any, methods: Sequence[str], labels: Sequence[str], seeds: Sequence
) -> str:
    """Content key of a whole lock-step training panel (one work unit)."""
    return _digest(
        {
            "unit": "training-lockstep",
            "config": _canonical_config_payload(config),
            "methods": list(methods),
            "labels": list(labels),
            "seeds": [_encode_seed(s) for s in seeds],
        }
    )


@dataclass
class ExperimentPlan:
    """Executable form of a spec: resolved config, work units, fingerprints.

    Produced by :func:`plan_experiment` and consumed both by :func:`run`
    and by the serving layer (:mod:`repro.service`), which checks each
    unit's content-addressed fingerprint against its
    :class:`~repro.service.ResultStore` before paying for execution.
    """

    kind: str
    #: Resolved config (defaults instantiated, spec overrides merged).
    config: Any
    units: List[WorkUnit]
    #: Run-level checkpoint fingerprint; ``""`` when the seed is a
    #: transient generator and no checkpointing was requested.
    fingerprint: str
    #: ``unit_id ->`` grid-independent content fingerprint (the shard
    #: cache key; empty dict when the seed is not serializable).
    unit_fingerprints: Dict[str, str]
    #: Assemble the kind's outcome object from outputs in unit order.
    finalize: Callable[[List[Any]], Any]
    #: Stateful progress formatter: ``(unit, output) ->`` printable line,
    #: or ``None`` when this completion doesn't warrant one.
    progress_line: Callable[[WorkUnit, Any], Optional[str]]


def plan_experiment(
    spec: ExperimentSpec, executor: Optional[Executor] = None
) -> ExperimentPlan:
    """Resolve ``spec`` into executable work units without running them.

    ``executor`` supplies the batching/lockstep/sharding policy (and is
    instantiated from the spec when omitted).  Sweep specs are not
    unit-plannable — they are a loop of variance runs; plan each swept
    value's :class:`ExperimentSpec` instead.
    """
    if spec.kind == "sweep":
        raise ValueError(
            "sweep specs run one variance experiment per swept value and "
            "cannot be planned as a single unit list; plan each value's "
            "variance spec instead"
        )
    if executor is None:
        executor = get_executor(
            spec.resolved_executor(),
            workers=spec.workers,
            checkpoint_dir=spec.checkpoint_dir,
            retry=spec.retry,
            fault_plan=spec.fault_plan,
        )
    config = _resolve_config(spec, executor)
    # Fail fast on a missing optional namespace (torch/cupy not
    # installed): here, before any shard burns compute, with the
    # registry's actionable install hint.
    get_array_backend(config.backend)
    if spec.kind == "variance":
        return _plan_variance(spec, executor, config)
    return _plan_training(spec, executor, config)


def _maybe_fingerprint(
    spec: ExperimentSpec, executor: Executor, config: Any, plan: Any
) -> str:
    """Run fingerprint, or ``""`` for transient seeds without checkpoints."""
    try:
        return _fingerprint(spec.kind, config, spec, plan=plan)
    except ValueError:
        if executor.checkpoint_dir is not None:
            raise
        return ""


def run(
    spec: Union[ExperimentSpec, dict, str, Path], verbose: bool = False
) -> Any:
    """Execute an :class:`ExperimentSpec` (or a dict / JSON file of one).

    Returns the kind's outcome type: ``VarianceExperimentOutcome`` for
    ``variance``, ``TrainingExperimentOutcome`` for ``training``, and a
    ``{value: VarianceExperimentOutcome}`` dict for ``sweep``.
    """
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_file(spec)
    elif isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    if spec.kind == "sweep":
        return _run_sweep(spec, verbose)
    executor = get_executor(
        spec.resolved_executor(),
        workers=spec.workers,
        checkpoint_dir=spec.checkpoint_dir,
        retry=spec.retry,
        fault_plan=spec.fault_plan,
    )
    plan = plan_experiment(spec, executor)
    # Dispatch-style executors (``remote``) need the spec/plan context —
    # not just the unit list — to ship work to other processes.
    bind_remote = getattr(executor, "bind_remote", None)
    if bind_remote is not None:
        bind_remote(spec, plan)
    on_result = None
    if verbose:

        def on_result(unit, output):
            line = plan.progress_line(unit, output)
            if line:
                print(line)

    outputs = executor.map_units(
        plan.units,
        fingerprint=plan.fingerprint,
        verbose=verbose,
        on_result=on_result,
        unit_keys=plan.unit_fingerprints,
    )
    return plan.finalize(outputs)


def _apply_shots(spec: ExperimentSpec, config: Any) -> Any:
    """Merge a spec-level ``shots`` override into the kind's config."""
    if spec.shots is None:
        return config
    return replace(config, shots=spec.shots)


def _apply_noise(spec: ExperimentSpec, config: Any) -> Any:
    """Merge a spec-level ``noise`` override into the kind's config.

    The spec's ``__post_init__`` already canonicalized trivial payloads
    to ``None``, so an override here always carries real noise.
    """
    if spec.noise is None:
        return config
    return replace(config, noise=dict(spec.noise))


def _apply_backend(spec: ExperimentSpec, config: Any) -> Any:
    """Merge a spec-level ``backend`` override into the kind's config.

    Also resolves the final backend eagerly: a missing optional namespace
    (torch/cupy not installed) must fail here, before any shard burns
    compute, with the registry's actionable install hint.
    """
    if spec.backend != "numpy":
        config = replace(config, backend=spec.backend)
    get_array_backend(config.backend)
    return config


def _plan_variance(
    spec: ExperimentSpec, executor: Executor, config: Any
) -> ExperimentPlan:
    """Plan variance shards and their merge into the Fig. 5a outcome."""
    per_shard = spec.circuits_per_shard
    if per_shard is None:
        per_shard = executor.circuits_per_shard(config.num_circuits)
    fingerprint = _maybe_fingerprint(
        spec, executor, config, plan={"circuits_per_shard": per_shard}
    )
    shards = plan_variance_shards(
        config, spec.seed, circuits_per_shard=per_shard
    )
    # Look the work function up through the module so tests can inject
    # failures (and so monkeypatched fakes reach every executor).
    units = [
        WorkUnit(shard.unit_id, _variance_module.run_variance_shard, (config, shard))
        for shard in shards
    ]
    unit_fingerprints: Dict[str, str] = {}
    if fingerprint:
        unit_fingerprints = {
            shard.unit_id: _variance_unit_fingerprint(config, shard)
            for shard in shards
        }

    def finalize(outputs: List[Any]) -> Any:
        result = merge_variance_outputs(config, outputs)
        from repro.core.experiments import variance_outcome_from_result

        return variance_outcome_from_result(result)

    # Stream one progress line per qubit count, as soon as its last shard
    # completes — long grids stay observably alive.
    pending = {int(q): 0 for q in config.qubit_counts}
    for shard in shards:
        pending[shard.num_qubits] += 1
    rows: Dict[int, list] = {int(q): [] for q in config.qubit_counts}

    def progress_line(unit, output):
        num_qubits = int(output["num_qubits"])
        rows[num_qubits].append(output)
        if len(rows[num_qubits]) == pending[num_qubits]:
            return format_variance_progress(config, num_qubits, rows[num_qubits])
        return None

    return ExperimentPlan(
        kind="variance",
        config=config,
        units=units,
        fingerprint=fingerprint,
        unit_fingerprints=unit_fingerprints,
        finalize=finalize,
        progress_line=progress_line,
    )


def _plan_training(
    spec: ExperimentSpec, executor: Executor, config: Any
) -> ExperimentPlan:
    """Plan every ``(method, restart)`` trajectory as executor units.

    Trajectories are independent work units (one per pre-reserved child
    seed), so multi-restart studies shard across process pools; a
    lock-step executor instead receives one unit that advances all
    trajectories simultaneously through the batched adjoint engine.
    Either way the seed layout — and therefore every history — is
    bit-identical across executors.
    """
    from repro.core import training as _training_module

    methods = tuple(spec.methods) if spec.methods else tuple(PAPER_METHODS)
    labels, trajectory_methods = _training_module.expand_trajectories(
        methods, spec.restarts
    )
    fingerprint = _maybe_fingerprint(spec, executor, config, plan=None)
    seeds = spawn_seeds(spec.seed, len(labels))
    unit_fingerprints: Dict[str, str] = {}
    if executor.training_lockstep:
        units = [
            WorkUnit(
                "train-lockstep",
                _training_module.run_lockstep_training_unit,
                (config, tuple(trajectory_methods), tuple(labels), tuple(seeds)),
            )
        ]
        if fingerprint:
            unit_fingerprints = {
                "train-lockstep": _lockstep_unit_fingerprint(
                    config, trajectory_methods, labels, seeds
                )
            }
    else:
        units = [
            WorkUnit(
                f"train-{label}",
                _training_module.run_labelled_training_unit,
                (config, method, label, seed),
            )
            for method, label, seed in zip(trajectory_methods, labels, seeds)
        ]
        if fingerprint:
            unit_fingerprints = {
                f"train-{label}": _training_unit_fingerprint(
                    config, method, label, seed
                )
                for method, label, seed in zip(trajectory_methods, labels, seeds)
            }

    def finalize(outputs: List[Any]) -> Any:
        from repro.core.experiments import TrainingExperimentOutcome
        from repro.core.results import TrainingHistory

        payloads = outputs[0] if executor.training_lockstep else outputs
        histories = {
            label: TrainingHistory.from_dict(payload)
            for label, payload in zip(labels, payloads)
        }
        return TrainingExperimentOutcome(
            optimizer=config.optimizer, histories=histories
        )

    def progress_line(unit, output):
        payloads = output if isinstance(output, list) else [output]
        return "\n".join(
            f"[train:{config.optimizer}] {payload['method']}: "
            f"{payload['losses'][0]:.4f} -> {payload['losses'][-1]:.4f}"
            for payload in payloads
        )

    return ExperimentPlan(
        kind="training",
        config=config,
        units=units,
        fingerprint=fingerprint,
        unit_fingerprints=unit_fingerprints,
        finalize=finalize,
        progress_line=progress_line,
    )


def _run_sweep(spec: ExperimentSpec, verbose: bool) -> Dict:
    """Run one variance experiment per swept value.

    Every replaced config is validated *before* anything runs, so a bad
    swept value fails fast instead of mid-sweep after burning the earlier
    runs.  With ``paired=True`` all values consume the same child seed
    stream, isolating the effect of the swept field.
    """
    base = _apply_backend(spec, _apply_shots(spec, spec.config or VarianceConfig()))
    values = list(spec.sweep_values)
    configs = [
        replace(base, **{spec.sweep_field: value}) for value in values
    ]
    rng = ensure_rng(spec.seed)
    shared = spawn_rng(rng)
    outcomes: Dict = {}
    for index, (value, config) in enumerate(zip(values, configs)):
        child = shared if spec.paired else spawn_rng(rng)
        run_seed = child.bit_generator.seed_seq if spec.paired else child
        checkpoint_dir = None
        if spec.checkpoint_dir is not None:
            checkpoint_dir = Path(spec.checkpoint_dir) / f"value-{index:03d}"
        outcomes[value] = run(
            ExperimentSpec(
                kind="variance",
                config=config,
                seed=run_seed,
                executor=spec.executor,
                workers=spec.workers,
                checkpoint_dir=checkpoint_dir,
                circuits_per_shard=spec.circuits_per_shard,
            ),
            verbose=verbose,
        )
    return outcomes
