"""JSON persistence for experiment outcomes.

Every result dataclass in :mod:`repro.core` implements
``to_dict``/``from_dict``; this module adds the file layer with a type tag
and a ``schema_version`` so a saved result round-trips to the right class
without the caller remembering what it stored.  Files written before
versioning (no ``schema_version`` key) still load and are treated as
version 1.
"""

from __future__ import annotations

import json
import os
import threading
import time
import warnings
from pathlib import Path
from typing import Any, Dict, Optional, Type, Union

try:  # POSIX advisory locks; absent on some platforms
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

import numpy as np

from repro.core.executor import ShardCheckpoint
from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
)
from repro.core.profile import GradientProfile
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)
from repro.core.spec import ExperimentSpec
from repro.reliability.report import FailureReport

__all__ = [
    "save_result",
    "load_result",
    "FileLock",
    "RESULT_TYPES",
    "SCHEMA_VERSION",
    "NumpyJSONEncoder",
]

PathLike = Union[str, Path]

#: Version stamped into every saved payload.  Bump when the envelope (not
#: the per-type ``data``) changes shape; readers accept anything up to
#: the current version and treat missing stamps as version 1.
SCHEMA_VERSION = 2

#: Persistable result classes keyed by their tag.
RESULT_TYPES: Dict[str, Type] = {
    "GradientSamples": GradientSamples,
    "GradientProfile": GradientProfile,
    "VarianceResult": VarianceResult,
    "DecayFit": DecayFit,
    "TrainingHistory": TrainingHistory,
    "VarianceExperimentOutcome": VarianceExperimentOutcome,
    "TrainingExperimentOutcome": TrainingExperimentOutcome,
    "FullReproductionOutcome": FullReproductionOutcome,
    "ExperimentSpec": ExperimentSpec,
    "ShardCheckpoint": ShardCheckpoint,
    "FailureReport": FailureReport,
}


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


class FileLock:
    """Advisory exclusive lock for cross-process/cross-thread writers.

    Guards a critical section (e.g. a read-modify-write on a shared
    result file) against concurrent writers on the same host.  Uses
    ``fcntl.flock`` on a sidecar lock file where available (POSIX),
    falling back to an ``O_CREAT|O_EXCL`` spin lock elsewhere.  Usage::

        with FileLock(path.with_suffix(".lock")):
            ...  # exclusive across processes and threads

    Not reentrant.  ``acquire`` raises :class:`TimeoutError` after
    ``timeout`` seconds so a wedged writer cannot deadlock the caller
    forever.

    In ``flock`` mode the kernel releases the lock when the holder dies,
    so crashes cannot wedge waiters.  The O_EXCL fallback has no such
    guarantee: the lock file of a crashed holder would otherwise block
    every later writer for the full ``timeout``.  To break those, the
    fallback writes the holder's pid into the lock file and waiters
    remove lock files whose holder is provably dead (pid no longer
    exists) or — when ``stale_timeout`` is set — older than that many
    seconds.  Breaking is best-effort: two waiters racing to break the
    same dead lock can momentarily both proceed, which is the same
    guarantee the timeout path already gave.
    """

    def __init__(
        self,
        path: PathLike,
        timeout: float = 30.0,
        poll_interval: float = 0.01,
        stale_timeout: Optional[float] = None,
    ):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.poll_interval = float(poll_interval)
        self.stale_timeout = None if stale_timeout is None else float(stale_timeout)
        self._fd: Optional[int] = None
        self._exclusive_create = fcntl is None
        # flock is per file-description, not per thread: serialize threads
        # within this process through an OS-independent mutex as well.
        self._thread_lock = threading.Lock()

    def acquire(self) -> "FileLock":
        deadline = time.monotonic() + self.timeout
        if not self._thread_lock.acquire(timeout=self.timeout):
            raise TimeoutError(
                f"timed out waiting for in-process lock on {self.path}"
            )
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            while True:
                try:
                    if self._exclusive_create:
                        self._fd = os.open(
                            self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                        )
                        # Record the holder so waiters can detect a
                        # crashed one (see _break_stale_lock).
                        os.write(self._fd, str(os.getpid()).encode("ascii"))
                        return self
                    fd = os.open(self.path, os.O_CREAT | os.O_WRONLY)
                    try:
                        fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    except OSError:
                        os.close(fd)
                        raise
                    self._fd = fd
                    return self
                except OSError:
                    if self._exclusive_create and self._break_stale_lock():
                        continue
                    if time.monotonic() >= deadline:
                        raise TimeoutError(
                            f"timed out waiting for file lock {self.path}"
                        ) from None
                    time.sleep(self.poll_interval)
        except BaseException:
            self._thread_lock.release()
            raise

    def _break_stale_lock(self) -> bool:
        """Remove a fallback lock file whose holder is provably gone.

        Returns True when a lock file was broken (the caller should
        retry immediately).  A lock is stale when the pid it records no
        longer exists, or — with ``stale_timeout`` set — when the file
        is older than that threshold (covers pid reuse and lock files
        written by pre-pid versions of this class).
        """
        try:
            raw = self.path.read_text(encoding="ascii", errors="replace").strip()
        except OSError:
            return False  # holder released between our open and read
        stale = False
        if raw.isdigit():
            try:
                os.kill(int(raw), 0)
            except ProcessLookupError:
                stale = True
            except (PermissionError, OSError):
                pass  # holder alive (or unknowable): leave the lock be
        if not stale and self.stale_timeout is not None:
            try:
                age = time.time() - self.path.stat().st_mtime
            except OSError:
                return False
            stale = age >= self.stale_timeout
        if not stale:
            return False
        warnings.warn(
            f"breaking stale lock {self.path} "
            f"(holder pid {raw or 'unknown'} is gone)",
            RuntimeWarning,
            stacklevel=3,
        )
        try:
            self.path.unlink()
        except OSError:
            return False  # someone else broke or re-took it first
        return True

    def release(self) -> None:
        if self._fd is not None:
            try:
                if self._exclusive_create:  # pragma: no cover - non-POSIX
                    os.close(self._fd)
                    try:
                        os.unlink(self.path)
                    except OSError:
                        pass
                else:
                    fcntl.flock(self._fd, fcntl.LOCK_UN)
                    os.close(self._fd)
            finally:
                self._fd = None
                self._thread_lock.release()

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def save_result(
    result: Any, path: PathLike, indent: int = 2, atomic: bool = False
) -> Path:
    """Serialize a result object (any class in ``RESULT_TYPES``) to JSON.

    Returns the written path.  Parent directories are created as needed.
    With ``atomic=True`` the payload is written to a writer-unique
    temporary file and renamed into place: readers never observe a
    partially-written file, and concurrent writers of the same path
    resolve to last-writer-wins with each version intact (wrap the call
    in a :class:`FileLock` to serialize writers entirely).
    """
    type_name = type(result).__name__
    if type_name not in RESULT_TYPES:
        raise TypeError(
            f"{type_name} is not a persistable result type; "
            f"expected one of {sorted(RESULT_TYPES)}"
        )
    payload = {
        "type": type_name,
        "schema_version": SCHEMA_VERSION,
        "data": result.to_dict(),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    destination = target
    if atomic:
        # Unique per writer: two processes/threads racing on one path
        # must not interleave bytes in a shared temp file.
        destination = target.with_name(
            f"{target.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
    with destination.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
    if atomic:
        os.replace(destination, target)
    return target


def load_result(path: PathLike) -> Any:
    """Load a result previously written by :func:`save_result`.

    Raises a :class:`ValueError` naming the file and the problem for
    every malformed payload: missing type tag, unknown type, missing
    data, or a schema newer than this library understands.
    """
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{source} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValueError(f"{source} is not a repro result file (missing type tag)")
    type_name = payload["type"]
    try:
        cls = RESULT_TYPES[type_name]
    except (KeyError, TypeError):
        raise ValueError(
            f"{source} holds unknown result type {type_name!r}; "
            f"known types: {sorted(RESULT_TYPES)}"
        ) from None
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError(
            f"{source} has a malformed schema_version {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{source} was written with schema version {version}, but this "
            f"library reads up to version {SCHEMA_VERSION}; upgrade repro "
            f"to load it"
        )
    if "data" not in payload:
        raise ValueError(f"{source} is missing its data payload")
    return cls.from_dict(payload["data"])
