"""JSON persistence for experiment outcomes.

Every result dataclass in :mod:`repro.core` implements
``to_dict``/``from_dict``; this module adds the file layer with a type tag
and a ``schema_version`` so a saved result round-trips to the right class
without the caller remembering what it stored.  Files written before
versioning (no ``schema_version`` key) still load and are treated as
version 1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Type, Union

import numpy as np

from repro.core.executor import ShardCheckpoint
from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
)
from repro.core.profile import GradientProfile
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)
from repro.core.spec import ExperimentSpec

__all__ = [
    "save_result",
    "load_result",
    "RESULT_TYPES",
    "SCHEMA_VERSION",
    "NumpyJSONEncoder",
]

PathLike = Union[str, Path]

#: Version stamped into every saved payload.  Bump when the envelope (not
#: the per-type ``data``) changes shape; readers accept anything up to
#: the current version and treat missing stamps as version 1.
SCHEMA_VERSION = 2

#: Persistable result classes keyed by their tag.
RESULT_TYPES: Dict[str, Type] = {
    "GradientSamples": GradientSamples,
    "GradientProfile": GradientProfile,
    "VarianceResult": VarianceResult,
    "DecayFit": DecayFit,
    "TrainingHistory": TrainingHistory,
    "VarianceExperimentOutcome": VarianceExperimentOutcome,
    "TrainingExperimentOutcome": TrainingExperimentOutcome,
    "FullReproductionOutcome": FullReproductionOutcome,
    "ExperimentSpec": ExperimentSpec,
    "ShardCheckpoint": ShardCheckpoint,
}


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_result(result: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialize a result object (any class in ``RESULT_TYPES``) to JSON.

    Returns the written path.  Parent directories are created as needed.
    """
    type_name = type(result).__name__
    if type_name not in RESULT_TYPES:
        raise TypeError(
            f"{type_name} is not a persistable result type; "
            f"expected one of {sorted(RESULT_TYPES)}"
        )
    payload = {
        "type": type_name,
        "schema_version": SCHEMA_VERSION,
        "data": result.to_dict(),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
    return target


def load_result(path: PathLike) -> Any:
    """Load a result previously written by :func:`save_result`.

    Raises a :class:`ValueError` naming the file and the problem for
    every malformed payload: missing type tag, unknown type, missing
    data, or a schema newer than this library understands.
    """
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ValueError(f"{source} is not valid JSON: {error}") from None
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValueError(f"{source} is not a repro result file (missing type tag)")
    type_name = payload["type"]
    try:
        cls = RESULT_TYPES[type_name]
    except (KeyError, TypeError):
        raise ValueError(
            f"{source} holds unknown result type {type_name!r}; "
            f"known types: {sorted(RESULT_TYPES)}"
        ) from None
    version = payload.get("schema_version", 1)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ValueError(
            f"{source} has a malformed schema_version {version!r}"
        )
    if version > SCHEMA_VERSION:
        raise ValueError(
            f"{source} was written with schema version {version}, but this "
            f"library reads up to version {SCHEMA_VERSION}; upgrade repro "
            f"to load it"
        )
    if "data" not in payload:
        raise ValueError(f"{source} is missing its data payload")
    return cls.from_dict(payload["data"])
