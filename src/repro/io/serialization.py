"""JSON persistence for experiment outcomes.

Every result dataclass in :mod:`repro.core` implements
``to_dict``/``from_dict``; this module adds the file layer with a type tag
so a saved result round-trips to the right class without the caller
remembering what it stored.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Type, Union

import numpy as np

from repro.core.experiments import (
    FullReproductionOutcome,
    TrainingExperimentOutcome,
    VarianceExperimentOutcome,
)
from repro.core.profile import GradientProfile
from repro.core.results import (
    DecayFit,
    GradientSamples,
    TrainingHistory,
    VarianceResult,
)

__all__ = ["save_result", "load_result", "RESULT_TYPES", "NumpyJSONEncoder"]

PathLike = Union[str, Path]

#: Persistable result classes keyed by their tag.
RESULT_TYPES: Dict[str, Type] = {
    "GradientSamples": GradientSamples,
    "GradientProfile": GradientProfile,
    "VarianceResult": VarianceResult,
    "DecayFit": DecayFit,
    "TrainingHistory": TrainingHistory,
    "VarianceExperimentOutcome": VarianceExperimentOutcome,
    "TrainingExperimentOutcome": TrainingExperimentOutcome,
    "FullReproductionOutcome": FullReproductionOutcome,
}


class NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj: Any) -> Any:
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.bool_):
            return bool(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_result(result: Any, path: PathLike, indent: int = 2) -> Path:
    """Serialize a result object (any class in ``RESULT_TYPES``) to JSON.

    Returns the written path.  Parent directories are created as needed.
    """
    type_name = type(result).__name__
    if type_name not in RESULT_TYPES:
        raise TypeError(
            f"{type_name} is not a persistable result type; "
            f"expected one of {sorted(RESULT_TYPES)}"
        )
    payload = {"type": type_name, "data": result.to_dict()}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=indent, cls=NumpyJSONEncoder)
    return target


def load_result(path: PathLike) -> Any:
    """Load a result previously written by :func:`save_result`."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValueError(f"{source} is not a repro result file (missing type tag)")
    type_name = payload["type"]
    try:
        cls = RESULT_TYPES[type_name]
    except KeyError:
        raise ValueError(
            f"{source} holds unknown result type {type_name!r}"
        ) from None
    return cls.from_dict(payload["data"])
