"""JSON persistence for experiment results."""

from repro.io.serialization import (
    RESULT_TYPES,
    NumpyJSONEncoder,
    load_result,
    save_result,
)

__all__ = ["NumpyJSONEncoder", "RESULT_TYPES", "load_result", "save_result"]
