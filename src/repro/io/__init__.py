"""JSON persistence for experiment results."""

from repro.io.serialization import (
    RESULT_TYPES,
    SCHEMA_VERSION,
    FileLock,
    NumpyJSONEncoder,
    load_result,
    save_result,
)

__all__ = [
    "FileLock",
    "NumpyJSONEncoder",
    "RESULT_TYPES",
    "SCHEMA_VERSION",
    "load_result",
    "save_result",
]
