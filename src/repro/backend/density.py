"""Exact density-matrix simulation.

The trajectory simulator (:mod:`repro.backend.noise`) estimates noisy
expectation values by Monte-Carlo sampling; this module computes them
*exactly* by evolving the full density matrix ``rho`` through unitaries
(``U rho U^dag``) and Kraus channels (``sum_k K rho K^dag``).  Memory is
``4**n`` so it suits the small widths used for noise ablations, and it
provides the ground truth the trajectory sampler converges to (verified in
tests).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.noise import KrausChannel, NoiseModel
from repro.backend.observables import Observable
from repro.backend.statevector import Statevector

__all__ = ["DensityMatrix", "DensityMatrixSimulator"]


class DensityMatrix:
    """A mixed state ``rho`` on ``num_qubits`` qubits."""

    __slots__ = ("data", "num_qubits")

    def __init__(self, data: np.ndarray, validate: bool = True):
        array = np.asarray(data, dtype=complex)
        dim = array.shape[0] if array.ndim else 0
        # dim < 2 also rejects the 1x1 boundary: dim == 1 passes the
        # power-of-two test but would describe a zero-qubit state.
        if array.shape != (dim, dim) or dim & (dim - 1) or dim < 2:
            raise ValueError(
                f"density matrix must be square power-of-2 with at least "
                f"one qubit, got shape {array.shape}"
            )
        self.data = array
        self.num_qubits = int(dim).bit_length() - 1
        if validate:
            if not np.isclose(np.trace(array).real, 1.0, atol=1e-8):
                raise ValueError(
                    f"density matrix must have unit trace, got {np.trace(array)}"
                )
            if not np.allclose(array, array.conj().T, atol=1e-8):
                raise ValueError("density matrix must be Hermitian")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zero_state(cls, num_qubits: int) -> "DensityMatrix":
        """``|0...0><0...0|``."""
        dim = 2**num_qubits
        data = np.zeros((dim, dim), dtype=complex)
        data[0, 0] = 1.0
        return cls(data, validate=False)

    @classmethod
    def from_statevector(cls, state: Statevector) -> "DensityMatrix":
        """Pure-state density matrix ``|psi><psi|``."""
        return cls(np.outer(state.data, state.data.conj()), validate=False)

    @classmethod
    def maximally_mixed(cls, num_qubits: int) -> "DensityMatrix":
        """``I / 2**n``."""
        dim = 2**num_qubits
        return cls(np.eye(dim, dtype=complex) / dim, validate=False)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def trace(self) -> float:
        """``Tr(rho)`` (1 for a valid state)."""
        return float(np.trace(self.data).real)

    def purity(self) -> float:
        """``Tr(rho^2)``: 1 for pure states, ``1/2**n`` when maximally mixed."""
        return float(np.trace(self.data @ self.data).real)

    def expectation(self, observable: Observable) -> float:
        """``Tr(rho O)``."""
        if observable.num_qubits != self.num_qubits:
            raise ValueError(
                f"observable acts on {observable.num_qubits} qubits, state has "
                f"{self.num_qubits}"
            )
        # Apply O columnwise via the observable's fast ``apply``:
        # (O rho)_{ij} = sum_k O_{ik} rho_{kj}, i.e. O applied to each column.
        applied = np.column_stack(
            [observable.apply(self.data[:, j]) for j in range(self.data.shape[0])]
        )
        return float(np.trace(applied).real)

    def probabilities(self) -> np.ndarray:
        """Computational-basis outcome distribution (the diagonal)."""
        return np.clip(np.real(np.diagonal(self.data)), 0.0, None)

    def fidelity_with_pure(self, state: Statevector) -> float:
        """``<psi| rho |psi>`` for a pure reference state."""
        if state.num_qubits != self.num_qubits:
            raise ValueError("qubit-count mismatch")
        return float(np.real(state.data.conj() @ self.data @ state.data))

    # ------------------------------------------------------------------
    # evolution primitives
    # ------------------------------------------------------------------
    def _embed(self, matrix: np.ndarray, qubits: Sequence[int]) -> np.ndarray:
        """Dense embedding of a k-qubit operator (small n only)."""
        n = self.num_qubits
        k = len(qubits)
        perm = list(qubits) + [q for q in range(n) if q not in set(qubits)]
        full = np.kron(matrix, np.eye(2 ** (n - k)))
        # In the kron basis, row/column axis i carries wire perm[i]; move
        # each onto its wire position to restore wire ordering.
        tensor = full.reshape((2,) * (2 * n))
        tensor = np.moveaxis(tensor, range(n), perm)
        tensor = np.moveaxis(tensor, range(n, 2 * n), [n + p for p in perm])
        return tensor.reshape(2**n, 2**n)

    def apply_unitary(
        self, matrix: np.ndarray, qubits: Sequence[int]
    ) -> "DensityMatrix":
        """``U rho U^dag`` on the targeted qubits."""
        full = self._embed(matrix, qubits)
        return DensityMatrix(full @ self.data @ full.conj().T, validate=False)

    def apply_channel(
        self, channel: KrausChannel, qubits: Sequence[int]
    ) -> "DensityMatrix":
        """``sum_k K rho K^dag`` on the targeted qubits."""
        out = np.zeros_like(self.data)
        for kraus in channel.kraus_operators:
            full = self._embed(kraus, qubits)
            out += full @ self.data @ full.conj().T
        return DensityMatrix(out, validate=False)


class DensityMatrixSimulator:
    """Exact noisy simulation of circuits under a :class:`NoiseModel`."""

    def __init__(self, noise_model: Optional[NoiseModel] = None):
        self.noise_model = noise_model or NoiseModel()

    def run(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state: Optional[DensityMatrix] = None,
    ) -> DensityMatrix:
        """Evolve ``|0...0><0...0|`` (or ``initial_state``) through the
        circuit, applying the noise model's channel after every gate."""
        if params is None:
            if circuit.num_parameters:
                raise ValueError(
                    f"circuit has {circuit.num_parameters} trainable "
                    "parameters but none were supplied"
                )
            param_array = None
        else:
            param_array = np.asarray(params, dtype=float).reshape(-1)
            if param_array.size != circuit.num_parameters:
                raise ValueError(
                    f"expected {circuit.num_parameters} parameters, "
                    f"got {param_array.size}"
                )
        rho = initial_state or DensityMatrix.zero_state(circuit.num_qubits)
        if rho.num_qubits != circuit.num_qubits:
            raise ValueError("initial state size mismatch")
        for op in circuit.operations:
            rho = rho.apply_unitary(op.matrix(param_array), op.qubits)
            channel = self.noise_model.channel_for(op.gate.name)
            if channel is None or channel.is_trivial:
                continue
            for qubit in op.qubits:
                rho = rho.apply_channel(channel, [qubit])
        return rho

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: Observable,
        params: Optional[Sequence[float]] = None,
    ) -> float:
        """Exact noisy ``<O>``."""
        return self.run(circuit, params).expectation(observable)
