"""Gradient engines for parameterized circuits.

Three interchangeable engines compute ``d <O> / d params``:

``parameter_shift``
    The exact hardware-compatible rule.  For gates ``exp(-i theta P / 2)``
    with ``P^2 = I`` it is the classic two-term form
    ``dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2``; controlled
    rotations use the exact four-term rule.  Each gate carries its own
    rule (``ParametricGate.shift_terms``), so the cost is two (or four)
    circuit executions per differentiated parameter — the natural choice
    for the paper's variance analysis, which differentiates only the last
    parameter.

``adjoint_gradient``
    Reverse-mode differentiation through the statevector (Jones & Gacon,
    2020).  One forward pass plus one backward sweep gives the *full*
    gradient in ``O(#gates)`` — the engine used for training.

``finite_difference``
    Numerical fallback that works for any gate; used mainly to cross-check
    the exact engines in tests.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.gates import ParametricGate
from repro.backend.observables import Observable
from repro.backend.simulator import StatevectorSimulator
from repro.backend.statevector import Statevector, apply_matrix

__all__ = [
    "parameter_shift",
    "finite_difference",
    "adjoint_gradient",
    "get_gradient_fn",
    "GRADIENT_ENGINES",
]

GradientFn = Callable[..., np.ndarray]


def _resolve_indices(
    circuit: QuantumCircuit, param_indices: Optional[Sequence[int]]
) -> Sequence[int]:
    if param_indices is None:
        return range(circuit.num_parameters)
    indices = [int(i) for i in param_indices]
    for index in indices:
        if not 0 <= index < circuit.num_parameters:
            raise IndexError(
                f"parameter index {index} out of range "
                f"(circuit has {circuit.num_parameters})"
            )
    return indices


def parameter_shift(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> np.ndarray:
    """Gradient via each gate's exact parameter-shift rule.

    Parameters
    ----------
    circuit, observable, params:
        The expectation function being differentiated.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).  The result
        always has one entry per requested index, in order.
    initial_state:
        Optional non-default input state.
    shots, seed:
        When ``shots`` is given, every shifted expectation is estimated
        from that many measurement samples — the hardware-realistic
        stochastic gradient (the rule itself stays unbiased).

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule at all; use
        ``adjoint_gradient`` or ``finite_difference`` for such gates.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    position_of = circuit.parameter_map()
    if shots is not None:
        # One generator consumed across all shifted evaluations keeps the
        # per-evaluation samples independent.
        from repro.utils.rng import ensure_rng

        seed = ensure_rng(seed)

    grads = np.empty(len(indices), dtype=float)
    for out_slot, index in enumerate(indices):
        op = circuit.operations[position_of[index]]
        gate = op.gate
        assert isinstance(gate, ParametricGate)
        if gate.shift_terms is None:
            raise ValueError(
                f"gate {gate.name} has no exact parameter-shift rule; "
                "use the adjoint or finite-difference engine"
            )
        total = 0.0
        shifted = params.copy()
        for coefficient, shift in gate.shift_terms:
            shifted[index] = params[index] + shift
            total += coefficient * simulator.expectation(
                circuit,
                observable,
                shifted,
                initial_state=initial_state,
                shots=shots,
                seed=seed,
            )
        grads[out_slot] = total
    return grads


def finite_difference(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    step: float = 1e-6,
    scheme: str = "central",
) -> np.ndarray:
    """Numerical gradient (``central`` or ``forward`` differences)."""
    if scheme not in ("central", "forward"):
        raise ValueError(f"scheme must be 'central' or 'forward', got {scheme!r}")
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)

    base = None
    if scheme == "forward":
        base = simulator.expectation(
            circuit, observable, params, initial_state=initial_state
        )
    grads = np.empty(len(indices), dtype=float)
    for out_slot, index in enumerate(indices):
        shifted = params.copy()
        shifted[index] = params[index] + step
        plus = simulator.expectation(
            circuit, observable, shifted, initial_state=initial_state
        )
        if scheme == "central":
            shifted[index] = params[index] - step
            minus = simulator.expectation(
                circuit, observable, shifted, initial_state=initial_state
            )
            grads[out_slot] = (plus - minus) / (2.0 * step)
        else:
            grads[out_slot] = (plus - base) / step
    return grads


def adjoint_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> np.ndarray:
    """Full gradient via reverse-mode (adjoint) statevector differentiation.

    Runs the circuit forward once, then sweeps backwards undoing each gate:
    for every trainable operation ``U_k(theta_k)`` the partial derivative is
    ``2 * Re( <lambda| dU_k/dtheta |psi_k> )`` where ``|psi_k>`` is the state
    *before* the gate and ``<lambda|`` carries the observable back through
    the tail of the circuit.  Exact for any gate exposing ``derivative``.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    wanted = set(indices)
    num_qubits = circuit.num_qubits

    # Forward pass.
    final_state = simulator.run(circuit, params, initial_state)
    psi = final_state.data.copy()
    lam = observable.apply(psi)

    grads_by_index = {}
    for op in reversed(circuit.operations):
        matrix = op.matrix(params)
        adjoint = matrix.conj().T
        # Undo this gate: |psi_k> (state before the gate).
        psi = apply_matrix(psi, adjoint, op.qubits, num_qubits)
        if op.is_trainable and op.param_index in wanted:
            gate = op.gate
            assert isinstance(gate, ParametricGate)
            d_matrix = gate.derivative(float(params[op.param_index]))
            d_psi = apply_matrix(psi, d_matrix, op.qubits, num_qubits)
            grads_by_index[op.param_index] = 2.0 * float(
                np.real(np.vdot(lam, d_psi))
            )
        lam = apply_matrix(lam, adjoint, op.qubits, num_qubits)

    return np.array([grads_by_index.get(i, 0.0) for i in indices], dtype=float)


#: Named registry of gradient engines.
GRADIENT_ENGINES = {
    "parameter_shift": parameter_shift,
    "adjoint": adjoint_gradient,
    "finite_difference": finite_difference,
}


def get_gradient_fn(name: str) -> GradientFn:
    """Look up a gradient engine by name.

    Valid names: ``parameter_shift``, ``adjoint``, ``finite_difference``.
    """
    try:
        return GRADIENT_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown gradient engine {name!r}; "
            f"choose from {sorted(GRADIENT_ENGINES)}"
        ) from None
