"""Gradient engines for parameterized circuits.

Three interchangeable engines compute ``d <O> / d params``:

``parameter_shift``
    The exact hardware-compatible rule.  For gates ``exp(-i theta P / 2)``
    with ``P^2 = I`` it is the classic two-term form
    ``dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2``; controlled
    rotations use the exact four-term rule.  Each gate carries its own
    rule (``ParametricGate.shift_terms``), so the cost is two (or four)
    circuit executions per differentiated parameter — the natural choice
    for the paper's variance analysis, which differentiates only the last
    parameter.

``adjoint_gradient``
    Reverse-mode differentiation through the statevector (Jones & Gacon,
    2020).  One forward pass plus one backward sweep gives the *full*
    gradient in ``O(#gates)`` — the engine used for training.  Fixed and
    bound-parameter gate adjoints are cached on the circuit
    (:meth:`QuantumCircuit.static_matrices`), so repeated sweeps — one per
    training iteration — rebuild only the trainable matrices.

``batch_adjoint``
    The adjoint sweep over a ``(B, 2**n)`` statevector stack: one
    :meth:`StatevectorSimulator.run_batch` forward pass, then a single
    backward sweep applying per-row adjoint/derivative stacks
    (:meth:`ParametricGate.matrix_batch` / ``derivative_batch``) through
    the broadcasting kernels.  Row ``b`` is bit-identical to
    ``adjoint_gradient(..., params[b])``; throughput is what changes —
    this engine powers lock-step multi-trajectory training.
    :func:`adjoint_value_and_gradient` / :func:`batch_adjoint_value_and_gradient`
    additionally return the expectation read off the same forward pass, so
    training loops get loss and full gradient from one execution.

``finite_difference``
    Numerical fallback that works for any gate; used mainly to cross-check
    the exact engines in tests.

``batch_parameter_shift``
    The same exact shift rule as ``parameter_shift``, but every shifted
    parameter vector — all shift terms of all requested parameters, for
    one or many base parameter vectors — is folded into a single
    :meth:`StatevectorSimulator.expectation_batch` call.  Results are
    bit-identical to the sequential rule; throughput is what changes
    (this engine powers the variance experiment's batched mode).  With
    ``shots=`` every shifted expectation is sample-estimated instead:
    one batched execution plus row-wise draws, each base row consuming
    its own spawned child stream exactly as the sequential
    ``parameter_shift(..., shots=, seed=<child>)`` would — so batched
    sampled gradients stay bit-identical to per-row sequential sampling.
    :func:`batch_parameter_shift_value_and_gradient` additionally reads
    per-row losses off the same folded execution, the workhorse of
    lock-step shot-based training.

``megabatch_parameter_shift`` / ``megabatch_adjoint_gradient``
    The mega-batched forms: rather than many rows of *one* circuit, they
    fold rows of a whole shape bucket of circuits (same wires and
    parameter slots, different drawn gates — see
    :class:`repro.backend.simulator.MegaBatchPlan`) into single stacked
    sweeps, pushing the effective batch size into the hundreds.  Each
    circuit's rows remain bit-identical to its own
    ``batch_parameter_shift`` / ``batch_adjoint`` call; these power the
    variance experiment's shape-keyed fold.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.gates import ParametricGate
from repro.backend.observables import Observable
from repro.backend.simulator import MegaBatchPlan, StatevectorSimulator
from repro.backend.statevector import Statevector, apply_matrix
from repro.utils.array_api import FLOAT_DTYPE

__all__ = [
    "parameter_shift",
    "batch_parameter_shift",
    "batch_parameter_shift_value_and_gradient",
    "megabatch_parameter_shift",
    "finite_difference",
    "adjoint_gradient",
    "adjoint_value_and_gradient",
    "batch_adjoint_gradient",
    "batch_adjoint_value_and_gradient",
    "megabatch_adjoint_gradient",
    "get_gradient_fn",
    "GRADIENT_ENGINES",
]

GradientFn = Callable[..., np.ndarray]


def _resolve_indices(
    circuit: QuantumCircuit, param_indices: Optional[Sequence[int]]
) -> Sequence[int]:
    if param_indices is None:
        return range(circuit.num_parameters)
    indices = [int(i) for i in param_indices]
    for index in indices:
        if not 0 <= index < circuit.num_parameters:
            raise IndexError(
                f"parameter index {index} out of range "
                f"(circuit has {circuit.num_parameters})"
            )
    return indices


def _resolve_shift_rules(
    circuit: QuantumCircuit, indices: Sequence[int]
) -> "list[Tuple[Tuple[float, float], ...]]":
    """Shift terms for each differentiated parameter, in index order.

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule at all; use
        ``adjoint_gradient`` or ``finite_difference`` for such gates.
    """
    position_of = circuit.parameter_map()
    rules = []
    for index in indices:
        gate = circuit.operations[position_of[index]].gate
        assert isinstance(gate, ParametricGate)
        if gate.shift_terms is None:
            raise ValueError(
                f"gate {gate.name} has no exact parameter-shift rule; "
                "use the adjoint or finite-difference engine"
            )
        rules.append(gate.shift_terms)
    return rules


def parameter_shift(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> np.ndarray:
    """Gradient via each gate's exact parameter-shift rule.

    Parameters
    ----------
    circuit, observable, params:
        The expectation function being differentiated.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).  The result
        always has one entry per requested index, in order.
    initial_state:
        Optional non-default input state.
    shots, seed:
        When ``shots`` is given, every shifted expectation is estimated
        from that many measurement samples — the hardware-realistic
        stochastic gradient (the rule itself stays unbiased).

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule at all; use
        ``adjoint_gradient`` or ``finite_difference`` for such gates.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=FLOAT_DTYPE).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    if shots is not None:
        # One generator consumed across all shifted evaluations keeps the
        # per-evaluation samples independent.
        from repro.utils.rng import ensure_rng

        seed = ensure_rng(seed)

    grads = np.empty(len(indices), dtype=FLOAT_DTYPE)
    for out_slot, (index, terms) in enumerate(zip(indices, rules)):
        total = 0.0
        shifted = params.copy()
        for coefficient, shift in terms:
            shifted[index] = params[index] + shift
            total += coefficient * simulator.expectation(
                circuit,
                observable,
                shifted,
                initial_state=initial_state,
                shots=shots,
                seed=seed,
            )
        grads[out_slot] = total
    return grads


def _fold_shifted_rows(
    row: np.ndarray,
    indices: Sequence[int],
    rules: Sequence[Tuple[Tuple[float, float], ...]],
    folded: "list[np.ndarray]",
) -> None:
    """Append one base row's shifted vectors to ``folded``, rule order.

    The single definition of the (parameter, term) fold order shared by
    the batched and mega-batched shift engines — their bit-identity
    contract depends on walking shifts exactly like the sequential rule.
    """
    for slot, index in enumerate(indices):
        for _, shift in rules[slot]:
            shifted = row.copy()
            shifted[index] = row[index] + shift
            folded.append(shifted)


def _recombine_shift_row(
    estimates: np.ndarray,
    cursor: int,
    rules: Sequence[Tuple[Tuple[float, float], ...]],
    out: np.ndarray,
) -> int:
    """Fill one base row's gradients from ``estimates[cursor:]``.

    Accumulates each parameter's terms in rule order (the sequential
    engine's summation order) into ``out`` and returns the advanced
    cursor; shared by the batched and mega-batched shift engines.
    """
    for slot in range(len(rules)):
        total = 0.0
        for coefficient, _ in rules[slot]:
            total += coefficient * estimates[cursor]
            cursor += 1
        out[slot] = total
    return cursor


def _batch_shift_execute(
    circuit: QuantumCircuit,
    observable: Observable,
    batch: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    rules: Sequence[Tuple[Tuple[float, float], ...]],
    initial_state: Optional[Statevector],
    shots: Optional[int],
    seed,
    include_values: bool,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Folded shift-rule execution shared by the batched engines.

    Builds one execution batch holding, per base row, an optional
    unshifted evaluation (``include_values``) followed by every shifted
    vector the rules require, in the same (parameter, term) order the
    sequential engine walks.  Analytic mode evaluates it through
    ``expectation_batch``; sampled mode runs one batched execution and
    draws row-wise, each base row's evaluations sharing that row's child
    generator in sequential-consumption order — the bit-identity contract
    with ``parameter_shift(..., shots=, seed=<child>)``.
    """
    evals_per_row = (1 if include_values else 0) + sum(
        len(terms) for terms in rules
    )
    folded = []
    for row in batch:
        if include_values:
            folded.append(row.copy())
        _fold_shifted_rows(row, indices, rules, folded)
    if shots is None:
        estimates = simulator.expectation_batch(
            circuit, observable, np.stack(folded), initial_state=initial_state
        )
    else:
        from repro.utils.rng import resolve_rngs

        row_rngs = resolve_rngs(seed, batch.shape[0])
        states = simulator.run_batch(
            circuit, np.stack(folded), initial_state=initial_state
        )
        # Every evaluation of base row b consumes rng b; the row-major
        # draw order inside sampled_expectation_rows then matches the
        # sequential engine's stream consumption exactly.
        folded_rngs = [
            rng for rng in row_rngs for _ in range(evals_per_row)
        ]
        estimates = simulator.sampled_expectation_rows(
            states, observable, shots, folded_rngs
        )

    values = np.empty(batch.shape[0], dtype=FLOAT_DTYPE) if include_values else None
    grads = np.empty((batch.shape[0], len(indices)), dtype=FLOAT_DTYPE)
    cursor = 0
    for b in range(batch.shape[0]):
        if include_values:
            values[b] = estimates[cursor]
            cursor += 1
        cursor = _recombine_shift_row(estimates, cursor, rules, grads[b])
    return values, grads


def batch_parameter_shift(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> np.ndarray:
    """Parameter-shift gradients from one batched execution.

    Builds every shifted parameter vector the shift rules require — all
    terms of all requested parameters, for every row of ``params`` — and
    evaluates them in a single batched execution, then recombines the
    expectations with the rules' coefficients in the same accumulation
    order as :func:`parameter_shift`, so the result is bit-identical to
    the sequential engine.

    Parameters
    ----------
    circuit, observable:
        The expectation function being differentiated.
    params:
        Either one parameter vector (shape ``(P,)``) or a stack of ``B``
        vectors (shape ``(B, P)``) sharing the circuit — e.g. one draw per
        initialization method in the variance experiment.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).
    initial_state:
        Optional non-default input state shared by every row.
    shots:
        When given, every shifted expectation is estimated from that many
        measurement samples (hardware-realistic stochastic gradients).
    seed:
        Sampled mode only: a sequence of ``B`` per-row seeds/generators
        or a single :data:`~repro.utils.rng.SeedLike` spawning ``B``
        children — row ``b``'s evaluations share generator ``b``, making
        the row bit-identical to
        ``parameter_shift(..., shots=shots, seed=<row b's seed>)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(param_indices),)`` for 1-D ``params``, else
        ``(B, len(param_indices))``.

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule.
    """
    simulator = simulator or StatevectorSimulator()
    array = np.asarray(params, dtype=FLOAT_DTYPE)
    if array.ndim not in (1, 2):
        raise ValueError(
            f"params must be 1-D or 2-D (batch, num_parameters), "
            f"got shape {array.shape}"
        )
    single = array.ndim == 1
    batch = array.reshape(1, -1) if single else array
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    if not indices:
        empty = np.empty((batch.shape[0], 0), dtype=FLOAT_DTYPE)
        return empty[0] if single else empty
    _, grads = _batch_shift_execute(
        circuit, observable, batch, simulator, indices, rules,
        initial_state, shots, seed, include_values=False,
    )
    return grads[0] if single else grads


def batch_parameter_shift_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(<O> per row, shift-rule gradients)`` from one folded execution.

    The shift-engine counterpart of
    :func:`batch_adjoint_value_and_gradient`: each base row's unshifted
    evaluation is folded into the same execution batch as its shifted
    vectors.  In sampled mode (``shots=``) row ``b`` consumes its child
    generator value-first then shift terms — exactly the order
    ``ObservableCost.value_and_gradient(..., shots=, seed=<child>)``
    consumes it sequentially — so lock-step shot-based training is
    bit-identical to per-trajectory training given the same spawned
    child seeds.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``((B,), (B, len(indices)))`` for 2-D ``params``; 1-D input
        returns ``(float, (len(indices),))``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    values, grads = _batch_shift_execute(
        circuit, observable, batch, simulator, indices, rules,
        initial_state, shots, seed, include_values=True,
    )
    if single:
        return float(values[0]), grads[0]
    return values, grads


def _coerce_mega_batches(
    circuits: Sequence[QuantumCircuit],
    params_batches: Sequence[Sequence[float]],
) -> "list[np.ndarray]":
    """Normalize per-circuit parameter stacks to ``(M_s, P)`` arrays."""
    if len(circuits) != len(params_batches):
        raise ValueError(
            f"got {len(params_batches)} parameter stacks for "
            f"{len(circuits)} circuits"
        )
    batches = []
    for circuit, params in zip(circuits, params_batches):
        array = np.asarray(params, dtype=FLOAT_DTYPE)
        if array.ndim == 1:
            array = array.reshape(1, -1)
        if array.ndim != 2 or array.shape[1] != circuit.num_parameters:
            raise ValueError(
                f"each parameter stack must be (rows, "
                f"{circuit.num_parameters}), got shape {array.shape}"
            )
        batches.append(array)
    return batches


def megabatch_parameter_shift(
    circuits: Sequence[QuantumCircuit],
    observable: Observable,
    params_batches: Sequence[Sequence[float]],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
    plan: Optional[MegaBatchPlan] = None,
) -> "list[np.ndarray]":
    """Shift-rule gradients for a whole shape bucket in one execution.

    The mega-batched form of :func:`batch_parameter_shift`: every shifted
    parameter vector of every circuit in the bucket — all shift terms of
    all requested parameters, for every base row of every circuit — is
    folded into a single :meth:`StatevectorSimulator.run_megabatch`
    execution with the effective batch size ``sum_s M_s * terms``.
    Circuit ``s``'s block is recombined with *its own* shift rules (the
    probed gate, and therefore the rule, may differ per circuit) in the
    same accumulation order as the per-circuit engine, so entry ``s`` is
    bit-identical to ``batch_parameter_shift(circuits[s], observable,
    params_batches[s], ...)``.

    Parameters
    ----------
    circuits:
        Circuits sharing a gate-sequence shape (one
        :class:`~repro.backend.simulator.MegaBatchPlan` bucket).
    observable:
        The measured operator, shared by every circuit.
    params_batches:
        One ``(M_s, P)`` parameter stack per circuit (1-D vectors are
        treated as single rows).
    simulator, param_indices, initial_state, shots:
        As in :func:`batch_parameter_shift`; ``param_indices`` applies to
        every circuit (they share the parameter layout).
    seed:
        Sampled mode only: a sequence of per-base-row seeds/generators —
        circuits in order, then rows within each circuit, ``sum_s M_s``
        in total — or a single :data:`~repro.utils.rng.SeedLike` from
        which that many children are spawned.  Base row ``m`` of circuit
        ``s`` consumes its generator exactly as
        ``batch_parameter_shift(circuits[s], ..., seed=<that row's
        seed>)`` would.
    plan:
        Pre-built :class:`~repro.backend.simulator.MegaBatchPlan` for
        ``circuits`` (built here when omitted).

    Returns
    -------
    list of numpy.ndarray
        One ``(M_s, len(param_indices))`` gradient block per circuit.
    """
    simulator = simulator or StatevectorSimulator()
    batches = _coerce_mega_batches(circuits, params_batches)
    plan = plan or MegaBatchPlan(circuits)
    indices = _resolve_indices(plan.template, param_indices)
    if not indices:
        return [np.empty((batch.shape[0], 0), dtype=FLOAT_DTYPE) for batch in batches]
    rules_per_circuit = [
        _resolve_shift_rules(circuit, indices) for circuit in circuits
    ]

    folded: "list[np.ndarray]" = []
    row_circuits: "list[int]" = []
    base_of: "list[int]" = []  # folded row -> global base-row index
    base = 0
    for s, (batch, rules) in enumerate(zip(batches, rules_per_circuit)):
        for row in batch:
            before = len(folded)
            _fold_shifted_rows(row, indices, rules, folded)
            row_circuits.extend([s] * (len(folded) - before))
            base_of.extend([base] * (len(folded) - before))
            base += 1
    folded_params = np.stack(folded)
    folded_circuits = np.asarray(row_circuits)

    # Shared-prefix evaluation: every shifted vector of a base row agrees
    # with it on all parameters before the first differentiated one, so
    # the circuit prefix up to that operation runs once per *base* row
    # and the folded rows branch off its states — bit-identical to
    # running each folded row from scratch (copying amplitudes is exact),
    # at roughly half the work when the probed parameter sits late in the
    # circuit (the variance experiment probes the last one).
    position_of = plan.template.parameter_map()
    first_pos = min(position_of[index] for index in indices)
    if first_pos > 0:
        base_batch = np.concatenate(batches, axis=0)
        base_circuits = np.concatenate(
            [
                np.full(batch.shape[0], s, dtype=np.intp)
                for s, batch in enumerate(batches)
            ]
        )
        # Prefix states stay resident on the simulator's backend: the
        # folded rows branch off them via an on-namespace row gather, so
        # the whole shared-prefix evaluation crosses the host boundary
        # only at the final expectation / sampling stage.
        prefix_states = simulator._run_megabatch_data(
            plan, base_batch, base_circuits, initial_state, stop=first_pos
        )
        states = simulator._run_megabatch_data(
            plan,
            folded_params,
            folded_circuits,
            simulator.backend.take_rows(prefix_states, np.asarray(base_of)),
            start=first_pos,
        )
    else:
        states = simulator._run_megabatch_data(
            plan, folded_params, folded_circuits, initial_state
        )
    if shots is None:
        estimates = observable.expectation_batch(states)
    else:
        from repro.utils.rng import resolve_rngs

        base_rows = sum(batch.shape[0] for batch in batches)
        row_rngs = resolve_rngs(seed, base_rows)
        # Every folded evaluation of a base row consumes that row's
        # generator; the row-major draw order inside
        # sampled_expectation_rows then matches the per-circuit engine's
        # stream consumption exactly.
        folded_rngs = []
        cursor = 0
        for batch, rules in zip(batches, rules_per_circuit):
            evals_per_row = sum(len(terms) for terms in rules)
            for _ in range(batch.shape[0]):
                folded_rngs.extend([row_rngs[cursor]] * evals_per_row)
                cursor += 1
        estimates = simulator.sampled_expectation_rows(
            states, observable, shots, folded_rngs
        )

    outputs: "list[np.ndarray]" = []
    cursor = 0
    for batch, rules in zip(batches, rules_per_circuit):
        grads = np.empty((batch.shape[0], len(indices)), dtype=FLOAT_DTYPE)
        for m in range(batch.shape[0]):
            cursor = _recombine_shift_row(estimates, cursor, rules, grads[m])
        outputs.append(grads)
    return outputs


def finite_difference(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    step: float = 1e-6,
    scheme: str = "central",
) -> np.ndarray:
    """Numerical gradient (``central`` or ``forward`` differences)."""
    if scheme not in ("central", "forward"):
        raise ValueError(f"scheme must be 'central' or 'forward', got {scheme!r}")
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=FLOAT_DTYPE).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)

    base = None
    if scheme == "forward":
        base = simulator.expectation(
            circuit, observable, params, initial_state=initial_state
        )
    grads = np.empty(len(indices), dtype=FLOAT_DTYPE)
    for out_slot, index in enumerate(indices):
        shifted = params.copy()
        shifted[index] = params[index] + step
        plus = simulator.expectation(
            circuit, observable, shifted, initial_state=initial_state
        )
        if scheme == "central":
            shifted[index] = params[index] - step
            minus = simulator.expectation(
                circuit, observable, shifted, initial_state=initial_state
            )
            grads[out_slot] = (plus - minus) / (2.0 * step)
        else:
            grads[out_slot] = (plus - base) / step
    return grads


def _adjoint_sweep(
    circuit: QuantumCircuit,
    observable: Observable,
    params: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    initial_state: Optional[Statevector],
    want_value: bool,
) -> Tuple[Optional[float], np.ndarray]:
    """Sequential adjoint forward pass + backward sweep.

    Returns ``(expectation, grads)``; the expectation is read off the
    forward pass (``None`` unless ``want_value``), so callers needing loss
    *and* gradient execute the circuit exactly once.
    """
    wanted = set(indices)
    num_qubits = circuit.num_qubits
    static = circuit.static_matrices()

    # Forward pass.
    final_state = simulator.run(circuit, params, initial_state)
    value = observable.expectation(final_state) if want_value else None
    psi = final_state.data.copy()
    lam = observable.apply(psi)

    grads_by_index = {}
    for pos in range(len(circuit.operations) - 1, -1, -1):
        op = circuit.operations[pos]
        if op.is_trainable:
            adjoint = op.matrix(params).conj().T
        else:
            adjoint = static[pos][1]
        # Undo this gate: |psi_k> (state before the gate).
        psi = apply_matrix(psi, adjoint, op.qubits, num_qubits)
        if op.is_trainable and op.param_index in wanted:
            gate = op.gate
            assert isinstance(gate, ParametricGate)
            d_matrix = gate.derivative(float(params[op.param_index]))
            d_psi = apply_matrix(psi, d_matrix, op.qubits, num_qubits)
            grads_by_index[op.param_index] = 2.0 * float(
                np.real(np.vdot(lam, d_psi))
            )
        lam = apply_matrix(lam, adjoint, op.qubits, num_qubits)

    grads = np.array([grads_by_index.get(i, 0.0) for i in indices], dtype=FLOAT_DTYPE)
    return value, grads


def adjoint_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> np.ndarray:
    """Full gradient via reverse-mode (adjoint) statevector differentiation.

    Runs the circuit forward once, then sweeps backwards undoing each gate:
    for every trainable operation ``U_k(theta_k)`` the partial derivative is
    ``2 * Re( <lambda| dU_k/dtheta |psi_k> )`` where ``|psi_k>`` is the state
    *before* the gate and ``<lambda|`` carries the observable back through
    the tail of the circuit.  Exact for any gate exposing ``derivative``.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=FLOAT_DTYPE).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    _, grads = _adjoint_sweep(
        circuit, observable, params, simulator, indices, initial_state,
        want_value=False,
    )
    return grads


def adjoint_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> Tuple[float, np.ndarray]:
    """``(<O>, gradient)`` from one adjoint pass — no second execution.

    The expectation is evaluated on the forward-pass state, so it carries
    exactly the same bits as ``simulator.expectation(circuit, observable,
    params)``, and the gradient matches :func:`adjoint_gradient`.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=FLOAT_DTYPE).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    value, grads = _adjoint_sweep(
        circuit, observable, params, simulator, indices, initial_state,
        want_value=True,
    )
    return value, grads


def _batch_adjoint_sweep(
    circuit: QuantumCircuit,
    observable: Observable,
    batch: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    initial_state: Optional[Statevector],
    want_values: bool,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Adjoint forward pass + backward sweep over a ``(B, 2**n)`` stack.

    Per row the arithmetic mirrors :func:`_adjoint_sweep` through the
    broadcasting kernels, so results are bit-identical to ``B`` sequential
    sweeps; on the numpy backend the final inner products stay per-row
    ``vdot`` calls for the same reason.  On a non-numpy backend the whole
    sweep — forward pass, both adjoint trails, and the gradient
    reductions — runs on-namespace; only the ``(B,)`` gradient entries
    cross back per differentiated parameter.
    """
    num_qubits = circuit.num_qubits
    static = circuit.static_matrices()
    b = simulator.backend
    device = not b.is_numpy

    # Forward pass: one batched execution for all rows, left resident on
    # the simulator's array backend.
    psi = simulator._run_batch_data(circuit, batch, initial_state)
    values = observable.expectation_batch(psi) if want_values else None
    lam = observable.apply_batch(psi)
    if device and type(lam) is np.ndarray:
        # The observable fell back to its host implementation; stage the
        # adjoint trail back onto the backend for the backward sweep.
        lam = b.asarray(lam, dtype=b.complex_dtype)

    grads = np.zeros((batch.shape[0], len(indices)), dtype=FLOAT_DTYPE)
    slot_of = {index: slot for slot, index in enumerate(indices)}
    for pos in range(len(circuit.operations) - 1, -1, -1):
        op = circuit.operations[pos]
        if op.is_trainable:
            thetas = batch[:, op.param_index]
            gate = op.gate
            assert isinstance(gate, ParametricGate)
            adjoint = gate.matrix_batch(thetas).conj().transpose(0, 2, 1)
        else:
            adjoint = static[pos][1]
        # Undo this gate on every row: |psi_k> (states before the gate).
        psi = apply_matrix(psi, adjoint, op.qubits, num_qubits, backend=b)
        if op.is_trainable and op.param_index in slot_of:
            d_matrices = gate.derivative_batch(thetas)
            d_psi = apply_matrix(psi, d_matrices, op.qubits, num_qubits, backend=b)
            if device:
                grads[:, slot_of[op.param_index]] = 2.0 * np.real(
                    b.to_numpy(b.sum(b.conj(lam) * d_psi, axis=1))
                )
            else:
                grads[:, slot_of[op.param_index]] = [
                    2.0 * float(np.real(np.vdot(l, d)))
                    for l, d in zip(lam, d_psi)
                ]
        lam = apply_matrix(lam, adjoint, op.qubits, num_qubits, backend=b)
    return values, grads


def _coerce_batch(circuit: QuantumCircuit, params: Sequence[float]) -> Tuple[np.ndarray, bool]:
    """Normalize 1-D/2-D ``params`` to ``(B, P)`` plus a was-single flag."""
    array = np.asarray(params, dtype=FLOAT_DTYPE)
    if array.ndim not in (1, 2):
        raise ValueError(
            f"params must be 1-D or 2-D (batch, num_parameters), "
            f"got shape {array.shape}"
        )
    single = array.ndim == 1
    return array.reshape(1, -1) if single else array, single


def batch_adjoint_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> np.ndarray:
    """Adjoint gradients for one or many parameter vectors in one sweep.

    Parameters
    ----------
    circuit, observable:
        The expectation function being differentiated.
    params:
        One parameter vector (shape ``(P,)``) or a stack of ``B`` vectors
        (shape ``(B, P)``) sharing the circuit — e.g. one trajectory per
        initialization method in lock-step training.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).
    initial_state:
        Optional non-default input state shared by every row.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(param_indices),)`` for 1-D ``params``, else
        ``(B, len(param_indices))``; row ``b`` bit-identical to
        ``adjoint_gradient(circuit, observable, params[b], ...)``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    _, grads = _batch_adjoint_sweep(
        circuit, observable, batch, simulator, indices, initial_state,
        want_values=False,
    )
    return grads[0] if single else grads


def batch_adjoint_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(<O> per row, gradients)`` from one batched adjoint pass.

    Expectations are read off the shared forward pass — the batched
    counterpart of :func:`adjoint_value_and_gradient`.  For 1-D ``params``
    returns ``(float, (len(indices),))``, else ``((B,), (B, len(indices)))``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    values, grads = _batch_adjoint_sweep(
        circuit, observable, batch, simulator, indices, initial_state,
        want_values=True,
    )
    if single:
        return float(values[0]), grads[0]
    return values, grads


def megabatch_adjoint_gradient(
    circuits: Sequence[QuantumCircuit],
    observable: Observable,
    params_batches: Sequence[Sequence[float]],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    plan: Optional[MegaBatchPlan] = None,
) -> "list[np.ndarray]":
    """Adjoint gradients for a whole shape bucket in one stacked sweep.

    The mega-batched form of :func:`batch_adjoint_gradient`: one
    :meth:`StatevectorSimulator.run_megabatch` forward pass over every
    circuit's rows, then a single backward sweep.  At each trainable slot
    the rows partition by their circuit's drawn gate, and each partition
    applies that gate's per-row adjoint / derivative stacks through the
    broadcasting kernels; fixed operations use the plan template's cached
    static adjoints on the whole stack.  Rows evolve independently, so
    entry ``s`` is bit-identical to ``batch_adjoint_gradient(circuits[s],
    observable, params_batches[s], ...)``.

    Parameters
    ----------
    circuits, observable, params_batches, simulator, param_indices,
    initial_state, plan:
        As in :func:`megabatch_parameter_shift` (the adjoint engine has
        no sampled mode).

    Returns
    -------
    list of numpy.ndarray
        One ``(M_s, len(param_indices))`` gradient block per circuit.
    """
    simulator = simulator or StatevectorSimulator()
    batches = _coerce_mega_batches(circuits, params_batches)
    plan = plan or MegaBatchPlan(circuits)
    indices = _resolve_indices(plan.template, param_indices)
    num_qubits = plan.num_qubits
    static = plan.template.static_matrices()
    b = simulator.backend
    device = not b.is_numpy

    batch = np.concatenate(batches, axis=0)
    rows = np.concatenate(
        [np.full(bt.shape[0], s, dtype=np.intp) for s, bt in enumerate(batches)]
    )
    # Forward pass: one mega-batched execution for all circuits' rows,
    # left resident on the simulator's array backend; the backward sweep
    # (segment gathers/scatters included) runs on-namespace end to end.
    psi = simulator._run_megabatch_data(plan, batch, rows, initial_state)
    lam = observable.apply_batch(psi)
    if device and type(lam) is np.ndarray:
        # The observable fell back to its host implementation; stage the
        # adjoint trail back onto the backend for the backward sweep.
        lam = b.asarray(lam, dtype=b.complex_dtype)

    grads = np.zeros((batch.shape[0], len(indices)), dtype=FLOAT_DTYPE)
    slot_of = {index: slot for slot, index in enumerate(indices)}
    for pos in range(len(plan.template.operations) - 1, -1, -1):
        op = plan.template.operations[pos]
        if not op.is_trainable:
            adjoint = static[pos][1]
            psi = apply_matrix(psi, adjoint, op.qubits, num_qubits, backend=b)
            lam = apply_matrix(lam, adjoint, op.qubits, num_qubits, backend=b)
            continue
        gates, codes = plan.slot_gates[pos]
        thetas = batch[:, op.param_index]
        wanted_slot = slot_of.get(op.param_index)
        row_codes = codes[rows] if len(gates) > 1 else None
        psi_new = psi if len(gates) == 1 else b.empty_like(psi)
        lam_new = lam if len(gates) == 1 else b.empty_like(lam)
        for code, gate in enumerate(gates):
            if len(gates) == 1:
                idx = None
                seg_thetas, seg_psi, seg_lam = thetas, psi, lam
            else:
                idx = np.flatnonzero(row_codes == code)
                if idx.size == 0:
                    continue
                seg_thetas = thetas[idx]
                seg_psi = b.take_rows(psi, idx)
                seg_lam = b.take_rows(lam, idx)
            adjoint = gate.matrix_batch(seg_thetas).conj().transpose(0, 2, 1)
            # Undo this gate on the segment: |psi_k> (states before it).
            seg_psi = apply_matrix(seg_psi, adjoint, op.qubits, num_qubits, backend=b)
            if wanted_slot is not None:
                d_matrices = gate.derivative_batch(seg_thetas)
                d_psi = apply_matrix(
                    seg_psi, d_matrices, op.qubits, num_qubits, backend=b
                )
                if device:
                    seg_grads = 2.0 * np.real(
                        b.to_numpy(b.sum(b.conj(seg_lam) * d_psi, axis=1))
                    )
                else:
                    seg_grads = [
                        2.0 * float(np.real(np.vdot(l, d)))
                        for l, d in zip(seg_lam, d_psi)
                    ]
            seg_lam = apply_matrix(seg_lam, adjoint, op.qubits, num_qubits, backend=b)
            if idx is None:
                psi_new, lam_new = seg_psi, seg_lam
                if wanted_slot is not None:
                    grads[:, wanted_slot] = seg_grads
            else:
                b.put_rows(psi_new, idx, seg_psi)
                b.put_rows(lam_new, idx, seg_lam)
                if wanted_slot is not None:
                    grads[idx, wanted_slot] = seg_grads
        psi, lam = psi_new, lam_new

    outputs: "list[np.ndarray]" = []
    start = 0
    for b in batches:
        outputs.append(grads[start : start + b.shape[0]])
        start += b.shape[0]
    return outputs


#: Named registry of gradient engines.  The ``batch_*`` engines share the
#: standard engine signature (and additionally accept ``(B, P)`` parameter
#: stacks), returning the same values as their sequential counterparts
#: from one batched execution.
GRADIENT_ENGINES = {
    "parameter_shift": parameter_shift,
    "batch_parameter_shift": batch_parameter_shift,
    "adjoint": adjoint_gradient,
    "batch_adjoint": batch_adjoint_gradient,
    "finite_difference": finite_difference,
}


def get_gradient_fn(name: str) -> GradientFn:
    """Look up a gradient engine by name.

    Valid names: ``parameter_shift``, ``batch_parameter_shift``,
    ``adjoint``, ``batch_adjoint``, ``finite_difference``.
    """
    try:
        return GRADIENT_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown gradient engine {name!r}; "
            f"choose from {sorted(GRADIENT_ENGINES)}"
        ) from None
