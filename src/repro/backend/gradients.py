"""Gradient engines for parameterized circuits.

Three interchangeable engines compute ``d <O> / d params``:

``parameter_shift``
    The exact hardware-compatible rule.  For gates ``exp(-i theta P / 2)``
    with ``P^2 = I`` it is the classic two-term form
    ``dE/dtheta = (E(theta + pi/2) - E(theta - pi/2)) / 2``; controlled
    rotations use the exact four-term rule.  Each gate carries its own
    rule (``ParametricGate.shift_terms``), so the cost is two (or four)
    circuit executions per differentiated parameter — the natural choice
    for the paper's variance analysis, which differentiates only the last
    parameter.

``adjoint_gradient``
    Reverse-mode differentiation through the statevector (Jones & Gacon,
    2020).  One forward pass plus one backward sweep gives the *full*
    gradient in ``O(#gates)`` — the engine used for training.  Fixed and
    bound-parameter gate adjoints are cached on the circuit
    (:meth:`QuantumCircuit.static_matrices`), so repeated sweeps — one per
    training iteration — rebuild only the trainable matrices.

``batch_adjoint``
    The adjoint sweep over a ``(B, 2**n)`` statevector stack: one
    :meth:`StatevectorSimulator.run_batch` forward pass, then a single
    backward sweep applying per-row adjoint/derivative stacks
    (:meth:`ParametricGate.matrix_batch` / ``derivative_batch``) through
    the broadcasting kernels.  Row ``b`` is bit-identical to
    ``adjoint_gradient(..., params[b])``; throughput is what changes —
    this engine powers lock-step multi-trajectory training.
    :func:`adjoint_value_and_gradient` / :func:`batch_adjoint_value_and_gradient`
    additionally return the expectation read off the same forward pass, so
    training loops get loss and full gradient from one execution.

``finite_difference``
    Numerical fallback that works for any gate; used mainly to cross-check
    the exact engines in tests.

``batch_parameter_shift``
    The same exact shift rule as ``parameter_shift``, but every shifted
    parameter vector — all shift terms of all requested parameters, for
    one or many base parameter vectors — is folded into a single
    :meth:`StatevectorSimulator.expectation_batch` call.  Results are
    bit-identical to the sequential rule; throughput is what changes
    (this engine powers the variance experiment's batched mode).  With
    ``shots=`` every shifted expectation is sample-estimated instead:
    one batched execution plus row-wise draws, each base row consuming
    its own spawned child stream exactly as the sequential
    ``parameter_shift(..., shots=, seed=<child>)`` would — so batched
    sampled gradients stay bit-identical to per-row sequential sampling.
    :func:`batch_parameter_shift_value_and_gradient` additionally reads
    per-row losses off the same folded execution, the workhorse of
    lock-step shot-based training.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.gates import ParametricGate
from repro.backend.observables import Observable
from repro.backend.simulator import StatevectorSimulator
from repro.backend.statevector import Statevector, apply_matrix

__all__ = [
    "parameter_shift",
    "batch_parameter_shift",
    "batch_parameter_shift_value_and_gradient",
    "finite_difference",
    "adjoint_gradient",
    "adjoint_value_and_gradient",
    "batch_adjoint_gradient",
    "batch_adjoint_value_and_gradient",
    "get_gradient_fn",
    "GRADIENT_ENGINES",
]

GradientFn = Callable[..., np.ndarray]


def _resolve_indices(
    circuit: QuantumCircuit, param_indices: Optional[Sequence[int]]
) -> Sequence[int]:
    if param_indices is None:
        return range(circuit.num_parameters)
    indices = [int(i) for i in param_indices]
    for index in indices:
        if not 0 <= index < circuit.num_parameters:
            raise IndexError(
                f"parameter index {index} out of range "
                f"(circuit has {circuit.num_parameters})"
            )
    return indices


def _resolve_shift_rules(
    circuit: QuantumCircuit, indices: Sequence[int]
) -> "list[Tuple[Tuple[float, float], ...]]":
    """Shift terms for each differentiated parameter, in index order.

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule at all; use
        ``adjoint_gradient`` or ``finite_difference`` for such gates.
    """
    position_of = circuit.parameter_map()
    rules = []
    for index in indices:
        gate = circuit.operations[position_of[index]].gate
        assert isinstance(gate, ParametricGate)
        if gate.shift_terms is None:
            raise ValueError(
                f"gate {gate.name} has no exact parameter-shift rule; "
                "use the adjoint or finite-difference engine"
            )
        rules.append(gate.shift_terms)
    return rules


def parameter_shift(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> np.ndarray:
    """Gradient via each gate's exact parameter-shift rule.

    Parameters
    ----------
    circuit, observable, params:
        The expectation function being differentiated.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).  The result
        always has one entry per requested index, in order.
    initial_state:
        Optional non-default input state.
    shots, seed:
        When ``shots`` is given, every shifted expectation is estimated
        from that many measurement samples — the hardware-realistic
        stochastic gradient (the rule itself stays unbiased).

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule at all; use
        ``adjoint_gradient`` or ``finite_difference`` for such gates.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    if shots is not None:
        # One generator consumed across all shifted evaluations keeps the
        # per-evaluation samples independent.
        from repro.utils.rng import ensure_rng

        seed = ensure_rng(seed)

    grads = np.empty(len(indices), dtype=float)
    for out_slot, (index, terms) in enumerate(zip(indices, rules)):
        total = 0.0
        shifted = params.copy()
        for coefficient, shift in terms:
            shifted[index] = params[index] + shift
            total += coefficient * simulator.expectation(
                circuit,
                observable,
                shifted,
                initial_state=initial_state,
                shots=shots,
                seed=seed,
            )
        grads[out_slot] = total
    return grads


def _batch_shift_execute(
    circuit: QuantumCircuit,
    observable: Observable,
    batch: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    rules: Sequence[Tuple[Tuple[float, float], ...]],
    initial_state: Optional[Statevector],
    shots: Optional[int],
    seed,
    include_values: bool,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Folded shift-rule execution shared by the batched engines.

    Builds one execution batch holding, per base row, an optional
    unshifted evaluation (``include_values``) followed by every shifted
    vector the rules require, in the same (parameter, term) order the
    sequential engine walks.  Analytic mode evaluates it through
    ``expectation_batch``; sampled mode runs one batched execution and
    draws row-wise, each base row's evaluations sharing that row's child
    generator in sequential-consumption order — the bit-identity contract
    with ``parameter_shift(..., shots=, seed=<child>)``.
    """
    evals_per_row = (1 if include_values else 0) + sum(
        len(terms) for terms in rules
    )
    folded = []
    for row in batch:
        if include_values:
            folded.append(row.copy())
        for slot, index in enumerate(indices):
            for _, shift in rules[slot]:
                shifted = row.copy()
                shifted[index] = row[index] + shift
                folded.append(shifted)
    if shots is None:
        estimates = simulator.expectation_batch(
            circuit, observable, np.stack(folded), initial_state=initial_state
        )
    else:
        from repro.utils.rng import resolve_rngs

        row_rngs = resolve_rngs(seed, batch.shape[0])
        states = simulator.run_batch(
            circuit, np.stack(folded), initial_state=initial_state
        )
        # Every evaluation of base row b consumes rng b; the row-major
        # draw order inside sampled_expectation_rows then matches the
        # sequential engine's stream consumption exactly.
        folded_rngs = [
            rng for rng in row_rngs for _ in range(evals_per_row)
        ]
        estimates = simulator.sampled_expectation_rows(
            states, observable, shots, folded_rngs
        )

    values = np.empty(batch.shape[0], dtype=float) if include_values else None
    grads = np.empty((batch.shape[0], len(indices)), dtype=float)
    cursor = 0
    for b in range(batch.shape[0]):
        if include_values:
            values[b] = estimates[cursor]
            cursor += 1
        for slot in range(len(indices)):
            total = 0.0
            for coefficient, _ in rules[slot]:
                total += coefficient * estimates[cursor]
                cursor += 1
            grads[b, slot] = total
    return values, grads


def batch_parameter_shift(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> np.ndarray:
    """Parameter-shift gradients from one batched execution.

    Builds every shifted parameter vector the shift rules require — all
    terms of all requested parameters, for every row of ``params`` — and
    evaluates them in a single batched execution, then recombines the
    expectations with the rules' coefficients in the same accumulation
    order as :func:`parameter_shift`, so the result is bit-identical to
    the sequential engine.

    Parameters
    ----------
    circuit, observable:
        The expectation function being differentiated.
    params:
        Either one parameter vector (shape ``(P,)``) or a stack of ``B``
        vectors (shape ``(B, P)``) sharing the circuit — e.g. one draw per
        initialization method in the variance experiment.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).
    initial_state:
        Optional non-default input state shared by every row.
    shots:
        When given, every shifted expectation is estimated from that many
        measurement samples (hardware-realistic stochastic gradients).
    seed:
        Sampled mode only: a sequence of ``B`` per-row seeds/generators
        or a single :data:`~repro.utils.rng.SeedLike` spawning ``B``
        children — row ``b``'s evaluations share generator ``b``, making
        the row bit-identical to
        ``parameter_shift(..., shots=shots, seed=<row b's seed>)``.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(param_indices),)`` for 1-D ``params``, else
        ``(B, len(param_indices))``.

    Raises
    ------
    ValueError
        If a differentiated gate carries no exact shift rule.
    """
    simulator = simulator or StatevectorSimulator()
    array = np.asarray(params, dtype=float)
    if array.ndim not in (1, 2):
        raise ValueError(
            f"params must be 1-D or 2-D (batch, num_parameters), "
            f"got shape {array.shape}"
        )
    single = array.ndim == 1
    batch = array.reshape(1, -1) if single else array
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    if not indices:
        empty = np.empty((batch.shape[0], 0), dtype=float)
        return empty[0] if single else empty
    _, grads = _batch_shift_execute(
        circuit, observable, batch, simulator, indices, rules,
        initial_state, shots, seed, include_values=False,
    )
    return grads[0] if single else grads


def batch_parameter_shift_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    shots: Optional[int] = None,
    seed=None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(<O> per row, shift-rule gradients)`` from one folded execution.

    The shift-engine counterpart of
    :func:`batch_adjoint_value_and_gradient`: each base row's unshifted
    evaluation is folded into the same execution batch as its shifted
    vectors.  In sampled mode (``shots=``) row ``b`` consumes its child
    generator value-first then shift terms — exactly the order
    ``ObservableCost.value_and_gradient(..., shots=, seed=<child>)``
    consumes it sequentially — so lock-step shot-based training is
    bit-identical to per-trajectory training given the same spawned
    child seeds.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        ``((B,), (B, len(indices)))`` for 2-D ``params``; 1-D input
        returns ``(float, (len(indices),))``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    rules = _resolve_shift_rules(circuit, indices)
    values, grads = _batch_shift_execute(
        circuit, observable, batch, simulator, indices, rules,
        initial_state, shots, seed, include_values=True,
    )
    if single:
        return float(values[0]), grads[0]
    return values, grads


def finite_difference(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
    step: float = 1e-6,
    scheme: str = "central",
) -> np.ndarray:
    """Numerical gradient (``central`` or ``forward`` differences)."""
    if scheme not in ("central", "forward"):
        raise ValueError(f"scheme must be 'central' or 'forward', got {scheme!r}")
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)

    base = None
    if scheme == "forward":
        base = simulator.expectation(
            circuit, observable, params, initial_state=initial_state
        )
    grads = np.empty(len(indices), dtype=float)
    for out_slot, index in enumerate(indices):
        shifted = params.copy()
        shifted[index] = params[index] + step
        plus = simulator.expectation(
            circuit, observable, shifted, initial_state=initial_state
        )
        if scheme == "central":
            shifted[index] = params[index] - step
            minus = simulator.expectation(
                circuit, observable, shifted, initial_state=initial_state
            )
            grads[out_slot] = (plus - minus) / (2.0 * step)
        else:
            grads[out_slot] = (plus - base) / step
    return grads


def _adjoint_sweep(
    circuit: QuantumCircuit,
    observable: Observable,
    params: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    initial_state: Optional[Statevector],
    want_value: bool,
) -> Tuple[Optional[float], np.ndarray]:
    """Sequential adjoint forward pass + backward sweep.

    Returns ``(expectation, grads)``; the expectation is read off the
    forward pass (``None`` unless ``want_value``), so callers needing loss
    *and* gradient execute the circuit exactly once.
    """
    wanted = set(indices)
    num_qubits = circuit.num_qubits
    static = circuit.static_matrices()

    # Forward pass.
    final_state = simulator.run(circuit, params, initial_state)
    value = observable.expectation(final_state) if want_value else None
    psi = final_state.data.copy()
    lam = observable.apply(psi)

    grads_by_index = {}
    for pos in range(len(circuit.operations) - 1, -1, -1):
        op = circuit.operations[pos]
        if op.is_trainable:
            adjoint = op.matrix(params).conj().T
        else:
            adjoint = static[pos][1]
        # Undo this gate: |psi_k> (state before the gate).
        psi = apply_matrix(psi, adjoint, op.qubits, num_qubits)
        if op.is_trainable and op.param_index in wanted:
            gate = op.gate
            assert isinstance(gate, ParametricGate)
            d_matrix = gate.derivative(float(params[op.param_index]))
            d_psi = apply_matrix(psi, d_matrix, op.qubits, num_qubits)
            grads_by_index[op.param_index] = 2.0 * float(
                np.real(np.vdot(lam, d_psi))
            )
        lam = apply_matrix(lam, adjoint, op.qubits, num_qubits)

    grads = np.array([grads_by_index.get(i, 0.0) for i in indices], dtype=float)
    return value, grads


def adjoint_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> np.ndarray:
    """Full gradient via reverse-mode (adjoint) statevector differentiation.

    Runs the circuit forward once, then sweeps backwards undoing each gate:
    for every trainable operation ``U_k(theta_k)`` the partial derivative is
    ``2 * Re( <lambda| dU_k/dtheta |psi_k> )`` where ``|psi_k>`` is the state
    *before* the gate and ``<lambda|`` carries the observable back through
    the tail of the circuit.  Exact for any gate exposing ``derivative``.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    _, grads = _adjoint_sweep(
        circuit, observable, params, simulator, indices, initial_state,
        want_value=False,
    )
    return grads


def adjoint_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> Tuple[float, np.ndarray]:
    """``(<O>, gradient)`` from one adjoint pass — no second execution.

    The expectation is evaluated on the forward-pass state, so it carries
    exactly the same bits as ``simulator.expectation(circuit, observable,
    params)``, and the gradient matches :func:`adjoint_gradient`.
    """
    simulator = simulator or StatevectorSimulator()
    params = np.asarray(params, dtype=float).reshape(-1)
    indices = _resolve_indices(circuit, param_indices)
    value, grads = _adjoint_sweep(
        circuit, observable, params, simulator, indices, initial_state,
        want_value=True,
    )
    return value, grads


def _batch_adjoint_sweep(
    circuit: QuantumCircuit,
    observable: Observable,
    batch: np.ndarray,
    simulator: StatevectorSimulator,
    indices: Sequence[int],
    initial_state: Optional[Statevector],
    want_values: bool,
) -> Tuple[Optional[np.ndarray], np.ndarray]:
    """Adjoint forward pass + backward sweep over a ``(B, 2**n)`` stack.

    Per row the arithmetic mirrors :func:`_adjoint_sweep` through the
    broadcasting kernels, so results are bit-identical to ``B`` sequential
    sweeps; the final inner products stay per-row ``vdot`` calls for the
    same reason.
    """
    num_qubits = circuit.num_qubits
    static = circuit.static_matrices()

    # Forward pass: one batched execution for all rows.
    psi = simulator.run_batch(circuit, batch, initial_state)
    values = observable.expectation_batch(psi) if want_values else None
    lam = observable.apply_batch(psi)

    grads = np.zeros((batch.shape[0], len(indices)), dtype=float)
    slot_of = {index: slot for slot, index in enumerate(indices)}
    for pos in range(len(circuit.operations) - 1, -1, -1):
        op = circuit.operations[pos]
        if op.is_trainable:
            thetas = batch[:, op.param_index]
            gate = op.gate
            assert isinstance(gate, ParametricGate)
            adjoint = gate.matrix_batch(thetas).conj().transpose(0, 2, 1)
        else:
            adjoint = static[pos][1]
        # Undo this gate on every row: |psi_k> (states before the gate).
        psi = apply_matrix(psi, adjoint, op.qubits, num_qubits)
        if op.is_trainable and op.param_index in slot_of:
            d_matrices = gate.derivative_batch(thetas)
            d_psi = apply_matrix(psi, d_matrices, op.qubits, num_qubits)
            grads[:, slot_of[op.param_index]] = [
                2.0 * float(np.real(np.vdot(l, d)))
                for l, d in zip(lam, d_psi)
            ]
        lam = apply_matrix(lam, adjoint, op.qubits, num_qubits)
    return values, grads


def _coerce_batch(circuit: QuantumCircuit, params: Sequence[float]) -> Tuple[np.ndarray, bool]:
    """Normalize 1-D/2-D ``params`` to ``(B, P)`` plus a was-single flag."""
    array = np.asarray(params, dtype=float)
    if array.ndim not in (1, 2):
        raise ValueError(
            f"params must be 1-D or 2-D (batch, num_parameters), "
            f"got shape {array.shape}"
        )
    single = array.ndim == 1
    return array.reshape(1, -1) if single else array, single


def batch_adjoint_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> np.ndarray:
    """Adjoint gradients for one or many parameter vectors in one sweep.

    Parameters
    ----------
    circuit, observable:
        The expectation function being differentiated.
    params:
        One parameter vector (shape ``(P,)``) or a stack of ``B`` vectors
        (shape ``(B, P)``) sharing the circuit — e.g. one trajectory per
        initialization method in lock-step training.
    simulator:
        Reused if given, else a fresh one is created.
    param_indices:
        Subset of parameters to differentiate (default: all).
    initial_state:
        Optional non-default input state shared by every row.

    Returns
    -------
    numpy.ndarray
        Shape ``(len(param_indices),)`` for 1-D ``params``, else
        ``(B, len(param_indices))``; row ``b`` bit-identical to
        ``adjoint_gradient(circuit, observable, params[b], ...)``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    _, grads = _batch_adjoint_sweep(
        circuit, observable, batch, simulator, indices, initial_state,
        want_values=False,
    )
    return grads[0] if single else grads


def batch_adjoint_value_and_gradient(
    circuit: QuantumCircuit,
    observable: Observable,
    params: Sequence[float],
    simulator: Optional[StatevectorSimulator] = None,
    param_indices: Optional[Sequence[int]] = None,
    initial_state: Optional[Statevector] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """``(<O> per row, gradients)`` from one batched adjoint pass.

    Expectations are read off the shared forward pass — the batched
    counterpart of :func:`adjoint_value_and_gradient`.  For 1-D ``params``
    returns ``(float, (len(indices),))``, else ``((B,), (B, len(indices)))``.
    """
    simulator = simulator or StatevectorSimulator()
    batch, single = _coerce_batch(circuit, params)
    indices = _resolve_indices(circuit, param_indices)
    values, grads = _batch_adjoint_sweep(
        circuit, observable, batch, simulator, indices, initial_state,
        want_values=True,
    )
    if single:
        return float(values[0]), grads[0]
    return values, grads


#: Named registry of gradient engines.  The ``batch_*`` engines share the
#: standard engine signature (and additionally accept ``(B, P)`` parameter
#: stacks), returning the same values as their sequential counterparts
#: from one batched execution.
GRADIENT_ENGINES = {
    "parameter_shift": parameter_shift,
    "batch_parameter_shift": batch_parameter_shift,
    "adjoint": adjoint_gradient,
    "batch_adjoint": batch_adjoint_gradient,
    "finite_difference": finite_difference,
}


def get_gradient_fn(name: str) -> GradientFn:
    """Look up a gradient engine by name.

    Valid names: ``parameter_shift``, ``batch_parameter_shift``,
    ``adjoint``, ``batch_adjoint``, ``finite_difference``.
    """
    try:
        return GRADIENT_ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown gradient engine {name!r}; "
            f"choose from {sorted(GRADIENT_ENGINES)}"
        ) from None
