"""Batched noisy execution via ``(B, 4**n)`` Pauli-transfer propagation.

The exact :class:`~repro.backend.density.DensityMatrixSimulator` evolves a
dense ``(2**n, 2**n)`` matrix through every gate and channel one circuit
at a time; the trajectory sampler pays a Monte-Carlo variance instead.
This module gives noisy simulation the same batching story the noiseless
engine has: a mixed state is stored as its *Pauli vector*

``s_j = Tr(P_j rho)``

over the unnormalized Pauli basis (per-qubit digits ``I=0, X=1, Y=2,
Z=3``, qubit 0 the most significant base-4 digit — matching the
statevector module's bit convention), and every unitary or channel acts
on it as a small real matrix, the Pauli-transfer matrix (PTM)

``R_ij = (1/2**k) Tr(P_i E(P_j))``.

The key implementation trick is that a length-``4**n`` Pauli vector *is*
a ``2*n``-qubit amplitude buffer: base-4 digit ``q`` occupies the bit
pair ``(2q, 2q+1)``.  Propagation therefore reuses
:func:`repro.backend.statevector.apply_matrix` verbatim — including the
leading batch axis, per-row ``(B, 4**k, 4**k)`` operand stacks for
trainable gates, and the :class:`~repro.utils.array_api.ArrayBackend`
threading — so a whole batch of parameter rows evolves through a noisy
circuit in one vectorized pass.  Gate and channel PTMs are computed once
and cached (channels on the channel object itself, fixed gates in a
module table keyed by matrix bytes), so a shape bucket pays the
conversion once, not per row.

Readout is exact (``p(b) = Tr(|b><b| rho)`` folds the I/Z components of
the Pauli vector through a per-qubit ``[[1, 1], [1, -1]]`` transform) and
the sampled estimators thread the noise model's classical
``readout_error`` into :func:`sample_basis_bits`.

:class:`PauliTransferSimulator` duck-types the slice of
:class:`~repro.backend.simulator.StatevectorSimulator` the gradient
engines consume (``expectation``, ``expectation_batch``, ``run_batch``,
``sampled_expectation_rows``), so ``parameter_shift`` and the batched
shift-rule engines run unmodified under noise.  Adjoint-family engines
have no non-unitary analogue; the config layer routes noisy runs to the
shift family.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.density import DensityMatrix
from repro.backend.noise import KrausChannel, NoiseModel
from repro.backend.observables import (
    Observable,
    PauliString,
    PauliSum,
    Projector,
)
from repro.backend.simulator import StatevectorSimulator, batch_chunk_rows
from repro.backend.statevector import (
    Statevector,
    apply_matrix,
    sample_basis_bits,
)
from repro.utils.array_api import (
    COMPLEX_DTYPE,
    FLOAT_DTYPE,
    ArrayBackend,
    array_backend_of,
    is_device_array,
    resolve_array_backend,
)
from repro.utils.rng import SeedLike, ensure_rng, resolve_rngs
from repro.utils.validation import check_positive_int

__all__ = [
    "PauliTransferSimulator",
    "pauli_basis",
    "ptm_of_unitary",
    "ptm_of_unitary_batch",
    "ptm_of_channel",
    "pauli_vector_from_density",
    "density_from_pauli_vector",
]

_PAULI_1Q = np.stack(
    [
        np.eye(2, dtype=complex),
        np.array([[0, 1], [1, 0]], dtype=complex),
        np.array([[0, -1j], [1j, 0]], dtype=complex),
        np.array([[1, 0], [0, -1]], dtype=complex),
    ]
)
_LETTER_DIGIT = {"I": 0, "X": 1, "Y": 2, "Z": 3}

#: Per-qubit fold from (I, Z) Pauli components to (bit=0, bit=1)
#: populations: p(b) = (1/2)(s_I + (-1)^b s_Z) per qubit.
_BIT_FROM_IZ = np.array([[1.0, 1.0], [1.0, -1.0]], dtype=COMPLEX_DTYPE)

_BASIS_CACHE: Dict[int, np.ndarray] = {}
_UNITARY_PTM_CACHE: Dict[Tuple[int, bytes], np.ndarray] = {}
_INITIAL_CACHE: Dict[int, np.ndarray] = {}
_IZ_INDEX_CACHE: Dict[int, np.ndarray] = {}


def pauli_basis(num_qubits: int) -> np.ndarray:
    """``(4**k, 2**k, 2**k)`` stack of unnormalized Pauli words.

    Index ``i`` expands in base 4 (qubit 0 most significant) with digits
    ``I=0, X=1, Y=2, Z=3``.
    """
    check_positive_int(num_qubits, "num_qubits")
    cached = _BASIS_CACHE.get(num_qubits)
    if cached is not None:
        return cached
    if num_qubits == 1:
        basis = _PAULI_1Q
    else:
        left = pauli_basis(num_qubits - 1)
        dim = left.shape[1]
        # kron(A, B)[a*2+c, b*2+d] = A[a, b] * B[c, d]
        basis = np.einsum("iab,jcd->ijacbd", left, _PAULI_1Q).reshape(
            4**num_qubits, 2 * dim, 2 * dim
        )
    _BASIS_CACHE[num_qubits] = basis
    return basis


def ptm_of_unitary(matrix: np.ndarray) -> np.ndarray:
    """PTM of a ``k``-qubit unitary: ``R_ij = Tr(P_i U P_j U^dag)/2**k``."""
    matrix = np.asarray(matrix, dtype=complex)
    dim = matrix.shape[0]
    k = int(dim).bit_length() - 1
    if dim < 2 or dim & (dim - 1) or matrix.shape != (dim, dim):
        raise ValueError(f"unitary must be square power-of-2, got {matrix.shape}")
    basis = pauli_basis(k)
    conjugated = np.einsum("ab,jbc,dc->jad", matrix, basis, matrix.conj())
    ptm = np.einsum("iab,jba->ij", basis, conjugated) / dim
    # CPTP transfer matrices are real; keep the complex dtype for kernel
    # and device-backend uniformity.
    return np.ascontiguousarray(ptm.real.astype(COMPLEX_DTYPE))


def ptm_of_unitary_batch(matrices: np.ndarray) -> np.ndarray:
    """Per-row PTMs of a ``(B, 2**k, 2**k)`` unitary stack."""
    matrices = np.asarray(matrices, dtype=complex)
    dim = matrices.shape[-1]
    k = int(dim).bit_length() - 1
    basis = pauli_basis(k)
    conjugated = np.einsum(
        "bxy,jyz,bwz->bjxw", matrices, basis, matrices.conj()
    )
    ptms = np.einsum("ixy,bjyx->bij", basis, conjugated) / dim
    return np.ascontiguousarray(ptms.real.astype(COMPLEX_DTYPE))


def ptm_of_channel(channel: KrausChannel) -> np.ndarray:
    """PTM of a Kraus channel, computed once and cached on the channel."""
    cached = getattr(channel, "_ptm_matrix", None)
    if cached is not None:
        return cached
    dim = 2**channel.num_qubits
    basis = pauli_basis(channel.num_qubits)
    accumulated = np.zeros((dim**2, dim**2), dtype=complex)
    for kraus in channel.kraus_operators:
        conjugated = np.einsum("ab,jbc,dc->jad", kraus, basis, kraus.conj())
        accumulated += np.einsum("iab,jba->ij", basis, conjugated)
    ptm = np.ascontiguousarray((accumulated / dim).real.astype(COMPLEX_DTYPE))
    channel._ptm_matrix = ptm
    return ptm


def _cached_unitary_ptm(matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(matrix, dtype=complex)
    key = (matrix.shape[0], matrix.tobytes())
    cached = _UNITARY_PTM_CACHE.get(key)
    if cached is None:
        if len(_UNITARY_PTM_CACHE) > 4096:
            _UNITARY_PTM_CACHE.clear()
        cached = _UNITARY_PTM_CACHE[key] = ptm_of_unitary(matrix)
    return cached


def _ptm_axes(qubits: Sequence[int]) -> List[int]:
    """Doubled-register axes of the given qudit positions.

    Base-4 digit ``q`` of the Pauli index occupies bits ``(2q, 2q+1)`` of
    the ``2n``-bit flat index, so a ``k``-qubit PTM applies as a
    ``2k``-"qubit" matrix on those bit pairs through ``apply_matrix``.
    """
    axes: List[int] = []
    for qubit in qubits:
        axes.extend((2 * qubit, 2 * qubit + 1))
    return axes


def _initial_pauli_vector(num_qubits: int) -> np.ndarray:
    """Pauli vector of ``|0...0><0...0|``: per-qubit ``[1, 0, 0, 1]``."""
    cached = _INITIAL_CACHE.get(num_qubits)
    if cached is None:
        single = np.array([1.0, 0.0, 0.0, 1.0])
        vector = single
        for _ in range(num_qubits - 1):
            vector = np.kron(vector, single)
        cached = _INITIAL_CACHE[num_qubits] = vector.astype(COMPLEX_DTYPE)
    return cached


def _iz_indices(num_qubits: int) -> np.ndarray:
    """Flat Pauli indices whose digits are all I (0) or Z (3), MSB-first."""
    cached = _IZ_INDEX_CACHE.get(num_qubits)
    if cached is None:
        bits = (
            np.arange(2**num_qubits)[:, None]
            >> np.arange(num_qubits - 1, -1, -1)
        ) & 1
        weights = 4 ** np.arange(num_qubits - 1, -1, -1)
        cached = _IZ_INDEX_CACHE[num_qubits] = (3 * bits * weights).sum(axis=1)
    return cached


def pauli_vector_from_density(rho: DensityMatrix) -> np.ndarray:
    """``s_j = Tr(P_j rho)`` — the PTM representation of a mixed state."""
    basis = pauli_basis(rho.num_qubits)
    return np.einsum("iab,ba->i", basis, rho.data).astype(COMPLEX_DTYPE)


def density_from_pauli_vector(
    vector: np.ndarray, num_qubits: int
) -> DensityMatrix:
    """Inverse of :func:`pauli_vector_from_density` (tests and oracles)."""
    basis = pauli_basis(num_qubits)
    data = np.einsum("i,iab->ab", np.asarray(vector), basis) / 2**num_qubits
    return DensityMatrix(data, validate=False)


def _pauli_word_index(term: PauliString) -> int:
    index = 0
    for qubit in range(term.num_qubits):
        index = index * 4 + _LETTER_DIGIT[term.paulis.get(qubit, "I")]
    return index


class PauliTransferSimulator:
    """Batched noisy circuit execution on ``(B, 4**n)`` Pauli vectors.

    Parameters
    ----------
    noise_model:
        A :class:`~repro.backend.noise.NoiseModel`, a serialized noise
        payload (``NoiseModel.from_dict`` vocabulary), or ``None`` for an
        ideal device.  Gate channels are applied after every operation to
        each touched qubit, exactly as the trajectory and density-matrix
        simulators do; ``readout_error`` feeds the sampled estimators.
    backend:
        Array backend the kernels run on, as in
        :class:`~repro.backend.simulator.StatevectorSimulator`.

    The public surface mirrors the statevector simulator's estimation
    slice (``expectation``, ``expectation_batch``, ``run_batch``,
    ``sampled_expectation_rows``), which is the exact duck-type contract
    of the shift-rule gradient engines — they run unchanged on top of
    this class.  States returned by :meth:`run` / :meth:`run_batch` are
    Pauli vectors (complex dtype, imaginary part zero), not amplitudes.
    """

    def __init__(
        self,
        noise_model: "Optional[NoiseModel | Dict[str, Any]]" = None,
        backend: "Optional[str | ArrayBackend]" = None,
    ) -> None:
        if noise_model is None:
            self.noise_model = NoiseModel()
        elif isinstance(noise_model, NoiseModel):
            self.noise_model = noise_model
        else:
            self.noise_model = NoiseModel.from_dict(noise_model)
        self.backend = resolve_array_backend(backend)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state=None,
    ) -> np.ndarray:
        """Pauli vector ``(4**n,)`` of the noisy output state."""
        param_array = StatevectorSimulator._coerce_params(circuit, params)
        row = (
            np.zeros((1, 0), dtype=FLOAT_DTYPE)
            if param_array is None
            else param_array.reshape(1, -1)
        )
        return self.run_batch(circuit, row, initial_state)[0]

    def run_batch(
        self,
        circuit: QuantumCircuit,
        params_batch: Sequence[Sequence[float]],
        initial_state=None,
    ) -> np.ndarray:
        """Evolve ``B`` parameter rows through the noisy circuit at once.

        Returns the ``(B, 4**n)`` Pauli-vector stack; row ``b`` matches
        the exact density-matrix evolution of ``params_batch[b]`` within
        numerical tolerance (and is bit-identical across batch sizes and
        chunk boundaries — rows are independent).
        """
        data = self._run_batch_data(circuit, params_batch, initial_state)
        backend = self.backend
        return data if backend.is_numpy else backend.to_numpy(data)

    def _run_batch_data(self, circuit, params_batch, initial_state=None):
        batch_array = StatevectorSimulator._coerce_params_batch(
            circuit, params_batch
        )
        num_qubits = circuit.num_qubits
        batch = batch_array.shape[0]
        backend = self.backend
        # A Pauli-vector row is 4**n = 2**(2n) wide; reuse the shared
        # chunking policy at the doubled register width.
        chunk = batch_chunk_rows(2 * num_qubits, backend)
        if batch > chunk:
            return backend.concatenate(
                [
                    self._run_batch_data(
                        circuit,
                        batch_array[start : start + chunk],
                        initial_state,
                    )
                    for start in range(0, batch, chunk)
                ]
            )
        data = self._initial_rows(initial_state, num_qubits, batch, backend)
        for op in circuit.operations:
            data = self._apply_operation(data, op, batch_array, num_qubits)
        return data

    @staticmethod
    def _coerce_initial_vector(initial_state, num_qubits: int) -> np.ndarray:
        if isinstance(initial_state, DensityMatrix):
            source_qubits = initial_state.num_qubits
            vector = pauli_vector_from_density(initial_state)
        elif isinstance(initial_state, Statevector):
            source_qubits = initial_state.num_qubits
            vector = pauli_vector_from_density(
                DensityMatrix.from_statevector(initial_state)
            )
        else:
            vector = np.asarray(initial_state, dtype=COMPLEX_DTYPE)
            if vector.ndim != 1 or vector.shape[0] != 4**num_qubits:
                raise ValueError(
                    f"initial Pauli vector must be ({4**num_qubits},), "
                    f"got shape {vector.shape}"
                )
            source_qubits = num_qubits
        if source_qubits != num_qubits:
            raise ValueError(
                f"initial state has {source_qubits} qubits, "
                f"circuit needs {num_qubits}"
            )
        return vector

    def _initial_rows(self, initial_state, num_qubits, batch, backend):
        dim = 4**num_qubits
        if initial_state is not None and not isinstance(
            initial_state, (DensityMatrix, Statevector)
        ):
            array = np.asarray(initial_state)
            if array.ndim == 2:
                if array.shape != (batch, dim):
                    raise ValueError(
                        f"per-row initial Pauli vectors must be "
                        f"(batch, {dim}), got shape {array.shape}"
                    )
                rows = array.astype(COMPLEX_DTYPE, copy=True)
                if backend.is_numpy:
                    return rows
                return backend.asarray(rows, dtype=backend.complex_dtype)
        if initial_state is None:
            vector = _initial_pauli_vector(num_qubits)
        else:
            vector = self._coerce_initial_vector(initial_state, num_qubits)
        if backend.is_numpy:
            return np.tile(vector, (batch, 1))
        return backend.tile_rows(
            backend.asarray(vector, dtype=backend.complex_dtype), batch
        )

    def _apply_operation(self, data, op, batch_array, num_qubits):
        backend = self.backend
        doubled = 2 * num_qubits
        axes = _ptm_axes(op.qubits)
        if op.is_trainable:
            matrices = op.gate.matrix_batch(batch_array[:, op.param_index])
            ptms = ptm_of_unitary_batch(matrices)
            data = apply_matrix(data, ptms, axes, doubled, backend=backend)
        else:
            ptm = _cached_unitary_ptm(op.matrix(None))
            data = apply_matrix(data, ptm, axes, doubled, backend=backend)
        channel = self.noise_model.channel_for(op.gate.name)
        if channel is None or channel.is_trivial:
            return data
        channel_ptm = ptm_of_channel(channel)
        for qubit in op.qubits:
            data = apply_matrix(
                data,
                channel_ptm,
                _ptm_axes([qubit]),
                doubled,
                backend=backend,
            )
        return data

    # ------------------------------------------------------------------
    # readout
    # ------------------------------------------------------------------
    @staticmethod
    def _num_qubits_of(states: np.ndarray) -> int:
        width = int(states.shape[-1])
        doubled = width.bit_length() - 1
        if doubled % 2 or 2**doubled != width:
            raise ValueError(
                f"Pauli-vector rows must be 4**n wide, got width {width}"
            )
        return doubled // 2

    def probabilities_rows(self, states: np.ndarray) -> np.ndarray:
        """Basis-outcome distributions ``(B, 2**n)`` of Pauli-vector rows.

        Gathers the I/Z sub-tensor of each row and folds it through the
        per-qubit ``[[1, 1], [1, -1]]`` transform; tiny negative entries
        from floating-point noise are clipped to zero (the sampling
        layer renormalizes).
        """
        if is_device_array(states):
            states = array_backend_of(states).to_numpy(states)
        states = np.asarray(states)
        squeeze = states.ndim == 1
        if squeeze:
            states = states[None, :]
        num_qubits = self._num_qubits_of(states)
        folded = states[:, _iz_indices(num_qubits)]
        for qubit in range(num_qubits):
            folded = apply_matrix(folded, _BIT_FROM_IZ, [qubit], num_qubits)
        probs = np.clip(folded.real / 2**num_qubits, 0.0, None)
        return probs[0] if squeeze else probs

    def probabilities(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state=None,
    ) -> np.ndarray:
        """Computational-basis outcome distribution after the circuit."""
        return self.probabilities_rows(self.run(circuit, params, initial_state))

    def density_matrix(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state=None,
    ) -> DensityMatrix:
        """Dense ``rho`` of the output state (tests / small systems)."""
        return density_from_pauli_vector(
            self.run(circuit, params, initial_state), circuit.num_qubits
        )

    def _analytic_rows(
        self, states: np.ndarray, observable: Observable
    ) -> np.ndarray:
        num_qubits = self._num_qubits_of(states)
        if observable.num_qubits != num_qubits:
            raise ValueError(
                f"observable acts on {observable.num_qubits} qubits, "
                f"states have {num_qubits}"
            )
        if isinstance(observable, Projector):
            return np.asarray(
                self.probabilities_rows(states)[:, observable.index],
                dtype=FLOAT_DTYPE,
            )
        if isinstance(observable, PauliString):
            terms: Sequence[PauliString] = [observable]
        elif isinstance(observable, PauliSum):
            terms = observable.terms
        else:
            raise TypeError(
                "PTM expectation supports Pauli observables and basis "
                f"projectors, not {type(observable).__name__}"
            )
        total = np.zeros(states.shape[0], dtype=FLOAT_DTYPE)
        for term in terms:
            total += term.coefficient * states[:, _pauli_word_index(term)].real
        return total

    # ------------------------------------------------------------------
    # estimation (the gradient engines' duck-type surface)
    # ------------------------------------------------------------------
    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: Observable,
        params: Optional[Sequence[float]] = None,
        initial_state=None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ) -> float:
        """Noisy ``Tr(rho(params) O)``, exact or shot-estimated."""
        param_array = StatevectorSimulator._coerce_params(circuit, params)
        row = (
            np.zeros((1, 0), dtype=FLOAT_DTYPE)
            if param_array is None
            else param_array.reshape(1, -1)
        )
        states = self.run_batch(circuit, row, initial_state)
        if shots is None:
            return float(self._analytic_rows(states, observable)[0])
        return float(
            self.sampled_expectation_rows(
                states, observable, shots, [ensure_rng(seed)]
            )[0]
        )

    def expectation_batch(
        self,
        circuit: QuantumCircuit,
        observable: Observable,
        params_batch: Sequence[Sequence[float]],
        initial_state=None,
        shots: Optional[int] = None,
        seed: "SeedLike | Sequence[SeedLike]" = None,
    ) -> np.ndarray:
        """Noisy ``<O>`` for every row of ``params_batch`` in one call."""
        states = self._run_batch_data(circuit, params_batch, initial_state)
        backend = self.backend
        if not backend.is_numpy:
            states = backend.to_numpy(states)
        if shots is None:
            return self._analytic_rows(states, observable)
        rngs = resolve_rngs(seed, states.shape[0])
        return self.sampled_expectation_rows(states, observable, shots, rngs)

    def sampled_expectation_rows(
        self,
        states: np.ndarray,
        observable: Observable,
        shots: int,
        rngs: Sequence[np.random.Generator],
    ) -> np.ndarray:
        """Shot-estimated ``<O>`` per Pauli-vector row.

        Mirrors the statevector simulator's row protocol: vectorized
        per-term basis rotations (as PTMs) and probability matrices once
        per block, then row-major draws consuming ``rngs[b]`` for row
        ``b`` term by term.  The noise model's ``readout_error`` flips
        each recorded bit with that probability, drawn from the same
        per-row generator after the outcome draw.
        """
        check_positive_int(shots, "shots")
        if is_device_array(states):
            states = array_backend_of(states).to_numpy(states)
        states = np.asarray(states)
        if len(rngs) != states.shape[0]:
            raise ValueError(
                f"got {len(rngs)} generators for {states.shape[0]} rows"
            )
        num_qubits = self._num_qubits_of(states)
        block = batch_chunk_rows(2 * num_qubits)
        estimates = np.empty(states.shape[0], dtype=FLOAT_DTYPE)
        for start in range(0, states.shape[0], block):
            stop = min(start + block, states.shape[0])
            stages = self._sampling_stages(states[start:stop], observable)
            for row in range(start, stop):
                rng = rngs[row]
                estimates[row] = float(
                    sum(stage(row - start, rng, shots) for stage in stages)
                )
        return estimates

    def _sampling_stages(self, states: np.ndarray, observable: Observable):
        num_qubits = self._num_qubits_of(states)
        if observable.num_qubits != num_qubits:
            raise ValueError(
                f"observable acts on {observable.num_qubits} qubits, "
                f"states have {num_qubits}"
            )
        readout = self.noise_model.readout_error or None
        if isinstance(observable, Projector):
            probs = self.probabilities_rows(states)
            target_bits = np.asarray(observable.bits)

            def projector_stage(row, rng, shots):
                bits = sample_basis_bits(
                    probs[row], shots, rng, num_qubits, readout_error=readout
                )
                return float(np.mean(np.all(bits == target_bits, axis=1)))

            return [projector_stage]
        if isinstance(observable, PauliString):
            terms = [observable]
        elif isinstance(observable, PauliSum):
            terms = observable.terms
        else:
            raise TypeError(
                "shot-based estimation is not implemented for "
                f"{type(observable).__name__}"
            )
        doubled = 2 * num_qubits
        stages = []
        for term in terms:
            if term.is_identity:
                stages.append(lambda row, rng, shots, c=term.coefficient: c)
                continue
            rotated = states
            for matrix, qubit in term.rotation_matrices():
                rotated = apply_matrix(
                    rotated,
                    _cached_unitary_ptm(matrix),
                    _ptm_axes([qubit]),
                    doubled,
                )
            term_probs = self.probabilities_rows(rotated)

            def pauli_stage(row, rng, shots, probs=term_probs, term=term):
                bits = sample_basis_bits(
                    probs[row], shots, rng, num_qubits, readout_error=readout
                )
                return float(np.mean(term.eigenvalues_of_bits(bits)))

            stages.append(pauli_stage)
        return stages
