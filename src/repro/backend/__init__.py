"""Quantum simulation substrate: gates, circuits, statevectors, gradients.

This package is the reproduction's stand-in for PennyLane's
``default.qubit`` device (see DESIGN.md, substitutions table): an exact
NumPy statevector simulator plus parameter-shift / adjoint / finite
difference differentiation engines and optional Kraus-channel noise.

Batch API
---------
The hot-path entry points broadcast over a leading batch axis so sweeps
evaluate many parameter vectors per circuit pass:

* ``apply_matrix`` / ``apply_diagonal`` accept ``(B, 2**n)`` amplitude
  buffers and optional per-element gate stacks;
* ``StatevectorSimulator.run_batch`` / ``expectation_batch`` evolve all
  ``B`` rows through one circuit at once;
* ``batch_parameter_shift`` folds every shift term of every requested
  parameter (for one or many base vectors) into a single batched
  execution, registered in ``GRADIENT_ENGINES``;
* ``batch_adjoint_gradient`` runs the adjoint backward sweep over a
  ``(B, 2**n)`` stack (registered as ``batch_adjoint``), and the
  ``*_value_and_gradient`` variants also return the expectation read off
  the shared forward pass — the engine behind lock-step training.

Batched results are bit-identical to their sequential counterparts —
batching is a throughput optimization, never a numerics change.
"""

from repro.backend.circuit import Operation, QuantumCircuit
from repro.backend.density import DensityMatrix, DensityMatrixSimulator
from repro.backend.gates import (
    FIXED_GATES,
    PARAMETRIC_GATES,
    PAULI_MATRICES,
    FixedGate,
    Gate,
    ParametricGate,
    controlled_matrix,
    get_gate,
    is_parametric,
    pauli_word_matrix,
)
from repro.backend.gradients import (
    GRADIENT_ENGINES,
    adjoint_gradient,
    adjoint_value_and_gradient,
    batch_adjoint_gradient,
    batch_adjoint_value_and_gradient,
    batch_parameter_shift,
    batch_parameter_shift_value_and_gradient,
    finite_difference,
    get_gradient_fn,
    parameter_shift,
)
from repro.backend.noise import (
    KrausChannel,
    NoiseModel,
    TrajectorySimulator,
    amplitude_damping,
    bit_flip,
    channel_from_dict,
    depolarizing,
    phase_damping,
    phase_flip,
    resolve_noise_model,
)
from repro.backend.ptm import (
    PauliTransferSimulator,
    density_from_pauli_vector,
    pauli_basis,
    pauli_vector_from_density,
    ptm_of_channel,
    ptm_of_unitary,
    ptm_of_unitary_batch,
)
from repro.backend.observables import (
    Observable,
    PauliString,
    PauliSum,
    Projector,
    StateProjector,
    single_z,
    total_z,
    zero_projector,
)
from repro.backend.simulator import StatevectorSimulator
from repro.backend.statevector import Statevector, apply_diagonal, apply_matrix

__all__ = [
    "DensityMatrix",
    "DensityMatrixSimulator",
    "FIXED_GATES",
    "GRADIENT_ENGINES",
    "PARAMETRIC_GATES",
    "PAULI_MATRICES",
    "FixedGate",
    "Gate",
    "KrausChannel",
    "NoiseModel",
    "Observable",
    "Operation",
    "ParametricGate",
    "PauliString",
    "PauliSum",
    "PauliTransferSimulator",
    "Projector",
    "QuantumCircuit",
    "StateProjector",
    "Statevector",
    "StatevectorSimulator",
    "TrajectorySimulator",
    "adjoint_gradient",
    "adjoint_value_and_gradient",
    "amplitude_damping",
    "apply_diagonal",
    "apply_matrix",
    "batch_adjoint_gradient",
    "batch_adjoint_value_and_gradient",
    "batch_parameter_shift",
    "batch_parameter_shift_value_and_gradient",
    "bit_flip",
    "channel_from_dict",
    "controlled_matrix",
    "density_from_pauli_vector",
    "depolarizing",
    "finite_difference",
    "get_gate",
    "get_gradient_fn",
    "is_parametric",
    "parameter_shift",
    "pauli_basis",
    "pauli_vector_from_density",
    "pauli_word_matrix",
    "phase_damping",
    "phase_flip",
    "ptm_of_channel",
    "ptm_of_unitary",
    "ptm_of_unitary_batch",
    "resolve_noise_model",
    "single_z",
    "total_z",
    "zero_projector",
]
