"""Quantum circuit intermediate representation.

A :class:`QuantumCircuit` is an ordered list of :class:`Operation` objects
over a fixed number of qubits.  Parametric operations either reference a
slot in an external *trainable parameter vector* (``param_index``) or carry
a bound constant (``value``).  Keeping parameters external to the circuit
lets the differentiation engines and optimizers treat the circuit as a pure
function ``params -> state``.

Every trainable operation owns a distinct parameter slot (no parameter
sharing), matching the paper's ansatz where a 10-qubit, 5-layer circuit has
exactly 100 independent parameters.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.backend.gates import FixedGate, Gate, ParametricGate, get_gate
from repro.utils.validation import check_positive_int, check_qubit_index

__all__ = ["Operation", "QuantumCircuit"]


@dataclass(frozen=True)
class Operation:
    """One gate application inside a circuit.

    Attributes
    ----------
    gate:
        The gate definition (fixed or parametric).
    qubits:
        Target qubits, most significant gate qubit first.
    param_index:
        Slot in the circuit's trainable parameter vector, or ``None``.
    value:
        Bound constant parameter, or ``None``.  Exactly one of
        ``param_index``/``value`` is set for parametric gates; both are
        ``None`` for fixed gates.
    """

    gate: Gate
    qubits: Tuple[int, ...]
    param_index: Optional[int] = None
    value: Optional[float] = None

    @property
    def is_parametric(self) -> bool:
        """True for gates that take a rotation angle."""
        return isinstance(self.gate, ParametricGate)

    @property
    def is_trainable(self) -> bool:
        """True if this operation reads from the trainable parameter vector."""
        return self.param_index is not None

    def parameter(self, params: Optional[np.ndarray]) -> Optional[float]:
        """Resolve this operation's angle against ``params`` (may be None)."""
        if not self.is_parametric:
            return None
        if self.param_index is not None:
            if params is None:
                raise ValueError(
                    f"operation {self.gate.name} on {self.qubits} is trainable "
                    "but no parameter vector was supplied"
                )
            return float(params[self.param_index])
        return self.value

    def matrix(self, params: Optional[np.ndarray] = None) -> np.ndarray:
        """Resolve the concrete unitary matrix for this operation."""
        if isinstance(self.gate, ParametricGate):
            return self.gate.matrix(self.parameter(params))
        return self.gate.matrix()


class QuantumCircuit:
    """An ordered sequence of gate applications on ``num_qubits`` wires.

    Examples
    --------
    >>> circuit = QuantumCircuit(2)
    >>> _ = circuit.h(0).cx(0, 1).ry(1)
    >>> circuit.num_parameters
    1
    """

    def __init__(self, num_qubits: int):
        check_positive_int(num_qubits, "num_qubits")
        self.num_qubits = num_qubits
        self.operations: List[Operation] = []
        self._num_parameters = 0
        # Lazily-built {position: (matrix, adjoint)} for non-trainable
        # operations; see static_matrices().
        self._static_matrices: Optional[Dict[int, Tuple[np.ndarray, np.ndarray]]] = None
        self._static_matrices_key: Optional[Tuple[Operation, ...]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @property
    def num_parameters(self) -> int:
        """Number of trainable parameter slots."""
        return self._num_parameters

    def append(
        self,
        gate_name: str,
        qubits: Sequence[int],
        value: Optional[float] = None,
        trainable: Optional[bool] = None,
    ) -> "QuantumCircuit":
        """Append a gate by name.

        For parametric gates, ``value=None`` (the default) allocates a new
        trainable parameter slot; passing a float binds the angle as a
        constant.  ``trainable=True`` with a ``value`` is rejected, as is
        any parameter on a fixed gate.
        """
        gate = get_gate(gate_name)
        qubits = tuple(int(q) for q in qubits)
        if len(qubits) != gate.num_qubits:
            raise ValueError(
                f"{gate.name} acts on {gate.num_qubits} qubits, got {len(qubits)}"
            )
        for qubit in qubits:
            check_qubit_index(qubit, self.num_qubits)
        if len(set(qubits)) != len(qubits):
            raise ValueError(f"target qubits must be distinct, got {qubits}")

        if isinstance(gate, ParametricGate):
            if value is None:
                if trainable is False:
                    raise ValueError("non-trainable parametric gate requires a value")
                op = Operation(gate, qubits, param_index=self._num_parameters)
                self._num_parameters += 1
            else:
                if trainable:
                    raise ValueError("a bound parameter cannot also be trainable")
                op = Operation(gate, qubits, value=float(value))
        else:
            if value is not None or trainable:
                raise ValueError(f"{gate.name} takes no parameter")
            op = Operation(gate, qubits)
        self.operations.append(op)
        return self

    # convenience builders -------------------------------------------------
    def h(self, q: int) -> "QuantumCircuit":
        """Hadamard."""
        return self.append("H", [q])

    def x(self, q: int) -> "QuantumCircuit":
        """Pauli-X."""
        return self.append("X", [q])

    def y(self, q: int) -> "QuantumCircuit":
        """Pauli-Y."""
        return self.append("Y", [q])

    def z(self, q: int) -> "QuantumCircuit":
        """Pauli-Z."""
        return self.append("Z", [q])

    def s(self, q: int) -> "QuantumCircuit":
        """Phase gate S."""
        return self.append("S", [q])

    def t(self, q: int) -> "QuantumCircuit":
        """T gate."""
        return self.append("T", [q])

    def cx(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-X (CNOT)."""
        return self.append("CX", [control, target])

    def cz(self, control: int, target: int) -> "QuantumCircuit":
        """Controlled-Z."""
        return self.append("CZ", [control, target])

    def swap(self, a: int, b: int) -> "QuantumCircuit":
        """SWAP."""
        return self.append("SWAP", [a, b])

    def rx(self, q: int, value: Optional[float] = None) -> "QuantumCircuit":
        """X rotation; trainable when ``value`` is omitted."""
        return self.append("RX", [q], value=value)

    def ry(self, q: int, value: Optional[float] = None) -> "QuantumCircuit":
        """Y rotation; trainable when ``value`` is omitted."""
        return self.append("RY", [q], value=value)

    def rz(self, q: int, value: Optional[float] = None) -> "QuantumCircuit":
        """Z rotation; trainable when ``value`` is omitted."""
        return self.append("RZ", [q], value=value)

    def crx(self, control: int, target: int, value: Optional[float] = None) -> "QuantumCircuit":
        """Controlled X rotation."""
        return self.append("CRX", [control, target], value=value)

    def cry(self, control: int, target: int, value: Optional[float] = None) -> "QuantumCircuit":
        """Controlled Y rotation."""
        return self.append("CRY", [control, target], value=value)

    def crz(self, control: int, target: int, value: Optional[float] = None) -> "QuantumCircuit":
        """Controlled Z rotation."""
        return self.append("CRZ", [control, target], value=value)

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def copy(self) -> "QuantumCircuit":
        """Shallow copy (operations are immutable, so this is safe)."""
        out = QuantumCircuit(self.num_qubits)
        out.operations = list(self.operations)
        out._num_parameters = self._num_parameters
        return out

    def bind(self, params: Sequence[float]) -> "QuantumCircuit":
        """Return a copy with every trainable angle bound as a constant."""
        params = np.asarray(params, dtype=float)
        if params.shape != (self._num_parameters,):
            raise ValueError(
                f"expected {self._num_parameters} parameters, got shape {params.shape}"
            )
        out = QuantumCircuit(self.num_qubits)
        for op in self.operations:
            if op.is_trainable:
                out.operations.append(
                    Operation(op.gate, op.qubits, value=float(params[op.param_index]))
                )
            else:
                out.operations.append(op)
        return out

    def inverse(self, params: Optional[Sequence[float]] = None) -> "QuantumCircuit":
        """Return the adjoint circuit with all parameters bound.

        Trainable circuits must supply ``params``; the result is fully
        bound (it no longer references a parameter vector) because the
        inverse of an angle is its negation, not an independent parameter.
        """
        source = self.bind(params) if params is not None else self
        if source._num_parameters:
            raise ValueError("inverse of a trainable circuit requires params")
        out = QuantumCircuit(self.num_qubits)
        for op in reversed(source.operations):
            if isinstance(op.gate, ParametricGate):
                out.operations.append(
                    Operation(op.gate, op.qubits, value=-float(op.value))
                )
            else:
                gate = op.gate
                adjoint = FixedGate(f"{gate.name}_DG", gate.adjoint_matrix())
                out.operations.append(Operation(adjoint, op.qubits))
        return out

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Concatenate ``other`` after ``self``; parameter slots are renumbered."""
        if other.num_qubits != self.num_qubits:
            raise ValueError(
                f"qubit-count mismatch: {self.num_qubits} vs {other.num_qubits}"
            )
        out = self.copy()
        offset = out._num_parameters
        for op in other.operations:
            if op.is_trainable:
                out.operations.append(
                    Operation(op.gate, op.qubits, param_index=op.param_index + offset)
                )
            else:
                out.operations.append(op)
        out._num_parameters += other._num_parameters
        return out

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def gate_counts(self) -> Dict[str, int]:
        """Histogram of gate names."""
        return dict(Counter(op.gate.name for op in self.operations))

    @property
    def num_operations(self) -> int:
        """Total number of gate applications."""
        return len(self.operations)

    def depth(self) -> int:
        """Circuit depth under greedy as-soon-as-possible scheduling."""
        frontier = [0] * self.num_qubits
        for op in self.operations:
            layer = 1 + max(frontier[q] for q in op.qubits)
            for q in op.qubits:
                frontier[q] = layer
        return max(frontier, default=0)

    def trainable_operations(self) -> List[Tuple[int, Operation]]:
        """All (position, operation) pairs that read the parameter vector."""
        return [
            (pos, op) for pos, op in enumerate(self.operations) if op.is_trainable
        ]

    def parameter_map(self) -> Dict[int, int]:
        """Map ``param_index -> operation position`` (unique by construction)."""
        return {
            op.param_index: pos
            for pos, op in enumerate(self.operations)
            if op.is_trainable
        }

    def static_matrices(self) -> Dict[int, Tuple[np.ndarray, np.ndarray]]:
        """Cached ``{position: (matrix, adjoint)}`` for non-trainable operations.

        Fixed and bound-parameter gates have parameter-independent unitaries,
        so the adjoint differentiation engines would otherwise rebuild the
        same matrix and conjugate transpose on every backward sweep of every
        call — per training iteration, per trajectory.  The cache is built
        on first use and invalidated whenever the operation sequence no
        longer compares equal to the one it was built from (appends, and
        in-place edits of the public ``operations`` list); entries must
        not be mutated.
        """
        key = tuple(self.operations)
        if self._static_matrices_key != key:
            cache: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
            for pos, op in enumerate(key):
                if not op.is_trainable:
                    matrix = op.matrix(None)
                    cache[pos] = (matrix, matrix.conj().T)
            self._static_matrices = cache
            self._static_matrices_key = key
        return self._static_matrices

    def draw(self, params: Optional[np.ndarray] = None, max_width: int = 120) -> str:
        """Render a plain-text sketch of the circuit, one line per qubit."""
        lanes = [[f"q{q}:"] for q in range(self.num_qubits)]
        for op in self.operations:
            angle = op.parameter(params) if (op.is_parametric and (params is not None or not op.is_trainable)) else None
            if op.is_parametric and angle is None:
                label = f"{op.gate.name}(t{op.param_index})"
            elif op.is_parametric:
                label = f"{op.gate.name}({angle:+.2f})"
            else:
                label = op.gate.name
            width = max(len(label), 3)
            for q in range(self.num_qubits):
                if q in op.qubits:
                    cell = label if q == op.qubits[0] else "*" + " " * (width - 1)
                else:
                    cell = "-" * width
                lanes[q].append(cell.ljust(width, "-"))
        lines = ["--".join(lane) for lane in lanes]
        return "\n".join(line[:max_width] for line in lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantumCircuit(num_qubits={self.num_qubits}, "
            f"ops={self.num_operations}, params={self.num_parameters})"
        )
