"""Quantum gate library.

Defines the fixed (non-parameterized) and parametric gates used throughout
the library, together with the metadata the differentiation engines need:

* every parametric gate exposes ``matrix(theta)`` and ``derivative(theta)``
  (``dU/dtheta``), which powers adjoint differentiation — plus the
  vectorized ``matrix_batch(thetas)`` / ``derivative_batch(thetas)`` stacks
  behind the batched execution and batched adjoint engines;
* Pauli-word rotations ``exp(-i theta P / 2)`` additionally carry the exact
  two-term parameter-shift rule ``(coefficient=1/2, shift=pi/2)``.

Conventions
-----------
Qubit 0 is the most significant bit: the basis state ``|b0 b1 ... b_{n-1}>``
has flat index ``b0 * 2**(n-1) + ... + b_{n-1}``.  Multi-qubit gate matrices
follow the same ordering for their own qubits, e.g. ``CNOT`` is the matrix
for (control, target) = (qubit argument 0, qubit argument 1).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.array_api import COMPLEX_DTYPE, FLOAT_DTYPE

__all__ = [
    "Gate",
    "FixedGate",
    "ParametricGate",
    "PAULI_MATRICES",
    "FIXED_GATES",
    "PARAMETRIC_GATES",
    "get_gate",
    "is_parametric",
    "pauli_word_matrix",
    "controlled_matrix",
]

_I2 = np.eye(2, dtype=COMPLEX_DTYPE)
_X = np.array([[0, 1], [1, 0]], dtype=COMPLEX_DTYPE)
_Y = np.array([[0, -1j], [1j, 0]], dtype=COMPLEX_DTYPE)
_Z = np.array([[1, 0], [0, -1]], dtype=COMPLEX_DTYPE)
_H = np.array([[1, 1], [1, -1]], dtype=COMPLEX_DTYPE) / np.sqrt(2.0)

#: Single-qubit Pauli matrices keyed by letter, including the identity.
PAULI_MATRICES: Dict[str, np.ndarray] = {"I": _I2, "X": _X, "Y": _Y, "Z": _Z}


def _frozen(matrix: np.ndarray) -> np.ndarray:
    """Return a read-only complex copy of ``matrix``."""
    out = np.array(matrix, dtype=COMPLEX_DTYPE)
    out.setflags(write=False)
    return out


def pauli_word_matrix(word: str) -> np.ndarray:
    """Kronecker product of single-qubit Paulis, e.g. ``"XY"`` -> X (x) Y.

    Parameters
    ----------
    word:
        String over the alphabet ``IXYZ``; character ``k`` acts on the
        gate's ``k``-th qubit (most significant first).
    """
    if not word:
        raise ValueError("pauli word must be non-empty")
    matrix = np.array([[1.0 + 0j]])
    for letter in word:
        if letter not in PAULI_MATRICES:
            raise ValueError(f"invalid pauli letter {letter!r} in word {word!r}")
        matrix = np.kron(matrix, PAULI_MATRICES[letter])
    return matrix


def controlled_matrix(matrix: np.ndarray) -> np.ndarray:
    """Build the controlled version of a unitary (control = first qubit)."""
    dim = matrix.shape[0]
    out = np.eye(2 * dim, dtype=COMPLEX_DTYPE)
    out[dim:, dim:] = matrix
    return out


class Gate:
    """Base class for gate definitions.

    Attributes
    ----------
    name:
        Canonical upper-case gate name, e.g. ``"RX"``.
    num_qubits:
        Number of qubits the gate acts on.
    num_params:
        Number of real parameters (0 for fixed gates, 1 for parametric).
    """

    def __init__(self, name: str, num_qubits: int, num_params: int):
        self.name = name
        self.num_qubits = num_qubits
        self.num_params = num_params

    @property
    def dim(self) -> int:
        """Dimension of the gate's matrix (``2**num_qubits``)."""
        return 2**self.num_qubits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r}, qubits={self.num_qubits})"


class FixedGate(Gate):
    """A gate with a constant unitary matrix."""

    def __init__(self, name: str, matrix: np.ndarray):
        matrix = _frozen(matrix)
        dim = matrix.shape[0]
        if matrix.shape != (dim, dim) or dim & (dim - 1):
            raise ValueError(f"gate matrix must be square power-of-2, got {matrix.shape}")
        num_qubits = int(np.log2(dim))
        super().__init__(name, num_qubits, num_params=0)
        self._matrix = matrix
        self.is_diagonal = bool(
            np.allclose(matrix, np.diag(np.diagonal(matrix)))
        )

    def matrix(self) -> np.ndarray:
        """Return the gate's (read-only) unitary matrix."""
        return self._matrix

    def adjoint_matrix(self) -> np.ndarray:
        """Return the conjugate transpose of the gate matrix."""
        return self._matrix.conj().T


class ParametricGate(Gate):
    """A single-parameter gate ``U(theta)``.

    Parameters
    ----------
    name:
        Gate name.
    num_qubits:
        Number of qubits acted on.
    matrix_fn:
        Callable mapping the parameter to the unitary matrix.
    derivative_fn:
        Callable mapping the parameter to ``dU/dtheta``.
    shift_rule:
        ``(coefficient, shift)`` for the exact two-term parameter-shift rule
        ``dE/dtheta = coefficient * (E(theta + shift) - E(theta - shift))``,
        or ``None`` if no two-term rule applies.
    shift_terms:
        General exact shift rule as ``[(c_1, s_1), (c_2, s_2), ...]`` with
        ``dE/dtheta = sum_i c_i * E(theta + s_i)``.  Derived from
        ``shift_rule`` when omitted; supply explicitly for gates needing
        more than two terms (e.g. controlled rotations).
    batch_matrix_fn:
        Optional vectorized form of ``matrix_fn`` mapping a length-``B``
        parameter array to a ``(B, 2**k, 2**k)`` stack.  Used by
        :meth:`matrix_batch` on the batched-execution hot path; omitted,
        the stack is built one scalar ``matrix_fn`` call at a time.
    batch_derivative_fn:
        Optional vectorized form of ``derivative_fn`` with the same batch
        contract as ``batch_matrix_fn``.  Used by :meth:`derivative_batch`
        on the batched adjoint-differentiation hot path.
    """

    def __init__(
        self,
        name: str,
        num_qubits: int,
        matrix_fn: Callable[[float], np.ndarray],
        derivative_fn: Callable[[float], np.ndarray],
        shift_rule: Optional[Tuple[float, float]] = None,
        shift_terms: Optional[Tuple[Tuple[float, float], ...]] = None,
        is_diagonal: bool = False,
        batch_matrix_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        batch_derivative_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ):
        super().__init__(name, num_qubits, num_params=1)
        self._matrix_fn = matrix_fn
        self._derivative_fn = derivative_fn
        self._batch_matrix_fn = batch_matrix_fn
        self._batch_derivative_fn = batch_derivative_fn
        self.shift_rule = shift_rule
        if shift_terms is None and shift_rule is not None:
            coefficient, shift = shift_rule
            shift_terms = ((coefficient, shift), (-coefficient, -shift))
        self.shift_terms = tuple(shift_terms) if shift_terms is not None else None
        #: True when U(theta) is diagonal for every theta (fast-path hint).
        self.is_diagonal = is_diagonal

    def matrix(self, theta: float) -> np.ndarray:
        """Return ``U(theta)``."""
        return self._matrix_fn(float(theta))

    def adjoint_matrix(self, theta: float) -> np.ndarray:
        """Return ``U(theta)^dagger``."""
        return self._matrix_fn(float(theta)).conj().T

    def derivative(self, theta: float) -> np.ndarray:
        """Return ``dU/dtheta`` evaluated at ``theta``."""
        return self._derivative_fn(float(theta))

    def matrix_batch(
        self, thetas: np.ndarray, backend: Optional[Any] = None
    ) -> np.ndarray:
        """Return the ``(B, 2**k, 2**k)`` stack ``[U(t) for t in thetas]``.

        Uses the vectorized ``batch_matrix_fn`` when the gate provides one
        (all built-in rotations do); the fallback stacks scalar ``matrix``
        calls, so any custom gate is batchable, just more slowly.

        With a non-numpy ``backend``
        (:class:`~repro.utils.array_api.ArrayBackend`) the stack is
        handed over on the namespace: built from the host parameter
        array, then staged through one ``backend.asarray`` call — the
        single host->device copy per gate/slot of the batched paths.
        """
        thetas = np.asarray(thetas, dtype=FLOAT_DTYPE).reshape(-1)
        if self._batch_matrix_fn is not None:
            stack = self._batch_matrix_fn(thetas)
        else:
            stack = np.stack([self._matrix_fn(float(t)) for t in thetas])
        if backend is not None and not backend.is_numpy:
            return backend.asarray(stack, dtype=backend.complex_dtype)
        return stack

    def derivative_batch(
        self, thetas: np.ndarray, backend: Optional[Any] = None
    ) -> np.ndarray:
        """Return the ``(B, 2**k, 2**k)`` stack ``[dU/dtheta (t) for t in thetas]``.

        Same contract as :meth:`matrix_batch` (including the ``backend``
        staging): the vectorized ``batch_derivative_fn`` is used when
        available (all built-in rotations provide one), otherwise scalar
        ``derivative`` calls are stacked so any custom gate stays
        batchable.
        """
        thetas = np.asarray(thetas, dtype=FLOAT_DTYPE).reshape(-1)
        if self._batch_derivative_fn is not None:
            stack = self._batch_derivative_fn(thetas)
        else:
            stack = np.stack([self._derivative_fn(float(t)) for t in thetas])
        if backend is not None and not backend.is_numpy:
            return backend.asarray(stack, dtype=backend.complex_dtype)
        return stack


def _pauli_rotation(name: str, word: str) -> ParametricGate:
    """Build the Pauli-word rotation ``exp(-i theta P / 2)``.

    Because every Pauli word squares to the identity, the matrix has the
    closed form ``cos(theta/2) I - i sin(theta/2) P`` and the exact two-term
    parameter-shift rule with coefficient 1/2 and shift pi/2 applies.
    """
    pauli = pauli_word_matrix(word)
    identity = np.eye(pauli.shape[0], dtype=COMPLEX_DTYPE)

    def matrix_fn(theta: float, _p=pauli, _i=identity) -> np.ndarray:
        return np.cos(theta / 2.0) * _i - 1j * np.sin(theta / 2.0) * _p

    def derivative_fn(theta: float, _p=pauli, _i=identity) -> np.ndarray:
        return -0.5 * np.sin(theta / 2.0) * _i - 0.5j * np.cos(theta / 2.0) * _p

    def batch_matrix_fn(thetas: np.ndarray, _p=pauli, _i=identity) -> np.ndarray:
        cos = np.cos(thetas / 2.0)[:, None, None]
        sin = (1j * np.sin(thetas / 2.0))[:, None, None]
        return cos * _i - sin * _p

    def batch_derivative_fn(thetas: np.ndarray, _p=pauli, _i=identity) -> np.ndarray:
        sin = (-0.5 * np.sin(thetas / 2.0))[:, None, None]
        cos = (0.5j * np.cos(thetas / 2.0))[:, None, None]
        return sin * _i - cos * _p

    return ParametricGate(
        name,
        num_qubits=len(word),
        matrix_fn=matrix_fn,
        derivative_fn=derivative_fn,
        shift_rule=(0.5, np.pi / 2.0),
        is_diagonal=all(letter in "IZ" for letter in word),
        batch_matrix_fn=batch_matrix_fn,
        batch_derivative_fn=batch_derivative_fn,
    )


def _phase_shift_gate() -> ParametricGate:
    """``P(theta) = diag(1, exp(i theta))``.

    The generator ``|1><1|`` has eigenvalues {0, 1} (gap 1), for which the
    two-term rule with coefficient 1/2 and shift pi/2 is exact as well
    (see Schuld et al., "Evaluating analytic gradients on quantum hardware").
    """

    def matrix_fn(theta: float) -> np.ndarray:
        return np.array([[1.0, 0.0], [0.0, np.exp(1j * theta)]], dtype=COMPLEX_DTYPE)

    def derivative_fn(theta: float) -> np.ndarray:
        return np.array([[0.0, 0.0], [0.0, 1j * np.exp(1j * theta)]], dtype=COMPLEX_DTYPE)

    def batch_matrix_fn(thetas: np.ndarray) -> np.ndarray:
        out = np.zeros((thetas.size, 2, 2), dtype=COMPLEX_DTYPE)
        out[:, 0, 0] = 1.0
        out[:, 1, 1] = np.exp(1j * thetas)
        return out

    def batch_derivative_fn(thetas: np.ndarray) -> np.ndarray:
        out = np.zeros((thetas.size, 2, 2), dtype=COMPLEX_DTYPE)
        out[:, 1, 1] = 1j * np.exp(1j * thetas)
        return out

    return ParametricGate(
        "PHASE",
        num_qubits=1,
        matrix_fn=matrix_fn,
        derivative_fn=derivative_fn,
        shift_rule=(0.5, np.pi / 2.0),
        is_diagonal=True,
        batch_matrix_fn=batch_matrix_fn,
        batch_derivative_fn=batch_derivative_fn,
    )


def _controlled_rotation(name: str, axis_word: str) -> ParametricGate:
    """Controlled Pauli rotation (control = first qubit).

    The generator ``|1><1| (x) P/2`` has eigenvalues {0, +-1/2}, so the
    expectation is a trigonometric polynomial with frequencies {1/2, 1}
    and the *four-term* shift rule is exact (Anselmetti et al. 2021):

        dE/dtheta = c+ [E(t + pi/2) - E(t - pi/2)]
                  - c- [E(t + 3pi/2) - E(t - 3pi/2)]

    with ``c+- = (sqrt(2) +- 1) / (4 sqrt(2))``.  ``shift_rule`` (the
    two-term form) stays ``None``; ``shift_terms`` carries the full rule.
    """
    pauli = pauli_word_matrix(axis_word)
    dim = pauli.shape[0]
    identity = np.eye(dim, dtype=COMPLEX_DTYPE)

    def matrix_fn(theta: float, _p=pauli, _i=identity) -> np.ndarray:
        rot = np.cos(theta / 2.0) * _i - 1j * np.sin(theta / 2.0) * _p
        return controlled_matrix(rot)

    def derivative_fn(theta: float, _p=pauli, _i=identity) -> np.ndarray:
        d_rot = -0.5 * np.sin(theta / 2.0) * _i - 0.5j * np.cos(theta / 2.0) * _p
        out = np.zeros((2 * dim, 2 * dim), dtype=COMPLEX_DTYPE)
        out[dim:, dim:] = d_rot
        return out

    def batch_matrix_fn(thetas: np.ndarray, _p=pauli, _i=identity) -> np.ndarray:
        cos = np.cos(thetas / 2.0)[:, None, None]
        sin = (1j * np.sin(thetas / 2.0))[:, None, None]
        out = np.zeros((thetas.size, 2 * dim, 2 * dim), dtype=COMPLEX_DTYPE)
        out[:, range(dim), range(dim)] = 1.0
        out[:, dim:, dim:] = cos * _i - sin * _p
        return out

    def batch_derivative_fn(thetas: np.ndarray, _p=pauli, _i=identity) -> np.ndarray:
        sin = (-0.5 * np.sin(thetas / 2.0))[:, None, None]
        cos = (0.5j * np.cos(thetas / 2.0))[:, None, None]
        out = np.zeros((thetas.size, 2 * dim, 2 * dim), dtype=COMPLEX_DTYPE)
        out[:, dim:, dim:] = sin * _i - cos * _p
        return out

    c_plus = (np.sqrt(2.0) + 1.0) / (4.0 * np.sqrt(2.0))
    c_minus = (np.sqrt(2.0) - 1.0) / (4.0 * np.sqrt(2.0))
    four_term = (
        (c_plus, np.pi / 2.0),
        (-c_plus, -np.pi / 2.0),
        (-c_minus, 3.0 * np.pi / 2.0),
        (c_minus, -3.0 * np.pi / 2.0),
    )
    return ParametricGate(
        name,
        num_qubits=1 + len(axis_word),
        matrix_fn=matrix_fn,
        derivative_fn=derivative_fn,
        shift_rule=None,
        shift_terms=four_term,
        is_diagonal=all(letter in "IZ" for letter in axis_word),
        batch_matrix_fn=batch_matrix_fn,
        batch_derivative_fn=batch_derivative_fn,
    )


_S = np.array([[1, 0], [0, 1j]], dtype=COMPLEX_DTYPE)
_T = np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=COMPLEX_DTYPE)
_SX = 0.5 * np.array([[1 + 1j, 1 - 1j], [1 - 1j, 1 + 1j]], dtype=COMPLEX_DTYPE)
_SWAP = np.array(
    [[1, 0, 0, 0], [0, 0, 1, 0], [0, 1, 0, 0], [0, 0, 0, 1]], dtype=COMPLEX_DTYPE
)

#: Registry of fixed gates keyed by canonical name.
FIXED_GATES: Dict[str, FixedGate] = {
    gate.name: gate
    for gate in [
        FixedGate("I", _I2),
        FixedGate("X", _X),
        FixedGate("Y", _Y),
        FixedGate("Z", _Z),
        FixedGate("H", _H),
        FixedGate("S", _S),
        FixedGate("SDG", _S.conj().T),
        FixedGate("T", _T),
        FixedGate("TDG", _T.conj().T),
        FixedGate("SX", _SX),
        FixedGate("CX", controlled_matrix(_X)),
        FixedGate("CY", controlled_matrix(_Y)),
        FixedGate("CZ", controlled_matrix(_Z)),
        FixedGate("CH", controlled_matrix(_H)),
        FixedGate("SWAP", _SWAP),
        FixedGate("CCX", controlled_matrix(controlled_matrix(_X))),
        FixedGate("CCZ", controlled_matrix(controlled_matrix(_Z))),
        FixedGate("CSWAP", controlled_matrix(_SWAP)),
    ]
}

#: Registry of parametric gates keyed by canonical name.
PARAMETRIC_GATES: Dict[str, ParametricGate] = {
    gate.name: gate
    for gate in [
        _pauli_rotation("RX", "X"),
        _pauli_rotation("RY", "Y"),
        _pauli_rotation("RZ", "Z"),
        _pauli_rotation("RXX", "XX"),
        _pauli_rotation("RYY", "YY"),
        _pauli_rotation("RZZ", "ZZ"),
        _phase_shift_gate(),
        _controlled_rotation("CRX", "X"),
        _controlled_rotation("CRY", "Y"),
        _controlled_rotation("CRZ", "Z"),
    ]
}

_ALIASES = {"CNOT": "CX", "P": "PHASE", "TOFFOLI": "CCX"}


@functools.lru_cache(maxsize=None)
def get_gate(name: str) -> Gate:
    """Look up a gate definition by (case-insensitive) name.

    Raises
    ------
    KeyError
        If no gate with that name is registered.
    """
    key = name.upper()
    key = _ALIASES.get(key, key)
    if key in FIXED_GATES:
        return FIXED_GATES[key]
    if key in PARAMETRIC_GATES:
        return PARAMETRIC_GATES[key]
    raise KeyError(f"unknown gate {name!r}")


def is_parametric(name: str) -> bool:
    """Return True if ``name`` refers to a parametric gate."""
    try:
        return isinstance(get_gate(name), ParametricGate)
    except KeyError:
        return False
