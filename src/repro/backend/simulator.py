"""Exact statevector simulator.

The simulator is stateless: each call takes a circuit plus parameter vector
and returns fresh results, so one instance can be shared freely across
experiments and threads.

Expectation values are analytic by default, matching the paper's PennyLane
setup.  Shot-based estimation is available as an opt-in via ``shots=`` for
studying sampling noise (an extension experiment).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.backend.circuit import QuantumCircuit
from repro.backend.gates import FixedGate, get_gate
from repro.backend.observables import Observable, PauliString, PauliSum, Projector
from repro.backend.statevector import Statevector, apply_diagonal, apply_matrix
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import check_positive_int

__all__ = ["StatevectorSimulator", "apply_operation"]


def apply_operation(data, op, params, num_qubits):
    """Apply one circuit operation to a flat amplitude buffer.

    Dispatches diagonal gates (CZ, RZ, PHASE, ...) to the cheaper
    elementwise kernel; everything else goes through the general
    tensor-contraction kernel.
    """
    matrix = op.matrix(params)
    if getattr(op.gate, "is_diagonal", False):
        return apply_diagonal(data, np.diagonal(matrix), op.qubits, num_qubits)
    return apply_matrix(data, matrix, op.qubits, num_qubits)


class StatevectorSimulator:
    """Runs :class:`QuantumCircuit` objects on exact statevectors."""

    def run(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state: Optional[Statevector] = None,
    ) -> Statevector:
        """Evolve the initial state (default ``|0...0>``) through ``circuit``.

        Parameters
        ----------
        circuit:
            The circuit to execute.
        params:
            Trainable parameter vector; required iff the circuit has
            trainable operations.
        initial_state:
            Starting state; defaults to ``|0...0>``.
        """
        param_array = self._coerce_params(circuit, params)
        if initial_state is None:
            data = np.zeros(2**circuit.num_qubits, dtype=complex)
            data[0] = 1.0
        else:
            if initial_state.num_qubits != circuit.num_qubits:
                raise ValueError(
                    f"initial state has {initial_state.num_qubits} qubits, "
                    f"circuit needs {circuit.num_qubits}"
                )
            data = initial_state.data.copy()
        for op in circuit.operations:
            data = apply_operation(data, op, param_array, circuit.num_qubits)
        return Statevector(data, validate=False)

    def expectation(
        self,
        circuit: QuantumCircuit,
        observable: Observable,
        params: Optional[Sequence[float]] = None,
        initial_state: Optional[Statevector] = None,
        shots: Optional[int] = None,
        seed: SeedLike = None,
    ) -> float:
        """``<psi(params)|O|psi(params)>``, exact or shot-estimated."""
        state = self.run(circuit, params, initial_state)
        if shots is None:
            return observable.expectation(state)
        return self._sampled_expectation(state, observable, shots, seed)

    def probabilities(
        self,
        circuit: QuantumCircuit,
        params: Optional[Sequence[float]] = None,
        initial_state: Optional[Statevector] = None,
    ) -> np.ndarray:
        """Computational-basis outcome distribution after the circuit."""
        return self.run(circuit, params, initial_state).probabilities()

    def sample(
        self,
        circuit: QuantumCircuit,
        shots: int,
        params: Optional[Sequence[float]] = None,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Sample ``(shots, num_qubits)`` measurement outcomes."""
        return self.run(circuit, params).sample(shots, seed=seed)

    def unitary(
        self, circuit: QuantumCircuit, params: Optional[Sequence[float]] = None
    ) -> np.ndarray:
        """Dense unitary of the whole circuit (tests / small systems only)."""
        dim = 2**circuit.num_qubits
        param_array = self._coerce_params(circuit, params)
        columns = np.eye(dim, dtype=complex)
        out = np.empty((dim, dim), dtype=complex)
        for col in range(dim):
            data = columns[:, col].copy()
            for op in circuit.operations:
                data = apply_operation(data, op, param_array, circuit.num_qubits)
            out[:, col] = data
        return out

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce_params(
        circuit: QuantumCircuit, params: Optional[Sequence[float]]
    ) -> Optional[np.ndarray]:
        if params is None:
            if circuit.num_parameters:
                raise ValueError(
                    f"circuit has {circuit.num_parameters} trainable parameters "
                    "but none were supplied"
                )
            return None
        array = np.asarray(params, dtype=float).reshape(-1)
        if array.size != circuit.num_parameters:
            raise ValueError(
                f"expected {circuit.num_parameters} parameters, got {array.size}"
            )
        if not np.all(np.isfinite(array)):
            raise ValueError(
                "parameters contain NaN or infinity; an optimizer has "
                "probably diverged"
            )
        return array

    def _sampled_expectation(
        self,
        state: Statevector,
        observable: Observable,
        shots: int,
        seed: SeedLike,
    ) -> float:
        check_positive_int(shots, "shots")
        rng = ensure_rng(seed)
        if isinstance(observable, Projector):
            bits = state.sample(shots, seed=rng)
            hits = np.all(bits == np.asarray(observable.bits), axis=1)
            return float(np.mean(hits))
        if isinstance(observable, PauliString):
            return self._sampled_pauli(state, observable, shots, rng)
        if isinstance(observable, PauliSum):
            return float(
                sum(
                    self._sampled_pauli(state, term, shots, rng)
                    for term in observable.terms
                )
            )
        raise TypeError(
            f"shot-based estimation is not implemented for {type(observable).__name__}"
        )

    @staticmethod
    def _sampled_pauli(
        state: Statevector, term: PauliString, shots: int, rng: np.random.Generator
    ) -> float:
        if term.is_identity:
            return term.coefficient
        rotated = state.data
        for gate_name, qubit in term.diagonalizing_rotations():
            gate = get_gate(gate_name)
            assert isinstance(gate, FixedGate)
            rotated = apply_matrix(rotated, gate.matrix(), [qubit], state.num_qubits)
        bits = Statevector(rotated, validate=False).sample(shots, seed=rng)
        eigenvalues = np.array([term.eigenvalue_of_bits(row) for row in bits])
        return float(np.mean(eigenvalues))
